"""Independent validation of flows.

The kernel in :mod:`repro.flow.kernel` maintains its own invariants, but
tests and debugging assertions want an *independent* check that a computed
flow is feasible: capacities respected, flow conserved at every node except
the source and sink, and the claimed flow value consistent with the
source's net outflow.

The core check, :func:`validate_arena_flow`, walks the arena's parallel
arrays directly.  :func:`validate_flow` is the label-level wrapper for
:class:`~repro.flow.network.FlowNetwork`, reporting violations in terms of
the network's node labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence

from repro.flow.kernel import ArcArena
from repro.flow.network import FlowNetwork

Node = Hashable


@dataclass(frozen=True, slots=True)
class FlowViolation:
    """A single violated flow constraint, for readable test failures."""

    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}: {self.detail}"


def validate_arena_flow(
    graph: ArcArena,
    source: int,
    sink: int,
    expected_value: int | None = None,
    labels: Optional[Sequence[Node]] = None,
) -> List[FlowViolation]:
    """Constraint violations of the arena's current flow (empty = feasible).

    Walks the forward (even) arcs once, accumulating per-node net outflow.
    ``labels`` optionally maps node ids to display labels for the violation
    messages; ids are shown otherwise.  When ``expected_value`` is given,
    the source's net outflow must equal it.
    """

    def name(node: int) -> object:
        return labels[node] if labels is not None else node

    violations: List[FlowViolation] = []
    head, cap, flow = graph.head, graph.cap, graph.flow
    net = [0] * graph.num_nodes

    for arc in range(0, len(flow), 2):
        units = flow[arc]
        tail = head[arc ^ 1]
        if units < 0:
            violations.append(
                FlowViolation(
                    "negative-flow", f"{name(tail)}->{name(head[arc])}: {units}"
                )
            )
        if units > cap[arc]:
            violations.append(
                FlowViolation(
                    "capacity",
                    f"{name(tail)}->{name(head[arc])}: flow {units} > "
                    f"capacity {cap[arc]}",
                )
            )
        net[tail] += units
        net[head[arc]] -= units

    for node, node_net in enumerate(net):
        if node == source or node == sink:
            continue
        if node_net != 0:
            violations.append(
                FlowViolation(
                    "conservation", f"node {name(node)!r} has net outflow {node_net}"
                )
            )

    if net[source] != -net[sink]:
        violations.append(
            FlowViolation(
                "source-sink-mismatch",
                f"source net {net[source]} vs sink net {net[sink]}",
            )
        )

    if expected_value is not None and net[source] != expected_value:
        violations.append(
            FlowViolation(
                "value",
                f"source routes {net[source]} units, expected {expected_value}",
            )
        )

    return violations


def validate_flow(
    network: FlowNetwork,
    source: Node,
    sink: Node,
    expected_value: int | None = None,
) -> List[FlowViolation]:
    """Return the list of constraint violations of the network's current flow.

    An empty list means the flow is feasible.  When ``expected_value`` is
    given, the source's net outflow must equal it.
    """
    if source not in network or sink not in network:
        raise ValueError("source and sink must be nodes of the network")
    return validate_arena_flow(
        network.arena,
        network.node_id(source),
        network.node_id(sink),
        expected_value=expected_value,
        labels=network.nodes,
    )
