"""Tests for the incremental Session protocol implementations."""

import pytest

from repro.algorithms.laf import LAFSolver
from repro.algorithms.mcf_ltc import MCFLTCSolver
from repro.algorithms.session import OnlineSolverSession, ReplaySession, open_session
from repro.core.session import SessionSnapshot, SessionStateError
from repro.core.stream import WorkerStream
from repro.core.task import Task


class TestOnlineSolverSession:
    def test_requires_an_online_solver(self, tiny_instance):
        with pytest.raises(TypeError):
            OnlineSolverSession(MCFLTCSolver(), tiny_instance)

    def test_incremental_drive_matches_solve(self, tiny_instance):
        solved = LAFSolver().solve(tiny_instance)
        session = LAFSolver().open_session(tiny_instance)
        fed = 0
        for worker in tiny_instance.workers:
            session.on_worker(worker)
            fed += 1
            if session.is_complete:
                break
        result = session.result()
        assert result.max_latency == solved.max_latency
        assert result.workers_observed == fed == solved.workers_observed

    def test_assignments_returned_per_arrival(self, tiny_instance):
        session = LAFSolver().open_session(tiny_instance)
        assignments = session.on_worker(tiny_instance.workers[0])
        assert all(a.worker_index == 1 for a in assignments)
        assert len(assignments) <= tiny_instance.workers[0].capacity

    def test_result_before_any_worker(self, tiny_instance):
        result = LAFSolver().open_session(tiny_instance).result()
        assert result.workers_observed == 0
        assert not result.completed

    def test_drive_can_consume_the_whole_stream(self, tiny_instance):
        session = LAFSolver().open_session(tiny_instance)
        result = session.drive(
            WorkerStream(tiny_instance.workers), stop_when_complete=False
        )
        assert result.workers_observed == tiny_instance.num_workers

    def test_one_solver_object_serves_one_live_session(self, tiny_instance):
        # A solver holds one mutable arrangement; a superseded session must
        # fail loudly instead of silently corrupting the newer session.
        solver = LAFSolver()
        first = solver.open_session(tiny_instance)
        first.on_worker(tiny_instance.workers[0])
        second = solver.open_session(tiny_instance)
        second.on_worker(tiny_instance.workers[0])  # rebinds the solver
        with pytest.raises(SessionStateError):
            first.on_worker(tiny_instance.workers[1])
        with pytest.raises(SessionStateError):
            first.result()
        # the newer session is unaffected
        assert second.snapshot().workers_observed == 1

    def test_sequential_solver_reuse_still_works(self, tiny_instance):
        solver = LAFSolver()
        first = solver.solve(tiny_instance)
        second = solver.solve(tiny_instance)
        assert first.max_latency == second.max_latency


class TestSubmitTasks:
    def test_tasks_submitted_before_first_worker_are_served(self):
        from repro.core.accuracy import ConstantAccuracy
        from repro.core.instance import LTCInstance
        from repro.core.worker import Worker

        # 12 capacity units, 6 needed per task at Acc* = 0.64: exactly two
        # tasks fit, so the session stays feasible after the late post.
        instance = LTCInstance(
            tasks=[Task.at(0, 0.0, 0.0)],
            workers=[
                Worker.at(index, float(index), 1.0, accuracy=0.9, capacity=2)
                for index in range(1, 7)
            ],
            error_rate=0.2,
            accuracy_model=ConstantAccuracy(0.9),
        )
        session = LAFSolver().open_session(instance)
        session.submit_tasks([Task.at(7, 2.0, 1.0)])
        assert session.snapshot().tasks_total == 2
        result = session.drive(WorkerStream(instance.workers))
        assert result.completed
        assert any(a.task_id == 7 for a in result.arrangement)

    def test_duplicate_task_ids_rejected(self, tiny_instance):
        session = LAFSolver().open_session(tiny_instance)
        existing_id = tiny_instance.tasks[0].task_id
        with pytest.raises(ValueError):
            session.submit_tasks([Task.at(existing_id, 1.0, 1.0)])

    def test_dynamic_solver_accepts_tasks_after_first_arrival(self, tiny_instance):
        # LAF rides the dynamic candidate engine, so mid-stream submission
        # is legal: the task joins the live snapshot and reopens completion.
        from repro.core.worker import Worker

        session = LAFSolver().open_session(tiny_instance)
        session.on_worker(tiny_instance.workers[0])
        session.submit_tasks([Task.at(7, 2.0, 1.0)])
        assert session.snapshot().tasks_total == 3
        for worker in tiny_instance.workers[1:]:
            session.on_worker(worker)
        # The original capacity budget exactly covers the two base tasks,
        # so the late task keeps the session open...
        assert not session.is_complete
        # ...until later arrivals serve it through the live snapshot.
        for index in range(7, 13):
            session.on_worker(
                Worker.at(index, 2.0, 1.0, accuracy=0.9, capacity=2)
            )
            if session.is_complete:
                break
        result = session.result()
        assert result.completed
        assert any(a.task_id == 7 for a in result.arrangement)

    def test_replay_session_still_freezes_at_first_arrival(self, tiny_instance):
        # Offline plans are computed for a fixed future: mid-stream tasks
        # must keep being refused.
        session = MCFLTCSolver().open_session(tiny_instance)
        session.on_worker(tiny_instance.workers[0])
        with pytest.raises(SessionStateError):
            session.submit_tasks([Task.at(7, 2.0, 1.0)])

    def test_mid_stream_duplicate_task_ids_rejected(self, tiny_instance):
        session = LAFSolver().open_session(tiny_instance)
        session.on_worker(tiny_instance.workers[0])
        existing_id = tiny_instance.tasks[0].task_id
        with pytest.raises(ValueError):
            session.submit_tasks([Task.at(existing_id, 1.0, 1.0)])


class TestReplaySession:
    def test_replays_the_offline_plan_exactly(self, tiny_instance):
        solved = MCFLTCSolver().solve(tiny_instance)
        session = MCFLTCSolver().open_session(tiny_instance)
        result = session.drive(WorkerStream(tiny_instance.workers))
        assert result.max_latency == solved.max_latency
        assert (
            {a.as_tuple() for a in result.arrangement}
            == {a.as_tuple() for a in solved.arrangement}
        )
        # the plan's diagnostics ride along
        assert result.extra["batches"] == solved.extra["batches"]

    def test_remains_incomplete_until_whole_plan_is_replayed(self, tiny_instance):
        session = MCFLTCSolver().open_session(tiny_instance)
        result = session.drive(WorkerStream(tiny_instance.workers))
        # after a full drive the plan is exhausted and the session complete
        assert session.is_complete == result.completed

    def test_rejects_out_of_order_streams(self, tiny_instance):
        session = ReplaySession(MCFLTCSolver(), tiny_instance)
        with pytest.raises(SessionStateError):
            session.on_worker(tiny_instance.workers[2])  # index 3 first

    def test_rejected_arrival_does_not_desync_the_session(self, tiny_instance):
        solved = MCFLTCSolver().solve(tiny_instance)
        session = ReplaySession(MCFLTCSolver(), tiny_instance)
        with pytest.raises(SessionStateError):
            session.on_worker(tiny_instance.workers[1])  # wrong worker first
        # the rejected arrival was not counted; the correct stream still works
        result = session.drive(WorkerStream(tiny_instance.workers))
        assert result.max_latency == solved.max_latency
        assert result.workers_observed <= tiny_instance.num_workers

    def test_rejects_foreign_workers(self, tiny_instance):
        from dataclasses import replace

        session = ReplaySession(MCFLTCSolver(), tiny_instance)
        imposter = replace(tiny_instance.workers[0], accuracy=0.95)
        with pytest.raises(SessionStateError):
            session.on_worker(imposter)


class TestOpenSessionDispatch:
    def test_open_session_picks_the_right_adapter(self, tiny_instance):
        assert isinstance(
            open_session(LAFSolver(), tiny_instance), OnlineSolverSession
        )
        assert isinstance(
            open_session(MCFLTCSolver(), tiny_instance), ReplaySession
        )

    def test_snapshot_summary_is_flat_floats(self, tiny_instance):
        session = LAFSolver().open_session(tiny_instance)
        session.on_worker(tiny_instance.workers[0])
        snapshot = session.snapshot()
        assert isinstance(snapshot, SessionSnapshot)
        summary = snapshot.summary()
        assert summary["workers_observed"] == 1.0
        assert all(isinstance(value, float) for value in summary.values())
        assert snapshot.tasks_remaining == (
            snapshot.tasks_total - snapshot.tasks_completed
        )
