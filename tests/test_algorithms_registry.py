"""Tests for the solver registry."""

import pytest

from repro.algorithms.base import OfflineSolver, SolveResult
from repro.algorithms.registry import (
    DEFAULT_SOLVER_NAMES,
    available_solvers,
    get_solver,
    register_solver,
)


class TestRegistry:
    def test_paper_algorithms_are_registered(self):
        for name in DEFAULT_SOLVER_NAMES:
            solver = get_solver(name)
            assert solver.name == name

    def test_default_names_match_the_paper_figure_legend(self):
        assert DEFAULT_SOLVER_NAMES == ["Base-off", "MCF-LTC", "Random", "LAF", "AAM"]

    def test_extra_solvers_available(self):
        names = available_solvers()
        assert "Exact" in names
        assert "LGF-only" in names and "LRF-only" in names

    def test_get_solver_returns_fresh_instances(self):
        assert get_solver("LAF") is not get_solver("LAF")

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError) as excinfo:
            get_solver("does-not-exist")
        assert "known solvers" in str(excinfo.value)

    def test_register_custom_solver_and_overwrite_protection(self):
        class DummySolver(OfflineSolver):
            name = "Dummy-test-solver"

            def solve(self, instance):  # pragma: no cover - never called
                raise NotImplementedError

        register_solver("Dummy-test-solver", DummySolver, overwrite=True)
        assert "Dummy-test-solver" in available_solvers()
        with pytest.raises(ValueError):
            register_solver("Dummy-test-solver", DummySolver)
        # Clean up so repeated test runs in the same session stay consistent.
        register_solver("Dummy-test-solver", DummySolver, overwrite=True)

    def test_online_flags(self):
        assert get_solver("LAF").is_online
        assert get_solver("AAM").is_online
        assert get_solver("Random").is_online
        assert not get_solver("MCF-LTC").is_online
        assert not get_solver("Base-off").is_online
