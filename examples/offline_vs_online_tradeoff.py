#!/usr/bin/env python
"""Offline vs online: what does acting on partial information cost?

The LTC problem is solved in two regimes: offline (the platform knows every
future check-in) and online (assignments are made the moment a worker
appears).  This example quantifies the gap on the same workloads across the
tolerable-error-rate sweep of Fig. 4a, and relates both to the Theorem 2
lower bound.

Run with::

    python examples/offline_vs_online_tradeoff.py
"""

from __future__ import annotations

from repro import SyntheticConfig, generate_synthetic_instance, get_solver
from repro.algorithms.bounds import latency_lower_bound

ERROR_RATES = [0.06, 0.10, 0.14, 0.18, 0.22]
ALGORITHMS = ["MCF-LTC", "Base-off", "AAM", "LAF", "Random"]


def main() -> None:
    print("Latency (max worker index) for varying tolerable error rate epsilon")
    header = f"{'epsilon':>8s} {'bound':>7s} " + " ".join(f"{name:>9s}" for name in ALGORITHMS)
    print(header)
    print("-" * len(header))

    for error_rate in ERROR_RATES:
        config = SyntheticConfig(
            num_tasks=60,
            num_workers=900,
            capacity=6,
            error_rate=error_rate,
            grid_size=140.0,
            seed=42,
            # Keep the task/worker placement identical across the sweep so
            # only the quality threshold changes (as in the paper's Fig. 4a).
            min_eligible_workers=19,
        )
        instance = generate_synthetic_instance(config)
        bound = latency_lower_bound(instance.num_tasks, instance.delta,
                                    instance.capacity)
        latencies = []
        for name in ALGORITHMS:
            result = get_solver(name).solve(instance)
            latencies.append(result.max_latency if result.completed else -1)
        row = f"{error_rate:8.2f} {bound:7.0f} " + " ".join(f"{latency:9d}" for latency in latencies)
        print(row)

    print("\nReading the table:")
    print(" * every algorithm needs fewer workers as epsilon grows (delta shrinks);")
    print(" * the offline algorithms (MCF-LTC, Base-off) exploit their knowledge of")
    print("   future arrivals and sit closest to the lower bound;")
    print(" * AAM is the strongest online algorithm, and the naive Random baseline")
    print("   pays for ignoring task completion state.")


if __name__ == "__main__":
    main()
