"""Tests for the textual experiment report rendering."""

from repro.experiments.report import render_series, render_summary, render_table
from repro.simulation.results import ExperimentRecord, ResultTable


def small_table():
    table = ResultTable("fig_demo", "|T|")
    for value in (10.0, 20.0):
        for algorithm, latency in (("LAF", 100.0), ("AAM", 90.0)):
            table.add(ExperimentRecord(
                experiment_id="fig_demo",
                sweep_parameter="|T|",
                sweep_value=value,
                algorithm=algorithm,
                repetition=0,
                max_latency=latency + value,
                completed=True,
                runtime_seconds=0.25,
                peak_memory_mb=12.5,
            ))
    return table


class TestRenderSeries:
    def test_contains_header_algorithms_and_values(self):
        text = render_series(small_table(), "max_latency")
        assert "fig_demo" in text
        assert "LAF" in text and "AAM" in text
        assert "10" in text and "20" in text
        assert "110" in text  # LAF at |T| = 10

    def test_runtime_formatting(self):
        text = render_series(small_table(), "runtime_seconds")
        assert "0.250" in text

    def test_memory_formatting(self):
        text = render_series(small_table(), "peak_memory_mb")
        assert "12.50" in text

    def test_missing_cells_render_as_dash(self):
        table = ResultTable("fig_demo", "|T|")
        table.add(ExperimentRecord(
            experiment_id="fig_demo", sweep_parameter="|T|", sweep_value=10.0,
            algorithm="LAF", repetition=0, max_latency=5.0, completed=True,
            runtime_seconds=0.1, peak_memory_mb=1.0,
        ))
        table.add(ExperimentRecord(
            experiment_id="fig_demo", sweep_parameter="|T|", sweep_value=20.0,
            algorithm="AAM", repetition=0, max_latency=6.0, completed=True,
            runtime_seconds=0.1, peak_memory_mb=1.0,
        ))
        text = render_series(table, "max_latency")
        assert "-" in text


class TestRenderTableAndSummary:
    def test_render_table_includes_all_three_panels(self):
        text = render_table(small_table())
        assert "Max index of worker" in text
        assert "Running time" in text
        assert "Peak memory" in text

    def test_render_table_with_custom_metrics(self):
        text = render_table(small_table(), metrics=["max_latency"])
        assert "Running time" not in text

    def test_render_summary_orders_by_experiment_id(self):
        tables = {"b_exp": small_table(), "a_exp": small_table()}
        tables["b_exp"].experiment_id = "fig_demo"
        text = render_summary({"a": small_table(), "b": small_table()})
        assert text.index("=== a ===") < text.index("=== b ===")
