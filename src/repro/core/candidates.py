"""Candidate (assignable) tasks for a worker.

The paper's bound analysis assumes every *assigned* pair has a predicted
accuracy of at least the spam threshold (``Acc(w, t) >= 0.66``), which makes
``Acc*`` fall in ``[0.1, 1]`` (Theorem 2).  Under the default sigmoid
accuracy function this is equivalent to a distance cut-off around ``d_max``,
which is also how the evaluation section talks about "nearby" tasks for the
``Base-off`` and ``Random`` baselines.

The :class:`CandidateFinder` centralises this eligibility rule.  For the
sigmoid model it converts the accuracy threshold into an eligibility radius
and answers queries through a :class:`~repro.geo.grid_index.GridIndex`, which
keeps the algorithms near-linear in practice; for arbitrary accuracy models
it falls back to scanning all tasks.
"""

from __future__ import annotations

import math
from typing import (
    AbstractSet,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.accuracy import AccuracyModel, SigmoidDistanceAccuracy
from repro.core.instance import LTCInstance
from repro.core.quality_threshold import MIN_WORKER_ACCURACY
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.bbox import BoundingBox
from repro.geo.grid_index import GridIndex


def sigmoid_eligibility_radius(
    historical_accuracy: float, d_max: float, min_accuracy: float
) -> float:
    """Largest distance at which the sigmoid accuracy stays above a threshold.

    Solves ``p / (1 + exp(d - d_max)) >= min_accuracy`` for ``d``.  Returns a
    negative number when the worker can never reach the threshold (i.e. no
    task is eligible).
    """
    if min_accuracy <= 0:
        return math.inf
    ratio = historical_accuracy / min_accuracy - 1.0
    if ratio <= 0:
        return -1.0
    return d_max + math.log(ratio)


class CandidateFinder:
    """Answers "which tasks may this worker be assigned?".

    Parameters
    ----------
    instance:
        The LTC instance whose tasks are indexed.
    min_accuracy:
        Minimum predicted accuracy for a pair to be assignable.  Defaults to
        the instance's ``min_assignable_accuracy``.
    use_spatial_index:
        Build a grid index when the accuracy model is the sigmoid model.
        Disable to force the exhaustive scan (useful in tests).
    """

    def __init__(
        self,
        instance: LTCInstance,
        min_accuracy: Optional[float] = None,
        use_spatial_index: bool = True,
    ) -> None:
        self._instance = instance
        self._min_accuracy = (
            instance.min_assignable_accuracy if min_accuracy is None else min_accuracy
        )
        self._model: AccuracyModel = instance.accuracy_model
        self._grid: Optional[GridIndex[int]] = None
        self._tasks_by_id: Dict[int, Task] = {
            task.task_id: task for task in instance.tasks
        }
        if use_spatial_index and isinstance(self._model, SigmoidDistanceAccuracy):
            self._grid = self._build_grid(instance.tasks, self._model.d_max)

    @staticmethod
    def _build_grid(tasks: Sequence[Task], d_max: float) -> GridIndex[int]:
        bounds = BoundingBox.from_points(task.location for task in tasks)
        # Give the border tasks a margin of one eligibility radius so queries
        # from workers just outside the task extent still land in valid cells.
        bounds = bounds.expanded(max(d_max, 1.0))
        cell = max(d_max, 1.0)
        grid: GridIndex[int] = GridIndex(bounds, cell)
        for task in tasks:
            grid.insert(task.task_id, task.location)
        return grid

    @property
    def min_accuracy(self) -> float:
        """The eligibility threshold on predicted accuracy."""
        return self._min_accuracy

    def is_eligible(self, worker: Worker, task: Task) -> bool:
        """Whether ``worker`` may be assigned ``task``."""
        return self._model.accuracy(worker, task) >= self._min_accuracy - 1e-12

    def _eligible_pool(self, worker: Worker, ordered: bool) -> Sequence[Task]:
        """Tasks within the worker's eligibility radius, before the final
        per-pair accuracy check (empty when no task can ever qualify).

        ``ordered`` sorts the grid hits by task id (the contract of
        :meth:`candidates`); the unordered form skips the sort for
        short-circuiting callers.  Without a grid the pool is simply every
        task, in instance order either way.
        """
        if self._grid is not None and isinstance(self._model, SigmoidDistanceAccuracy):
            radius = sigmoid_eligibility_radius(
                worker.accuracy, self._model.d_max, self._min_accuracy
            )
            if radius < 0:
                return []
            nearby_ids = self._grid.query_radius(worker.location, radius)
            if ordered:
                nearby_ids = sorted(nearby_ids)
            return [self._tasks_by_id[task_id] for task_id in nearby_ids]
        return self._instance.tasks

    def iter_candidates(
        self, worker: Worker, allowed_ids: Optional[AbstractSet[int]] = None
    ) -> Iterator[Task]:
        """Lazily yield the worker's assignable tasks in ascending-id order.

        ``allowed_ids`` optionally restricts the yield to a task-id subset
        (e.g. the uncompleted tasks of a batch) *before* the per-pair
        accuracy check, so callers pay nothing for tasks they would filter
        out anyway.  This is the streaming form used to feed the flow
        kernel's arc arena without building per-worker lists.

        The two "no restriction set" spellings mean opposite things and are
        deliberately *not* interchangeable: ``allowed_ids=None`` means "no
        restriction — every eligible task qualifies", while an **empty set
        means "nothing is allowed" and yields no tasks at all** (the natural
        reading for a batch whose uncompleted-task set has drained).  Only
        ``None`` is the don't-care value; do not pass an empty set to mean
        "unrestricted".
        """
        if allowed_ids is not None and not allowed_ids:
            # Explicit empty restriction: nothing can qualify.  Returning
            # up front (rather than scanning the pool and filtering every
            # task out) makes the semantics visible and the drained-batch
            # case free.
            return
        pool = self._eligible_pool(worker, ordered=True)
        if allowed_ids is None:
            for task in pool:
                if self.is_eligible(worker, task):
                    yield task
        else:
            for task in pool:
                if task.task_id in allowed_ids and self.is_eligible(worker, task):
                    yield task

    def eligible_pairs(
        self,
        workers: Iterable[Worker],
        allowed_ids: Optional[AbstractSet[int]] = None,
    ) -> Iterator[Tuple[Worker, Task]]:
        """Bulk-iterate every assignable ``(worker, task)`` pair.

        Pairs stream grouped by worker (in the given worker order) with
        tasks ascending by id inside each group — exactly the stable arc
        order the MCF-LTC reduction appends to the kernel arena.

        ``allowed_ids`` follows :meth:`iter_candidates` semantics:
        ``None`` leaves the task set unrestricted, while an empty set means
        "nothing is allowed" and yields no pairs for any worker.
        """
        if allowed_ids is not None and not allowed_ids:
            return
        for worker in workers:
            for task in self.iter_candidates(worker, allowed_ids):
                yield worker, task

    def candidates(self, worker: Worker) -> List[Task]:
        """All tasks the worker may be assigned, in ascending task-id order."""
        return list(self.iter_candidates(worker))

    def has_candidates(self, worker: Worker) -> bool:
        """Whether at least one task is assignable to the worker.

        Short-circuits on the first eligible task and skips the id sort, so
        it is the cheap eligibility test for hot paths (the service layer's
        routing decision) where the full candidate list is not needed.
        """
        pool = self._eligible_pool(worker, ordered=False)
        return any(self.is_eligible(worker, task) for task in pool)

    def candidate_count_per_task(self) -> Dict[int, int]:
        """For every task, the number of workers eligible to perform it.

        Used by the ``Base-off`` baseline, which prioritises tasks with few
        remaining nearby workers, and by feasibility diagnostics.
        """
        counts = {task.task_id: 0 for task in self._instance.tasks}
        for worker in self._instance.workers:
            for task in self.candidates(worker):
                counts[task.task_id] += 1
        return counts
