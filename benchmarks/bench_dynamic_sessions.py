"""Benchmark: long-lived dynamic sessions vs rebuild-per-submit.

The paper's online setting is a stream — tasks keep being posted while
workers trickle in — and before the dynamic snapshot layer the candidate
engine had to be **rebuilt from scratch on every task submission** (full
re-sort, CSR re-pack, per-solver state re-derivation).  This benchmark
pins the win of the incremental path on exactly that regime, plus a
steady-state control:

* **dynamic** — one long LAF (and AAM) session: an initial task set,
  a long worker stream, and a batch of new tasks submitted every
  ``--submit-every`` arrivals through ``Session.submit_tasks``.  Two
  drivers consume the identical event sequence:

  - ``incremental`` — the shipped path: appends land in the engine's
    spill arrays, completions tombstone, the CSR grid rebuilds only at
    the spill threshold;
  - ``rebuild`` — a driver that mimics the pre-dynamic behaviour by
    rebuilding the solver's ``CandidateFinder`` from scratch at every
    submission (and re-applying the retired set to the fresh snapshot).

  Both must produce **byte-identical arrangements**; the speedup is the
  honest price of rebuild-per-submit.

* **steady_state** — the same solvers with every task posted up front
  and no mid-stream submissions, against the retained pre-engine legacy
  observe loops.  This guards the other side of the tentpole: the
  tombstone/spill machinery must not tax the static query path (the
  speedup-vs-legacy here should match ``BENCH_candidates.json``).

Timings are medians over interleaved repeats.  The suite registers with
the shared registry in :mod:`_common`, reports in the shared schema, and
is normally run through ``benchmarks/bench_all.py``; standalone it writes
``BENCH_dynamic_sessions.json`` at the repo root (or a smoke report under
``benchmarks/results/`` with ``--smoke``).

Usage::

    PYTHONPATH=src python benchmarks/bench_dynamic_sessions.py
    PYTHONPATH=src python benchmarks/bench_dynamic_sessions.py \
        --tasks 120 --workers 2500 --submit-batch 20 --submit-every 80 \
        --repeats 2 --output benchmarks/results/dynamic_sessions_smoke.json
"""

from __future__ import annotations

import math
import random
import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import _common
from _common import BenchSuite, SuiteResult

from repro.algorithms.aam import AAMSolver
from repro.algorithms.laf import LAFSolver
from repro.core.candidate_engine import available_candidate_backends
from repro.core.candidates import CandidateFinder
from repro.core.candidates_legacy import (
    LegacyCandidateFinder,
    legacy_aam_observe,
    legacy_laf_observe,
)
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point

DEFAULT_OUTPUT = _common.REPO_ROOT / "BENCH_dynamic_sessions.json"


def build_workload(args) -> tuple:
    """The long stream: a base instance plus timed task-batch events.

    Returns ``(base_instance, events)`` where ``events`` interleaves
    ``("worker", w)`` arrivals with ``("tasks", [...])`` submissions every
    ``submit_every`` arrivals, all ids increasing in posting order (the
    common production shape, which keeps the engine's position order equal
    to id order).
    """
    rng = random.Random(args.seed)
    box = args.box
    if box is None:
        radius = 29.0
        box = math.sqrt(args.tasks * math.pi * radius * radius / args.degree)

    def new_task(task_id):
        return Task(task_id=task_id,
                    location=Point(rng.uniform(0, box), rng.uniform(0, box)))

    base_tasks = [new_task(i) for i in range(args.tasks)]
    workers = [
        Worker(
            index=index,
            location=Point(rng.uniform(-0.05 * box, 1.05 * box),
                           rng.uniform(-0.05 * box, 1.05 * box)),
            accuracy=rng.uniform(0.72, 0.98),
            capacity=args.capacity,
        )
        for index in range(1, args.workers + 1)
    ]
    base = LTCInstance(tasks=base_tasks, workers=workers,
                       error_rate=args.error_rate, name="bench_dynamic")
    events = []
    next_id = args.tasks
    submissions = 0
    for count, worker in enumerate(workers, start=1):
        events.append(("worker", worker))
        if count % args.submit_every == 0:
            batch = [new_task(next_id + i) for i in range(args.submit_batch)]
            next_id += args.submit_batch
            events.append(("tasks", batch))
            submissions += 1
    return base, events, box, submissions


def clone_instance(base: LTCInstance) -> LTCInstance:
    """Dynamic sessions mutate their instance in place; each run gets a copy."""
    return LTCInstance(
        tasks=list(base.tasks),
        workers=list(base.workers),
        error_rate=base.error_rate,
        accuracy_model=base.accuracy_model,
        name=base.name,
        min_assignable_accuracy=base.min_assignable_accuracy,
    )


class _RebuildPerSubmitMixin:
    """Mimics the pre-dynamic engine: full snapshot rebuild per submission.

    ``add_tasks`` extends instance and arrangement exactly like the
    shipped path, then throws the candidate snapshot away, rebuilds it
    from scratch over the enlarged task set, and re-applies the retired
    (completed) set to the fresh snapshot — which is precisely the work
    the incremental spill/tombstone layer avoids.  Decisions (and so
    arrangements) are identical to the incremental driver by the same
    argument that makes the dynamic test-suite oracle exact.
    """

    def add_tasks(self, tasks):
        tasks = list(tasks)
        self._instance.add_tasks(tasks)
        self._arrangement.add_tasks(tasks)
        retired = [
            task.task_id
            for task in self._instance.tasks
            if self._arrangement.is_task_complete(task.task_id)
        ]
        self._candidates = CandidateFinder(
            self._instance,
            use_spatial_index=self._use_spatial_index,
            backend=self._candidates_backend,
        )
        self._candidates.retire_tasks(retired)
        self._after_rebuild()

    def _after_rebuild(self):
        pass


class RebuildLAF(_RebuildPerSubmitMixin, LAFSolver):
    pass


class RebuildAAM(_RebuildPerSubmitMixin, AAMSolver):
    def _after_rebuild(self):
        # Every piece of position-indexed / derived state must be
        # re-derived over the fresh snapshot — the rest of the rebuild
        # tax the incremental path avoids.  The running sum is reseeded
        # with the naive left-to-right order, exactly like ``start()``;
        # the knife-edge band keeps the LGF/LRF switch identical.
        import heapq

        arrangement = self._arrangement
        engine = self._candidates.engine
        delta = arrangement.delta
        need = engine.float_array(delta)
        heap = []
        total = 0.0
        count = 0
        for task in self._instance.tasks:
            task_id = task.task_id
            if arrangement.is_task_complete(task_id):
                continue
            position = engine.position_of[task_id]
            value = delta - arrangement.accumulated_of(task_id)
            need[position] = value
            heap.append((-value, position))
            total += value
            count += 1
        heapq.heapify(heap)
        self._need = need
        self._need_heap = heap
        self._uncompleted_count = count
        self._remaining_sum = total
        self._sum_compensation = 0.0
        self._abs_update_total = total


def drive_session(solver, base: LTCInstance, events) -> tuple:
    """Feed the event stream through a session; stop once fully complete
    with no submissions left (the long-lived serving loop).  Completion
    is tracked incrementally from the returned assignments — an O(T)
    ``is_complete`` poll per arrival would dominate the candidate path
    being measured, identically for every driver."""
    session = solver.open_session(clone_instance(base))
    total_batches = sum(1 for kind, _ in events if kind == "tasks")
    arrivals = 0
    consumed_batches = 0
    open_tasks = base.num_tasks
    finished = set()
    arrangement = None
    for kind, payload in events:
        if kind == "tasks":
            session.submit_tasks(payload)
            consumed_batches += 1
            open_tasks += len(payload)
        else:
            if open_tasks == 0 and consumed_batches == total_batches:
                break
            assignments = session.on_worker(payload)
            arrivals += 1
            if arrangement is None:
                arrangement = session.arrangement
            for assignment in assignments:
                task_id = assignment.task_id
                if task_id not in finished and arrangement.is_task_complete(
                    task_id
                ):
                    finished.add(task_id)
                    open_tasks -= 1
    result = session.result()
    return result.arrangement.assignments, arrivals, result.completed


def bench_dynamic(base, events, repeats, backends):
    sections = {}
    witnesses = {}
    cases = {"LAF": (LAFSolver, RebuildLAF), "AAM": (AAMSolver, RebuildAAM)}
    for name, (solver_cls, rebuild_cls) in cases.items():
        runners = {}
        for backend in backends:
            runners[f"rebuild_{backend}"] = (
                lambda cls=rebuild_cls, b=backend: drive_session(
                    cls(candidates=b), base, events
                )
            )
            runners[f"incremental_{backend}"] = (
                lambda cls=solver_cls, b=backend: drive_session(
                    cls(candidates=b), base, events
                )
            )
        times, outputs = _common.run_interleaved(runners, repeats)
        baseline_key = f"incremental_{backends[0]}"
        base_assignments, base_arrivals, base_completed = outputs[baseline_key]
        for impl, (assignments, arrivals, _) in outputs.items():
            if assignments != base_assignments or arrivals != base_arrivals:
                raise AssertionError(
                    f"{name}/{impl} diverged from {baseline_key} "
                    f"({len(assignments)} vs {len(base_assignments)} assignments)"
                )
        entry = {
            "arrivals": base_arrivals,
            "assignments": len(base_assignments),
            "completed": base_completed,
        }
        medians_s = {impl: statistics.median(times[impl]) for impl in runners}
        for impl in runners:
            entry[f"{impl}_ms_median"] = round(medians_s[impl] * 1000, 3)
        speedups = {}
        for backend in backends:
            speedups[f"incremental_{backend}_vs_rebuild_{backend}"] = (
                _common.ratio(medians_s[f"rebuild_{backend}"],
                              medians_s[f"incremental_{backend}"])
            )
            entry[f"{backend}_incremental_speedup_vs_rebuild"] = (
                speedups[f"incremental_{backend}_vs_rebuild_{backend}"]
            )
        sections[f"dynamic_{name.lower()}"] = {
            "baseline": f"rebuild_{backends[0]}",
            "timings_ms": {
                impl: round(value * 1000, 3)
                for impl, value in medians_s.items()
            },
            "speedups": speedups,
            "detail": entry,
        }
        witnesses[name] = {
            "arrivals": base_arrivals,
            "assignments": len(base_assignments),
            "completed": base_completed,
            "arrangement_digest": _common.digest(base_assignments),
        }
    return sections, witnesses


def drive_legacy_static(instance: LTCInstance, observe) -> tuple:
    """The retained pre-engine observe loop over a static instance."""
    arrangement = instance.new_arrangement()
    finder = LegacyCandidateFinder(instance)
    arrivals = 0
    open_tasks = instance.num_tasks
    finished = set()
    for worker in instance.workers:
        if open_tasks == 0:
            break
        assigned_ids = observe(instance, arrangement, finder, worker)
        arrivals += 1
        for task_id in assigned_ids:
            if task_id not in finished and arrangement.is_task_complete(task_id):
                finished.add(task_id)
                open_tasks -= 1
    return arrangement.assignments, arrivals


def drive_engine_static(instance: LTCInstance, solver_cls, backend) -> tuple:
    solver = solver_cls(candidates=backend)
    solver.start(clone_instance(instance))
    arrangement = solver.arrangement
    arrivals = 0
    open_tasks = instance.num_tasks
    finished = set()
    for worker in instance.workers:
        if open_tasks == 0:
            break
        assignments = solver.observe(worker)
        arrivals += 1
        for assignment in assignments:
            task_id = assignment.task_id
            if task_id not in finished and arrangement.is_task_complete(task_id):
                finished.add(task_id)
                open_tasks -= 1
    return arrangement.assignments, arrivals


def bench_steady_state(base: LTCInstance, events, repeats, backends):
    """Static control: all tasks up front, no submissions, vs legacy loops.

    Uses the *full* task set (base plus every batch the dynamic section
    submits), so the workload matches the dynamic section's end state.
    """
    all_tasks = list(base.tasks)
    for kind, payload in events:
        if kind == "tasks":
            all_tasks.extend(payload)
    static = LTCInstance(
        tasks=all_tasks, workers=list(base.workers),
        error_rate=base.error_rate, accuracy_model=base.accuracy_model,
        name=base.name, min_assignable_accuracy=base.min_assignable_accuracy,
    )
    sections = {}
    witnesses = {}
    cases = {
        "LAF": (legacy_laf_observe, LAFSolver),
        "AAM": (legacy_aam_observe, AAMSolver),
    }
    for name, (legacy_observe, solver_cls) in cases.items():
        runners = {
            "legacy": lambda lo=legacy_observe: drive_legacy_static(static, lo)
        }
        for backend in backends:
            runners[backend] = (
                lambda cls=solver_cls, b=backend: drive_engine_static(
                    static, cls, b
                )
            )
        times, outputs = _common.run_interleaved(runners, repeats)
        base_assignments, base_arrivals = outputs["legacy"]
        for impl, (assignments, arrivals) in outputs.items():
            if assignments != base_assignments or arrivals != base_arrivals:
                raise AssertionError(f"steady_state {name}/{impl} diverged")
        entry = {"arrivals": base_arrivals,
                 "assignments": len(base_assignments)}
        medians_s = {impl: statistics.median(times[impl]) for impl in runners}
        for impl in runners:
            entry[f"{impl}_ms_median"] = round(medians_s[impl] * 1000, 3)
            entry[f"{impl}_us_per_arrival"] = round(
                medians_s[impl] * 1e6 / max(1, base_arrivals), 2
            )
        speedups = {}
        for backend in backends:
            speedups[f"{backend}_vs_legacy"] = _common.ratio(
                medians_s["legacy"], medians_s[backend]
            )
            entry[f"{backend}_speedup_vs_legacy"] = (
                speedups[f"{backend}_vs_legacy"]
            )
        sections[f"steady_{name.lower()}"] = {
            "baseline": "legacy",
            "timings_ms": {
                impl: round(value * 1000, 3)
                for impl, value in medians_s.items()
            },
            "speedups": speedups,
            "detail": entry,
        }
        witnesses[name] = {
            "arrivals": base_arrivals,
            "assignments": len(base_assignments),
            "arrangement_digest": _common.digest(base_assignments),
        }
    return sections, witnesses


def run_suite(args) -> SuiteResult:
    backends = args.backends
    if backends is None:
        backends = [
            b for b in ("python", "numpy") if b in available_candidate_backends()
        ]

    base, events, box, submissions = build_workload(args)
    total_tasks = args.tasks + submissions * args.submit_batch
    print(f"workload: {args.tasks} initial + {submissions} x "
          f"{args.submit_batch} submitted tasks (total {total_tasks}), "
          f"{args.workers} arrivals, box={box:.1f}")

    sections, dynamic_witnesses = bench_dynamic(base, events, args.repeats,
                                                backends)
    for name in ("LAF", "AAM"):
        entry = sections[f"dynamic_{name.lower()}"]["detail"]
        impls = [f"{kind}_{b}" for b in backends
                 for kind in ("incremental", "rebuild")]
        timings = "  ".join(
            f"{impl}={entry[f'{impl}_ms_median']:>9.2f}ms" for impl in impls
        )
        speedups = "  ".join(
            f"{b}={entry[f'{b}_incremental_speedup_vs_rebuild']:>5.2f}x"
            for b in backends
        )
        print(f"dynamic {name:>4}  arrivals={entry['arrivals']:>6}  {timings}  "
              f"incremental vs rebuild: {speedups}")

    steady_sections, steady_witnesses = bench_steady_state(
        base, events, args.repeats, backends
    )
    sections.update(steady_sections)
    for name in ("LAF", "AAM"):
        entry = sections[f"steady_{name.lower()}"]["detail"]
        timings = "  ".join(
            f"{impl}={entry[f'{impl}_us_per_arrival']:>8.1f}us"
            for impl in ["legacy", *backends]
        )
        speedups = "  ".join(
            f"{b}={entry[f'{b}_speedup_vs_legacy']:>5.2f}x" for b in backends
        )
        print(f"steady  {name:>4}  per-arrival  {timings}  vs legacy: "
              f"{speedups}")

    headline = {}
    for backend in backends:
        for name in ("laf", "aam"):
            headline[f"{name}_incremental_{backend}_vs_rebuild"] = (
                sections[f"dynamic_{name}"]["speedups"][
                    f"incremental_{backend}_vs_rebuild_{backend}"
                ]
            )
            headline[f"{name}_steady_{backend}_vs_legacy"] = (
                sections[f"steady_{name}"]["speedups"][f"{backend}_vs_legacy"]
            )

    config = {
        "initial_tasks": args.tasks,
        "submitted_batches": submissions,
        "submit_batch": args.submit_batch,
        "submit_every": args.submit_every,
        "total_tasks": total_tasks,
        "workers": args.workers,
        "box": round(box, 2),
        "capacity": args.capacity,
        "error_rate": args.error_rate,
        "repeats": args.repeats,
        "seed": args.seed,
        "backends": list(backends),
    }
    return SuiteResult(
        config=config,
        sections=sections,
        headline_speedups=headline,
        fingerprint_payload={
            "dynamic": dynamic_witnesses,
            "steady_state": steady_witnesses,
        },
    )


def add_arguments(parser) -> None:
    parser.add_argument("--tasks", type=int, default=2000,
                        help="initial task set size")
    parser.add_argument("--workers", type=int, default=6000,
                        help="length of the merged arrival stream")
    parser.add_argument("--submit-batch", type=int, default=25,
                        help="tasks posted per mid-stream submission")
    parser.add_argument("--submit-every", type=int, default=40,
                        help="arrivals between submissions (small frequent "
                             "batches are the production stream shape — and "
                             "the regime where rebuild-per-submit hurts)")
    parser.add_argument("--box", type=float, default=None,
                        help="side of the square region (default: sized for "
                             "a worker degree around --degree)")
    parser.add_argument("--degree", type=float, default=60.0,
                        help="target mean candidates per worker when --box "
                             "is not given")
    parser.add_argument("--capacity", type=int, default=6)
    parser.add_argument("--error-rate", type=float, default=0.14)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=20180416)
    parser.add_argument("--backends", nargs="+", default=None,
                        help="candidate backends to time (default: all "
                             "available)")


SUITE = _common.register_suite(BenchSuite(
    name="dynamic_sessions",
    description=(
        "Long-lived sessions over an interleaved task/worker stream: "
        "the incremental candidate snapshot (spill appends + lazy "
        "tombstones + threshold grid rebuilds) vs a driver that "
        "rebuilds the snapshot from scratch at every mid-stream task "
        "submission (the pre-dynamic behaviour).  'steady_*' is "
        "the static control: the same solvers with all tasks posted "
        "up front, vs the retained pre-engine legacy observe loops. "
        "Arrangements are asserted byte-identical in both sections."
    ),
    default_output=DEFAULT_OUTPUT,
    add_arguments=add_arguments,
    run=run_suite,
    smoke_overrides={"tasks": 120, "workers": 1500, "degree": 40.0,
                     "submit_batch": 15, "submit_every": 60, "repeats": 2},
))


if __name__ == "__main__":
    sys.exit(_common.suite_main(SUITE))
