"""Microbenchmark: array flow kernel vs the pre-refactor object-graph SSPA.

Builds LTC-shaped batch reductions (source -> workers -> tasks -> sink,
negative real-valued worker->task costs, exactly what ``MCFLTCSolver``
feeds the flow layer per batch) at several batch sizes and times one full
solve through each implementation:

* **legacy** — the retained pre-kernel path (:mod:`repro.flow.reference`):
  ``Edge`` objects, dict adjacency, O(V*E) Bellman-Ford initial potentials;
  network built from scratch, as the old solver did per batch.
* **kernel** — :class:`repro.flow.kernel.ArcArena` + one O(E) DAG potential
  pass + :func:`repro.flow.kernel.solve_mcf`.

Each timing covers build + potentials + solve (what MCF-LTC pays per
batch).  Results (median wall-time per size, augmentation counts, speedups)
are written as JSON — by default to ``BENCH_flow_kernel.json`` at the repo
root, the perf trajectory's first data point.

Usage::

    PYTHONPATH=src python benchmarks/bench_flow_kernel.py
    PYTHONPATH=src python benchmarks/bench_flow_kernel.py \
        --sizes 20 40 --repeats 2 --output benchmarks/results/flow_kernel_smoke.json
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import random
import statistics
import sys
import time
from pathlib import Path

from repro.flow.kernel import ArcArena, dag_potentials, solve_mcf
from repro.flow.reference import LegacyFlowNetwork, legacy_successive_shortest_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_flow_kernel.json"

# Shape parameters mirroring a paper-default batch: epsilon = 0.14 gives
# delta = 2 ln(1/0.14) ~= 3.93, so every task absorbs ceil(delta) = 4 useful
# answers; worker capacity K = 6; the batch sizing m = |T| * ceil(delta) / K
# implies |T| = 1.5 * batch_size tasks per batch.
CAPACITY = 6
TASK_NEED = math.ceil(2 * math.log(1 / 0.14))
TASKS_PER_WORKER = 1.5
DEGREE = 12  # eligible tasks per worker (grid-index candidates)


def build_case(num_workers: int, seed: int):
    """One LTC-shaped batch reduction as plain data."""
    rng = random.Random(seed)
    num_tasks = max(2, int(num_workers * TASKS_PER_WORKER))
    pairs = []
    for w in range(num_workers):
        degree = min(num_tasks, DEGREE)
        for t in sorted(rng.sample(range(num_tasks), degree)):
            pairs.append((w, t, rng.uniform(0.1, 1.0)))
    return num_tasks, pairs


def run_legacy(num_workers: int, num_tasks: int, pairs):
    network = LegacyFlowNetwork()
    for w in range(num_workers):
        network.add_edge("s", ("w", w), CAPACITY, 0.0)
    for w, t, value in pairs:
        network.add_edge(("w", w), ("t", t), 1, -value)
    for t in range(num_tasks):
        network.add_edge(("t", t), "d", TASK_NEED, 0.0)
    return legacy_successive_shortest_paths(network, "s", "d")


def run_kernel(num_workers: int, num_tasks: int, pairs):
    # Same node layout as MCFLTCSolver: source 0, sink 1, then tasks, then
    # workers.  Low task ids make Dijkstra's node-id tie-breaking pop
    # zero-distance task nodes (and then the sink) before exploring more of
    # the worker frontier.
    arena = ArcArena(2)  # 0 = source, 1 = sink
    task_base = arena.add_nodes(num_tasks)
    worker_base = arena.add_nodes(num_workers)
    for w in range(num_workers):
        arena.add_arc(0, worker_base + w, CAPACITY, 0.0)
    for w, t, value in pairs:
        arena.add_arc(worker_base + w, task_base + t, 1, -value)
    for t in range(num_tasks):
        arena.add_arc(task_base + t, 1, TASK_NEED, 0.0)
    topo = (
        [0]
        + list(range(worker_base, worker_base + num_workers))
        + list(range(task_base, task_base + num_tasks))
        + [1]
    )
    potentials = dag_potentials(arena, 0, topo)
    result = solve_mcf(arena, 0, 1, potentials=potentials)
    return result.flow_value, result.total_cost, result.augmentations


def bench_size(num_workers: int, repeats: int, seed: int) -> dict:
    num_tasks, pairs = build_case(num_workers, seed)
    # Interleave the two implementations so slow background drift (GC,
    # other processes) hits both phases equally instead of whichever ran
    # second.
    legacy_times, kernel_times = [], []
    legacy_out = kernel_out = None
    for _ in range(repeats):
        start = time.perf_counter()
        legacy_out = run_legacy(num_workers, num_tasks, pairs)
        legacy_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        kernel_out = run_kernel(num_workers, num_tasks, pairs)
        kernel_times.append(time.perf_counter() - start)
    legacy_s = statistics.median(legacy_times)
    kernel_s = statistics.median(kernel_times)
    legacy_value, legacy_cost, legacy_augs = legacy_out
    kernel_value, kernel_cost, kernel_augs = kernel_out
    if kernel_value != legacy_value or abs(kernel_cost - legacy_cost) > 1e-6:
        raise AssertionError(
            f"implementations disagree at {num_workers} workers: "
            f"kernel ({kernel_value}, {kernel_cost}) vs "
            f"legacy ({legacy_value}, {legacy_cost})"
        )
    return {
        "batch_workers": num_workers,
        "tasks": num_tasks,
        "pair_arcs": len(pairs),
        "flow_value": kernel_value,
        "total_cost": kernel_cost,
        "legacy_ms_median": round(legacy_s * 1000, 3),
        "kernel_ms_median": round(kernel_s * 1000, 3),
        "legacy_ms_best": round(min(legacy_times) * 1000, 3),
        "kernel_ms_best": round(min(kernel_times) * 1000, 3),
        "speedup": round(legacy_s / kernel_s, 2) if kernel_s > 0 else float("inf"),
        "kernel_augmentations": kernel_augs,
        "legacy_augmentations": legacy_augs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=[50, 200, 800],
                        help="batch sizes (workers) to benchmark")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repetitions per size (median reported)")
    parser.add_argument("--seed", type=int, default=20180416)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    results = []
    for size in args.sizes:
        entry = bench_size(size, args.repeats, args.seed)
        results.append(entry)
        print(
            f"batch={entry['batch_workers']:>5}  tasks={entry['tasks']:>5}  "
            f"legacy={entry['legacy_ms_median']:>9.2f}ms  "
            f"kernel={entry['kernel_ms_median']:>8.2f}ms  "
            f"speedup={entry['speedup']:>6.2f}x  "
            f"augmentations={entry['kernel_augmentations']}"
        )

    report = {
        "benchmark": "flow_kernel",
        "description": (
            "Per-batch MCF-LTC flow solve: array kernel (ArcArena + DAG "
            "potentials + solve_mcf) vs the pre-refactor object-graph SSPA "
            "(Edge objects, dict adjacency, Bellman-Ford). Times are medians "
            "over repeated build+solve runs."
        ),
        "config": {
            "sizes": args.sizes,
            "repeats": args.repeats,
            "seed": args.seed,
            "capacity": CAPACITY,
            "task_need": TASK_NEED,
            "degree": DEGREE,
            "python": platform.python_version(),
        },
        "results": results,
        "largest_batch_speedup": results[-1]["speedup"] if results else None,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
