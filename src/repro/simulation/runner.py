"""Experiment runner: sweep x algorithms x repetitions -> ResultTable.

The paper repeats every experimental setting 30 times and reports averages.
The runner reproduces that protocol: for every sweep value it generates
``repetitions`` instances (with derived seeds), runs every configured solver
on each instance, meters runtime/memory, and records the results.

Solvers are configured declaratively as
:class:`~repro.algorithms.spec.SolverSpec`-likes — bare registry names,
spec strings such as ``"MCF-LTC?batch_multiplier=2.0"``, or spec objects.
When an experiment needs solver parameters that track the sweep itself (the
batch-size ablation), ``algorithms_for_sweep`` maps each sweep value to the
specs to run at that value.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.algorithms.registry import build_solver
from repro.algorithms.spec import SolverSpec, SolverSpecLike
from repro.core.instance import LTCInstance
from repro.simulation.metrics import measure_solver
from repro.simulation.results import ExperimentRecord, ResultTable

#: Builds an instance for (sweep value, repetition seed).
InstanceFactory = Callable[[float, int], LTCInstance]


@dataclass
class ExperimentRunner:
    """Runs one experiment sweep and collects a :class:`ResultTable`.

    Attributes
    ----------
    experiment_id:
        Identifier used in reports (e.g. ``"fig3_tasks"``).
    sweep_parameter:
        Human-readable name of the varied parameter (e.g. ``"|T|"``).
    sweep_values:
        The x-axis values of the figure panel.
    instance_factory:
        Callable building the instance for a sweep value and repetition.
    algorithms:
        Solver specs to compare: registry names, spec strings, or
        :class:`~repro.algorithms.spec.SolverSpec` objects.  Records are
        labelled with the full spec string.
    repetitions:
        How many times to repeat each setting (paper: 30).
    track_memory:
        Whether to meter peak memory (slows runs down slightly).
    progress:
        Optional callback ``(message) -> None`` for long sweeps.
    algorithms_for_sweep:
        Optional mapping from a sweep value to the specs to run at that
        value, overriding ``algorithms``.  Used when the sweep varies a
        *solver parameter* (e.g. the batch-size ablation); records are then
        labelled with the bare solver name, since the sweep value already
        identifies the varying parameter.  An entry may also be an explicit
        ``(label, spec)`` pair for specs that do not follow the sweep.
    """

    experiment_id: str
    sweep_parameter: str
    sweep_values: Sequence[float]
    instance_factory: InstanceFactory
    algorithms: Sequence[SolverSpecLike]
    repetitions: int = 3
    track_memory: bool = True
    progress: Optional[Callable[[str], None]] = None
    algorithms_for_sweep: Optional[
        Callable[[float], Sequence[Union[SolverSpecLike, Tuple[str, SolverSpecLike]]]]
    ] = None

    def _labelled_specs(self, sweep_value: float) -> List[Tuple[str, SolverSpec]]:
        """The (record label, spec) pairs to run at one sweep value.

        Specs from ``algorithms_for_sweep`` are the sweep-varying series, so
        they are labelled with the bare solver name — stable no matter how
        many sweep values a run covers, which keeps series mergeable across
        partial runs.  The mapping may instead yield an explicit
        ``(label, spec)`` pair for entries that do *not* follow the sweep
        (pinned parameters), so the table never shows a bare name next to a
        sweep column the parameters did not track.  Bare-name labels are
        widened to the full spec string when they would merge distinct specs
        of one solver.
        """
        if self.algorithms_for_sweep is None:
            return [
                (str(spec), spec)
                for spec in (SolverSpec.coerce(item) for item in self.algorithms)
            ]
        explicit: List[Tuple[Optional[str], SolverSpec]] = []
        for item in self.algorithms_for_sweep(sweep_value):
            if isinstance(item, tuple):
                label, spec = item
                explicit.append((str(label), SolverSpec.coerce(spec)))
            else:
                explicit.append((None, SolverSpec.coerce(item)))
        name_counts = Counter(
            spec.name for label, spec in explicit if label is None
        )
        taken = {label for label, _ in explicit if label is not None}
        return [
            (
                label
                if label is not None
                else (
                    spec.name
                    if name_counts[spec.name] == 1 and spec.name not in taken
                    else str(spec)
                ),
                spec,
            )
            for label, spec in explicit
        ]

    def _report(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def run(self) -> ResultTable:
        """Execute the full sweep and return the populated table."""
        table = ResultTable(self.experiment_id, self.sweep_parameter)
        for value in self.sweep_values:
            labelled = self._labelled_specs(value)
            for repetition in range(self.repetitions):
                instance = self.instance_factory(value, repetition)
                for label, spec in labelled:
                    solver = build_solver(spec)
                    measurement = measure_solver(
                        solver, instance, track_memory=self.track_memory
                    )
                    record = ExperimentRecord(
                        experiment_id=self.experiment_id,
                        sweep_parameter=self.sweep_parameter,
                        sweep_value=float(value),
                        algorithm=label,
                        repetition=repetition,
                        max_latency=float(measurement.result.max_latency),
                        completed=measurement.result.completed,
                        runtime_seconds=measurement.runtime_seconds,
                        peak_memory_mb=measurement.peak_memory_mb,
                        extra=dict(measurement.result.extra),
                    )
                    table.add(record)
                    self._report(
                        f"[{self.experiment_id}] {self.sweep_parameter}={value} "
                        f"rep={repetition} {label}: "
                        f"latency={measurement.result.max_latency} "
                        f"time={measurement.runtime_seconds:.2f}s"
                    )
        return table
