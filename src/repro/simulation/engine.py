"""Arrival-by-arrival online simulation.

:class:`OnlineSimulation` drives an online solver through a worker stream one
arrival at a time, recording what happened at every step.  Like everything
else it drives the solver through its :class:`~repro.core.session.Session`,
but unlike the plain :meth:`Session.drive` loop it keeps a full event log
(per-arrival assignments, completion progress, the exact arrival at which
each task completed) for examples, tests and anyone studying the dynamics of
the online algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.algorithms.base import OnlineSolver, SolveResult
from repro.core.arrangement import Assignment
from repro.core.instance import LTCInstance
from repro.core.stream import WorkerStream
from repro.core.worker import Worker


@dataclass(frozen=True, slots=True)
class ArrivalEvent:
    """What happened when one worker arrived."""

    worker_index: int
    assignments: tuple[Assignment, ...]
    tasks_remaining: int
    newly_completed_tasks: tuple[int, ...]

    @property
    def was_used(self) -> bool:
        """Whether the worker received at least one task."""
        return bool(self.assignments)


@dataclass
class SimulationOutcome:
    """Full record of an online simulation run."""

    result: SolveResult
    events: List[ArrivalEvent] = field(default_factory=list)
    completion_arrival_by_task: Dict[int, int] = field(default_factory=dict)

    @property
    def workers_arrived(self) -> int:
        """Total number of arrivals processed."""
        return len(self.events)

    @property
    def workers_skipped(self) -> int:
        """Arrivals that received no assignment."""
        return sum(1 for event in self.events if not event.was_used)


class OnlineSimulation:
    """Drives an :class:`OnlineSolver` and records per-arrival events."""

    def __init__(self, solver: OnlineSolver) -> None:
        if not solver.is_online:
            raise TypeError("OnlineSimulation requires an online solver")
        self._solver = solver

    def run(
        self,
        instance: LTCInstance,
        stream: Optional[WorkerStream] = None,
        stop_when_complete: bool = True,
    ) -> SimulationOutcome:
        """Run the simulation and return its outcome.

        Parameters
        ----------
        instance:
            The LTC instance; its tasks are revealed to the solver up front.
        stream:
            The arrival stream (defaults to the instance's workers in order).
        stop_when_complete:
            Stop at the first arrival after which all tasks are complete
            (the paper's setting).  When false the whole stream is consumed,
            which is useful for studying post-completion behaviour.
        """
        session = self._solver.open_session(instance)
        if stream is None:
            stream = WorkerStream(instance.workers)

        events: List[ArrivalEvent] = []
        completion_arrival: Dict[int, int] = {}
        previously_complete: set[int] = set()

        for worker in stream:
            assignments = session.on_worker(worker)
            arrangement = self._solver.arrangement
            newly_completed = []
            for assignment in assignments:
                task_id = assignment.task_id
                if task_id in previously_complete:
                    continue
                if arrangement.is_task_complete(task_id):
                    previously_complete.add(task_id)
                    completion_arrival[task_id] = worker.index
                    newly_completed.append(task_id)
            events.append(
                ArrivalEvent(
                    worker_index=worker.index,
                    assignments=tuple(assignments),
                    tasks_remaining=len(arrangement.uncompleted_tasks()),
                    newly_completed_tasks=tuple(newly_completed),
                )
            )
            if stop_when_complete and arrangement.is_complete():
                break

        result = session.result()
        return SimulationOutcome(
            result=result,
            events=events,
            completion_arrival_by_task=completion_arrival,
        )
