"""Candidate-engine backends: registry, selection, queries, and top-k."""

import math

import pytest

from repro.algorithms.registry import build_solver
from repro.core import candidate_engine as engine_pkg
from repro.core.accuracy import ConstantAccuracy, SigmoidDistanceAccuracy
from repro.core.candidate_engine import (
    AUTO_CANDIDATE_BACKEND,
    CANDIDATES_ENV_VAR,
    CandidateBackendUnavailableError,
    CandidateEngine,
    NumpyCandidateBackend,
    PythonCandidateBackend,
    available_candidate_backends,
    default_candidate_backend_name,
    get_candidate_backend,
    register_candidate_backend,
    registered_candidate_backends,
    resolve_candidate_backend,
)
from repro.core.candidate_engine import numpy_backend as numpy_backend_module
from repro.core.candidates import CandidateFinder
from repro.core.candidates_legacy import LegacyCandidateFinder
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.bbox import BoundingBox
from repro.geo.grid_index import GridIndex
from repro.geo.point import Point
from repro.structures.topk import TopKHeap

NUMPY_AVAILABLE = NumpyCandidateBackend().is_available()

needs_numpy = pytest.mark.skipif(not NUMPY_AVAILABLE, reason="numpy not installed")

BACKENDS = ["python"] + (["numpy"] if NUMPY_AVAILABLE else [])


def _no_numpy(monkeypatch):
    """Make the numpy candidate backend behave as if numpy were absent."""

    def _raise():
        raise ImportError("numpy is not installed (simulated)")

    monkeypatch.setattr(numpy_backend_module, "load_numpy", _raise)


def spatial_instance(task_xs, worker_xs=(0.0,), worker_accuracy=0.9, d_max=30.0):
    tasks = [Task(task_id=i, location=Point(x, 0.0)) for i, x in enumerate(task_xs)]
    workers = [
        Worker(index=i + 1, location=Point(x, 0.0), accuracy=worker_accuracy,
               capacity=4)
        for i, x in enumerate(worker_xs)
    ]
    return LTCInstance(
        tasks=tasks,
        workers=workers,
        error_rate=0.2,
        accuracy_model=SigmoidDistanceAccuracy(d_max=d_max),
    )


class TestRegistry:
    def test_builtins_are_registered(self):
        assert "python" in registered_candidate_backends()
        assert "numpy" in registered_candidate_backends()

    def test_python_backend_is_always_available(self):
        assert "python" in available_candidate_backends()

    def test_unknown_name_raises_with_did_you_mean(self):
        with pytest.raises(KeyError, match=r"did you mean 'numpy'"):
            get_candidate_backend("numppy")
        with pytest.raises(KeyError, match=r"known backends"):
            get_candidate_backend("fortran")

    def test_register_rejects_reserved_and_duplicate_names(self):
        class Bad(PythonCandidateBackend):
            name = AUTO_CANDIDATE_BACKEND

        with pytest.raises(ValueError, match="reserved"):
            register_candidate_backend(Bad())
        with pytest.raises(ValueError, match="already registered"):
            register_candidate_backend(PythonCandidateBackend())

    def test_register_and_resolve_custom_backend(self):
        class Tracing(PythonCandidateBackend):
            name = "tracing-test"

        backend = Tracing()
        register_candidate_backend(backend)
        try:
            assert resolve_candidate_backend("tracing-test") is backend
        finally:
            del engine_pkg._BACKENDS["tracing-test"]


class TestResolution:
    def test_explicit_names_resolve(self):
        assert resolve_candidate_backend("python").name == "python"
        if NUMPY_AVAILABLE:
            assert resolve_candidate_backend("numpy").name == "numpy"

    def test_backend_instances_pass_through(self):
        backend = PythonCandidateBackend()
        assert resolve_candidate_backend(backend) is backend

    def test_auto_prefers_numpy_when_available(self, monkeypatch):
        monkeypatch.delenv(CANDIDATES_ENV_VAR, raising=False)
        expected = "numpy" if NUMPY_AVAILABLE else "python"
        assert resolve_candidate_backend(AUTO_CANDIDATE_BACKEND).name == expected
        assert resolve_candidate_backend(None).name == expected
        assert default_candidate_backend_name() == expected

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(CANDIDATES_ENV_VAR, "python")
        assert resolve_candidate_backend(None).name == "python"
        monkeypatch.setenv(CANDIDATES_ENV_VAR, "")
        assert resolve_candidate_backend(None).name == default_candidate_backend_name()

    def test_env_var_unknown_name_raises(self, monkeypatch):
        monkeypatch.setenv(CANDIDATES_ENV_VAR, "numppy")
        with pytest.raises(KeyError, match="did you mean"):
            resolve_candidate_backend(None)

    def test_non_string_choice_raises(self):
        with pytest.raises(TypeError):
            resolve_candidate_backend(42)

    def test_auto_falls_back_to_python_without_numpy(self, monkeypatch):
        monkeypatch.delenv(CANDIDATES_ENV_VAR, raising=False)
        _no_numpy(monkeypatch)
        assert not NumpyCandidateBackend().is_available()
        assert available_candidate_backends() == ["python"]
        assert resolve_candidate_backend(None).name == "python"

    def test_explicitly_named_unavailable_backend_raises(self, monkeypatch):
        _no_numpy(monkeypatch)
        with pytest.raises(CandidateBackendUnavailableError):
            resolve_candidate_backend("numpy")


class TestSpecIntegration:
    @pytest.mark.parametrize("spec", [
        "LAF?candidates=python",
        "AAM?candidates=python",
        "MCF-LTC?candidates=python",
        "Base-off?candidates=python",
        "Random?candidates=python",
        "LGF-only?candidates=python",
        "LRF-only?candidates=python",
    ])
    def test_candidates_param_reaches_solvers(self, spec, tiny_instance):
        solver = build_solver(spec)
        result = solver.solve(tiny_instance)
        assert result.completed

    def test_unknown_candidates_name_fails_fast(self):
        with pytest.raises(KeyError, match="did you mean"):
            build_solver("LAF?candidates=numppy")

    @needs_numpy
    def test_numpy_spec_form(self, tiny_instance):
        result = build_solver("LAF?candidates=numpy").solve(tiny_instance)
        assert result.completed


class TestInfiniteRadiusRegression:
    """``min_accuracy <= 0`` makes the eligibility radius infinite; both
    the dict grid and the CSR grid must clamp the scan to their extent
    instead of overflowing (``int(inf // cell_size)``)."""

    def test_grid_index_accepts_infinite_radius(self):
        grid = GridIndex(BoundingBox(0.0, 0.0, 100.0, 100.0), 10.0)
        for i in range(5):
            grid.insert(i, Point(20.0 * i, 20.0 * i))
        assert sorted(grid.query_radius(Point(50.0, 50.0), math.inf)) == list(range(5))

    def test_grid_index_still_rejects_bad_radii(self):
        grid = GridIndex(BoundingBox(0.0, 0.0, 10.0, 10.0), 1.0)
        with pytest.raises(ValueError):
            grid.query_radius(Point(0, 0), -1.0)
        with pytest.raises(ValueError):
            grid.query_radius(Point(0, 0), math.nan)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_zero_threshold_returns_every_task(self, backend):
        instance = spatial_instance([0.0, 50.0, 500.0])
        finder = CandidateFinder(instance, min_accuracy=0.0, backend=backend)
        worker = instance.worker(1)
        assert [t.task_id for t in finder.candidates(worker)] == [0, 1, 2]
        assert finder.has_candidates(worker)

    def test_legacy_finder_also_survives_zero_threshold(self):
        instance = spatial_instance([0.0, 50.0, 500.0])
        finder = LegacyCandidateFinder(instance, min_accuracy=0.0)
        assert [t.task_id for t in finder.candidates(instance.worker(1))] == [0, 1, 2]


class TestEngineQueries:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_legacy_on_synthetic_instance(
        self, backend, small_synthetic_instance
    ):
        legacy = LegacyCandidateFinder(small_synthetic_instance)
        finder = CandidateFinder(small_synthetic_instance, backend=backend)
        for worker in small_synthetic_instance.workers[:60]:
            expected = [t.task_id for t in legacy.candidates(worker)]
            assert [t.task_id for t in finder.candidates(worker)] == expected
            assert finder.has_candidates(worker) == bool(expected)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_count_per_task_matches_naive(self, backend, small_synthetic_instance):
        finder = CandidateFinder(small_synthetic_instance, backend=backend)
        naive = {task.task_id: 0 for task in small_synthetic_instance.tasks}
        for worker in small_synthetic_instance.workers:
            for task in finder.candidates(worker):
                naive[task.task_id] += 1
        assert finder.candidate_count_per_task() == naive

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_eligible_pairs_order_and_allowed_semantics(
        self, backend, small_synthetic_instance
    ):
        legacy = LegacyCandidateFinder(small_synthetic_instance)
        finder = CandidateFinder(small_synthetic_instance, backend=backend)
        workers = small_synthetic_instance.workers[:30]
        allowed = {t.task_id for t in small_synthetic_instance.tasks[::3]}
        for restriction in (None, allowed):
            expected = [
                (w.index, t.task_id)
                for w, t in legacy.eligible_pairs(workers, restriction)
            ]
            got = [
                (w.index, t.task_id)
                for w, t in finder.eligible_pairs(workers, restriction)
            ]
            assert got == expected
        assert list(finder.eligible_pairs(workers, set())) == []
        assert list(finder.iter_candidates(workers[0], frozenset())) == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_non_contiguous_task_ids(self, backend):
        tasks = [Task(task_id=i, location=Point(float(i % 7), 0.0))
                 for i in (90, 3, 41, 17, 55)]
        workers = [Worker(index=1, location=Point(0.0, 0.0), accuracy=0.9,
                          capacity=3)]
        instance = LTCInstance(tasks=tasks, workers=workers, error_rate=0.2)
        finder = CandidateFinder(instance, backend=backend)
        got = [t.task_id for t in finder.candidates(instance.worker(1))]
        assert got == sorted(got) == [3, 17, 41, 55, 90]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_generic_model_scans_in_instance_order(self, backend):
        # Non-sigmoid models fall back to the instance-order scan (the
        # numpy backend delegates to the scalar one).
        tasks = [Task.at(5, 0, 0), Task.at(2, 500, 500), Task.at(9, 1, 1)]
        workers = [Worker.at(1, 0, 0, accuracy=0.9, capacity=3)]
        instance = LTCInstance(
            tasks=tasks, workers=workers, error_rate=0.2,
            accuracy_model=ConstantAccuracy(0.9),
        )
        finder = CandidateFinder(instance, backend=backend)
        assert [t.task_id for t in finder.candidates(instance.worker(1))] == [5, 2, 9]


class TestTopK:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("k", [1, 2, 5, 40])
    def test_topk_acc_star_matches_manual_heap(
        self, backend, k, small_synthetic_instance
    ):
        instance = small_synthetic_instance
        finder = CandidateFinder(instance, backend=backend)
        engine = finder.engine
        for worker in instance.workers[:25]:
            heap: TopKHeap = TopKHeap(k)
            for task in finder.candidates(worker):
                heap.push(instance.acc_star(worker, task), task)
            expected = [task.task_id for _, task in heap.pop_all()]
            got = [t.task_id for t in engine.topk_acc_star(worker, k)]
            assert got == expected

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_topk_respects_completed_mask(self, backend, small_synthetic_instance):
        instance = small_synthetic_instance
        engine = CandidateEngine(instance, backend=backend)
        worker = instance.workers[0]
        full = engine.topk_acc_star(worker, 4)
        if not full:
            pytest.skip("worker has no candidates")
        completed = engine.bool_array()
        completed[engine.position_of[full[0].task_id]] = True
        reduced = engine.topk_acc_star(worker, 4, completed)
        assert full[0].task_id not in {t.task_id for t in reduced}

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_topk_need_modes_match_manual_scores(
        self, backend, small_synthetic_instance
    ):
        instance = small_synthetic_instance
        engine = CandidateEngine(instance, backend=backend)
        delta = instance.delta
        need = engine.float_array(delta)
        # Perturb needs so the two modes genuinely disagree with acc_star.
        for position in range(engine.num_tasks):
            need[position] = delta * (0.1 + (position % 5) / 5.0)
        for mode in ("gain", "need"):
            for worker in instance.workers[:15]:
                heap: TopKHeap = TopKHeap(3)
                for task in engine.eligible_tasks(worker):
                    position = engine.position_of[task.task_id]
                    star = instance.acc_star(worker, task)
                    score = min(star, need[position]) if mode == "gain" else need[position]
                    heap.push(float(score), task)
                expected = [task.task_id for _, task in heap.pop_all()]
                got = [t.task_id for t in engine.topk(worker, 3, mode, None, need)]
                assert got == expected, (mode, worker.index)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_topk_unknown_mode_raises(self, backend, small_synthetic_instance):
        engine = CandidateEngine(small_synthetic_instance, backend=backend)
        with pytest.raises(ValueError, match="unknown topk mode"):
            engine.topk(small_synthetic_instance.workers[0], 2, "weird")

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("k", [1, 2])
    def test_topk_need_mode_requires_need(self, backend, k, small_synthetic_instance):
        # k=1 forces the vector preselect path (more candidates than k),
        # which must fail with the same contractual error as the scalar
        # paths rather than an opaque numpy indexing error.
        engine = CandidateEngine(small_synthetic_instance, backend=backend)
        worker = small_synthetic_instance.workers[0]
        for mode in ("need", "gain"):
            with pytest.raises(ValueError, match="requires a need array"):
                engine.topk(worker, k, mode)


class TestContainers:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_state_containers_read_write(self, backend, small_synthetic_instance):
        engine = CandidateEngine(small_synthetic_instance, backend=backend)
        flags = engine.bool_array()
        values = engine.float_array(1.5)
        assert len(flags) == engine.num_tasks == len(values)
        flags[0] = True
        values[1] = 2.25
        assert bool(flags[0]) and not bool(flags[1])
        assert float(values[1]) == 2.25 and float(values[0]) == 1.5

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_allowed_mask_ignores_unknown_ids(self, backend, small_synthetic_instance):
        engine = CandidateEngine(small_synthetic_instance, backend=backend)
        known = small_synthetic_instance.tasks[0].task_id
        mask = engine.make_allowed_mask({known, 10_000_000})
        assert bool(mask[engine.position_of[known]])
        assert sum(1 for flag in mask if flag) == 1


@needs_numpy
class TestVectorPathForced:
    """The adaptive cutover routes small blocks to the scalar path, so on
    test-sized instances the vectorized code would otherwise never run;
    these cases force it (cutover 1) and pin it against the oracle."""

    @pytest.fixture
    def force_vector(self, monkeypatch):
        monkeypatch.setattr(numpy_backend_module, "VECTOR_MIN_BLOCK", 1)

    def test_queries_match_legacy(self, force_vector, small_synthetic_instance):
        instance = small_synthetic_instance
        legacy = LegacyCandidateFinder(instance)
        finder = CandidateFinder(instance, backend="numpy")
        allowed = {t.task_id for t in instance.tasks[::3]}
        for worker in instance.workers[:40]:
            expected = [t.task_id for t in legacy.candidates(worker)]
            assert [t.task_id for t in finder.candidates(worker)] == expected
            assert finder.has_candidates(worker) == bool(expected)
            assert [t.task_id for t in finder.iter_candidates(worker, allowed)] == [
                t.task_id for t in legacy.iter_candidates(worker, allowed)
            ]
        assert finder.candidate_count_per_task() == legacy.candidate_count_per_task()

    def test_topk_matches_scalar_backend(self, force_vector, small_synthetic_instance):
        instance = small_synthetic_instance
        vector = CandidateEngine(instance, backend="numpy")
        scalar = CandidateEngine(instance, backend="python")
        delta = instance.delta
        need_v, need_s = vector.float_array(delta), scalar.float_array(delta)
        for worker in instance.workers[:30]:
            for mode, needs in (("acc_star", (None, None)),
                                ("gain", (need_v, need_s)),
                                ("need", (need_v, need_s))):
                got = [t.task_id for t in vector.topk(worker, 3, mode, None, needs[0])]
                expected = [
                    t.task_id for t in scalar.topk(worker, 3, mode, None, needs[1])
                ]
                assert got == expected, (mode, worker.index)


class TestFinderFacade:
    def test_engine_and_backend_name_exposed(self, small_synthetic_instance):
        finder = CandidateFinder(small_synthetic_instance, backend="python")
        assert finder.backend_name == "python"
        assert finder.engine.num_tasks == small_synthetic_instance.num_tasks

    def test_dispatcher_accepts_candidates_backend(self, tiny_instance):
        from repro.service.dispatcher import LTCDispatcher

        dispatcher = LTCDispatcher(candidates="python")
        dispatcher.submit_instance(tiny_instance, solver="LAF")
        consumed = dispatcher.feed_stream(tiny_instance.workers)
        assert consumed >= 1
        with pytest.raises(KeyError, match="did you mean"):
            LTCDispatcher(candidates="numppy")
