"""Cross-module integration tests.

These exercise the full pipeline — data generation, candidate finding,
solving, constraint re-validation, quality simulation — and check the
relationships between algorithms that the paper's analysis promises
(feasibility, bounds, approximation behaviour on small instances).
"""

import math

import pytest

from repro.algorithms.bounds import latency_lower_bound
from repro.algorithms.exact import ExactSolver
from repro.algorithms.registry import DEFAULT_SOLVER_NAMES, get_solver
from repro.core.accuracy import TabularAccuracy
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.datagen.rng import generator_for
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_instance
from repro.geo.point import Point
from repro.quality.hoeffding import empirical_error_rate


class TestAllSolversOnGeneratedData:
    @pytest.mark.parametrize("name", DEFAULT_SOLVER_NAMES)
    def test_solver_completes_and_satisfies_all_constraints(
        self, small_synthetic_instance, name
    ):
        result = get_solver(name).solve(small_synthetic_instance)
        assert result.completed, name
        violations = result.arrangement.constraint_violations(
            small_synthetic_instance.workers_by_index()
        )
        assert violations == [], f"{name}: {violations}"

    @pytest.mark.parametrize("name", DEFAULT_SOLVER_NAMES)
    def test_latency_respects_theorem_2_lower_bound(
        self, small_synthetic_instance, name
    ):
        instance = small_synthetic_instance
        result = get_solver(name).solve(instance)
        lower = latency_lower_bound(instance.num_tasks, instance.delta,
                                    instance.capacity)
        assert result.max_latency >= lower

    @pytest.mark.parametrize("name", DEFAULT_SOLVER_NAMES)
    def test_assignments_only_use_eligible_pairs(self, small_synthetic_instance, name):
        """Every assigned pair satisfies Acc(w, t) >= 0.66 (the Theorem 2 regime)."""
        instance = small_synthetic_instance
        result = get_solver(name).solve(instance)
        for assignment in result.arrangement:
            assert assignment.acc >= instance.min_assignable_accuracy - 1e-9

    @pytest.mark.parametrize("name", ["LAF", "AAM", "MCF-LTC"])
    def test_completed_tasks_meet_the_hoeffding_quality_target(
        self, small_synthetic_instance, name
    ):
        instance = small_synthetic_instance
        result = get_solver(name).solve(instance)
        error = empirical_error_rate(instance, result.arrangement, trials=60, seed=11)
        assert error <= instance.error_rate * 1.5  # Monte-Carlo slack


class TestApproximationBehaviour:
    def make_random_small_instance(self, seed, num_tasks=2, num_workers=10, capacity=2):
        rng = generator_for(seed, "approx")
        table = {}
        for worker_index in range(1, num_workers + 1):
            for task_id in range(num_tasks):
                table[(worker_index, task_id)] = float(rng.uniform(0.82, 0.99))
        tasks = [Task(task_id=i, location=Point(i, 0)) for i in range(num_tasks)]
        workers = [
            Worker(index=i, location=Point(0, i), accuracy=0.9, capacity=capacity)
            for i in range(1, num_workers + 1)
        ]
        return LTCInstance(tasks=tasks, workers=workers, error_rate=0.2,
                           accuracy_model=TabularAccuracy(table))

    @pytest.mark.parametrize("seed", range(8))
    def test_heuristics_stay_within_the_proven_factors_of_optimal(self, seed):
        instance = self.make_random_small_instance(seed)
        optimum = ExactSolver().solve(instance)
        if not optimum.completed:
            pytest.skip("random instance infeasible")
        for name, factor in (("MCF-LTC", 7.5), ("LAF", 7.967), ("AAM", 7.738)):
            result = get_solver(name).solve(instance)
            if not result.completed:
                continue
            assert result.max_latency <= math.ceil(factor * optimum.max_latency) + 1, (
                f"{name} exceeded its guarantee on seed {seed}"
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_exact_is_a_true_lower_bound(self, seed):
        instance = self.make_random_small_instance(seed, num_tasks=3, num_workers=9)
        optimum = ExactSolver().solve(instance)
        if not optimum.completed:
            pytest.skip("random instance infeasible")
        for name in DEFAULT_SOLVER_NAMES:
            result = get_solver(name).solve(instance)
            if result.completed:
                assert result.max_latency >= optimum.max_latency


class TestAlgorithmRelationships:
    def test_proposed_online_algorithms_beat_naive_random_on_contended_data(self):
        """AAM (and usually LAF) should not lose to the naive Random baseline."""
        config = SyntheticConfig(
            num_tasks=60, num_workers=900, capacity=6, error_rate=0.14,
            grid_size=140.0, seed=77,
        )
        instance = generate_synthetic_instance(config)
        random_latency = get_solver("Random").solve(instance).max_latency
        aam_latency = get_solver("AAM").solve(instance).max_latency
        assert aam_latency <= random_latency * 1.05

    def test_offline_algorithms_see_the_whole_instance(self, small_synthetic_instance):
        """Offline solvers may use workers out of arrival order; online must not."""
        mcf = get_solver("MCF-LTC").solve(small_synthetic_instance)
        laf = get_solver("LAF").solve(small_synthetic_instance)
        # Online algorithms observe exactly max_latency workers; the offline
        # batch algorithm may have looked further ahead.
        assert laf.workers_observed == laf.max_latency
        assert mcf.workers_observed >= mcf.max_latency
