"""Microbenchmark: flow-kernel backends vs the pre-refactor object-graph SSPA.

Builds LTC-shaped batch reductions (source -> workers -> tasks -> sink,
negative real-valued worker->task costs, exactly what ``MCFLTCSolver``
feeds the flow layer per batch) at several batch sizes and times one full
solve through each implementation:

* **reference** — the retained pre-kernel path (:mod:`repro.flow.reference`):
  ``Edge`` objects, dict adjacency, O(V*E) Bellman-Ford initial potentials;
  network built from scratch, as the old solver did per batch.
* **python** — :class:`repro.flow.kernel.ArcArena` + one O(E) DAG potential
  pass + :func:`repro.flow.kernel.solve_mcf` on the pure-Python backend.
* **numpy** — the same kernel path on the numpy-vectorized backend
  (omitted from the run and the report entirely when numpy is not
  installed; naming it explicitly via ``--backends numpy`` then raises
  ``BackendUnavailableError``).

Each timing covers build + potentials + solve (what MCF-LTC pays per
batch); the implementations are interleaved within each repeat so slow
background drift hits all of them equally.  Exactness is asserted on every
case: the kernel backends must agree with the reference on flow value and
cost, and with each other on the exact per-arc flows.  A separate *dense*
section times python vs numpy on high-degree reductions whose rows are
long enough for the numpy backend's vector path (the reference is omitted
there — its O(V*E) Bellman-Ford would dominate the wall-clock).

The suite registers with the shared registry in :mod:`_common`, reports
in the shared schema (``sections`` / ``headline_speedups`` / exactness
``fingerprint``), and is normally run through
``benchmarks/bench_all.py``; standalone it writes
``BENCH_flow_kernel.json`` at the repo root (or a smoke report under
``benchmarks/results/`` with ``--smoke``).

Usage::

    PYTHONPATH=src python benchmarks/bench_flow_kernel.py
    PYTHONPATH=src python benchmarks/bench_flow_kernel.py \
        --sizes 20 40 --repeats 2 --dense-sizes \
        --output benchmarks/results/flow_kernel_smoke.json
"""

from __future__ import annotations

import math
import random
import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import _common
from _common import BenchSuite, SuiteResult

from repro.flow.backends import available_backends
from repro.flow.kernel import ArcArena, dag_potentials, solve_mcf
from repro.flow.reference import LegacyFlowNetwork, legacy_successive_shortest_paths

DEFAULT_OUTPUT = _common.REPO_ROOT / "BENCH_flow_kernel.json"

# Shape parameters mirroring a paper-default batch: epsilon = 0.14 gives
# delta = 2 ln(1/0.14) ~= 3.93, so every task absorbs ceil(delta) = 4 useful
# answers; worker capacity K = 6; the batch sizing m = |T| * ceil(delta) / K
# implies |T| = 1.5 * batch_size tasks per batch.
CAPACITY = 6
TASK_NEED = math.ceil(2 * math.log(1 / 0.14))
TASKS_PER_WORKER = 1.5
DEGREE = 12  # eligible tasks per worker (grid-index candidates)


def build_case(num_workers: int, seed: int, degree: int = DEGREE):
    """One LTC-shaped batch reduction as plain data."""
    rng = random.Random(seed)
    num_tasks = max(2, int(num_workers * TASKS_PER_WORKER))
    pairs = []
    for w in range(num_workers):
        row_degree = min(num_tasks, degree)
        for t in sorted(rng.sample(range(num_tasks), row_degree)):
            pairs.append((w, t, rng.uniform(0.1, 1.0)))
    return num_tasks, pairs


def run_reference(num_workers: int, num_tasks: int, pairs):
    network = LegacyFlowNetwork()
    for w in range(num_workers):
        network.add_edge("s", ("w", w), CAPACITY, 0.0)
    for w, t, value in pairs:
        network.add_edge(("w", w), ("t", t), 1, -value)
    for t in range(num_tasks):
        network.add_edge(("t", t), "d", TASK_NEED, 0.0)
    value, cost, augmentations = legacy_successive_shortest_paths(network, "s", "d")
    return value, cost, augmentations, None


def run_kernel(num_workers: int, num_tasks: int, pairs, backend: str):
    # Same node layout as MCFLTCSolver: source 0, sink 1, then tasks, then
    # workers.  Low task ids make Dijkstra's node-id tie-breaking pop
    # zero-distance task nodes (and then the sink) before exploring more of
    # the worker frontier.
    arena = ArcArena(2)  # 0 = source, 1 = sink
    task_base = arena.add_nodes(num_tasks)
    worker_base = arena.add_nodes(num_workers)
    for w in range(num_workers):
        arena.add_arc(0, worker_base + w, CAPACITY, 0.0)
    for w, t, value in pairs:
        arena.add_arc(worker_base + w, task_base + t, 1, -value)
    for t in range(num_tasks):
        arena.add_arc(task_base + t, 1, TASK_NEED, 0.0)
    topo = (
        [0]
        + list(range(worker_base, worker_base + num_workers))
        + list(range(task_base, task_base + num_tasks))
        + [1]
    )
    potentials = dag_potentials(arena, 0, topo)
    result = solve_mcf(arena, 0, 1, potentials=potentials, backend=backend)
    return result.flow_value, result.total_cost, result.augmentations, arena.flow


def bench_size(
    num_workers: int,
    repeats: int,
    seed: int,
    backends,
    degree: int = DEGREE,
    include_reference: bool = True,
):
    """One batch size; returns ``(entry, medians_s)`` per implementation."""
    num_tasks, pairs = build_case(num_workers, seed, degree=degree)
    runners = {}
    if include_reference:
        runners["reference"] = lambda: run_reference(num_workers, num_tasks, pairs)
    for backend in backends:
        runners[backend] = (
            lambda b=backend: run_kernel(num_workers, num_tasks, pairs, b)
        )

    times, outputs = _common.run_interleaved(runners, repeats)

    baseline_name = next(iter(runners))
    base_value, base_cost, _base_augs, _ = outputs[baseline_name]
    flows = {}
    for backend in backends:
        value, cost, _augs, flow = outputs[backend]
        if value != base_value or abs(cost - base_cost) > 1e-6:
            raise AssertionError(
                f"{backend} backend disagrees with {baseline_name} at "
                f"{num_workers} workers: ({value}, {cost}) vs "
                f"({base_value}, {base_cost})"
            )
        flows[backend] = flow
    if len(backends) > 1:
        baseline = flows[backends[0]]
        for backend in backends[1:]:
            if flows[backend] != baseline:
                raise AssertionError(
                    f"backends {backends[0]} and {backend} produced different "
                    f"per-arc flows at {num_workers} workers"
                )

    entry = {
        "batch_workers": num_workers,
        "tasks": num_tasks,
        "degree": degree,
        "pair_arcs": len(pairs),
        "flow_value": base_value,
        "total_cost": base_cost,
        "augmentations": outputs[backends[0]][2] if backends else None,
    }
    if include_reference:
        entry["reference_augmentations"] = outputs["reference"][2]
    medians_s = {name: statistics.median(times[name]) for name in runners}
    for name in runners:
        entry[f"{name}_ms_median"] = round(medians_s[name] * 1000, 3)
        entry[f"{name}_ms_best"] = round(min(times[name]) * 1000, 3)
    if include_reference:
        for backend in backends:
            entry[f"{backend}_speedup_vs_reference"] = _common.ratio(
                medians_s["reference"], medians_s[backend]
            )
    if "python" in backends and "numpy" in backends:
        entry["numpy_speedup_vs_python"] = _common.ratio(
            medians_s["python"], medians_s["numpy"]
        )
    return entry, medians_s


def _section(cases, totals_s, baseline: str, backends) -> dict:
    """Assemble one timed section: summed medians + summed-time speedups."""
    impls = [baseline] + [b for b in backends if b != baseline]
    return {
        "baseline": baseline,
        "timings_ms": {
            impl: round(totals_s[impl] * 1000, 3) for impl in impls
        },
        "speedups": {
            f"{impl}_vs_{baseline}": _common.ratio(
                totals_s[baseline], totals_s[impl]
            )
            for impl in impls
            if impl != baseline
        },
        "cases": cases,
    }


def run_suite(args) -> SuiteResult:
    backends = args.backends
    if backends is None:
        backends = [b for b in ("python", "numpy") if b in available_backends()]

    sections = {}
    fingerprint_cases = []

    results = []
    totals_s = {impl: 0.0 for impl in ["reference", *backends]}
    for size in args.sizes:
        entry, medians_s = bench_size(size, args.repeats, args.seed, backends)
        results.append(entry)
        for impl, value in medians_s.items():
            totals_s[impl] += value
        fingerprint_cases.append({
            "section": "sparse",
            "batch_workers": entry["batch_workers"],
            "tasks": entry["tasks"],
            "pair_arcs": entry["pair_arcs"],
            "flow_value": entry["flow_value"],
            "total_cost": round(entry["total_cost"], 9),
            "augmentations": entry["augmentations"],
            "reference_augmentations": entry["reference_augmentations"],
        })
        timings = "  ".join(
            f"{name}={entry[f'{name}_ms_median']:>9.2f}ms"
            for name in ["reference", *backends]
        )
        speedups = "  ".join(
            f"{b}={entry[f'{b}_speedup_vs_reference']:>5.2f}x" for b in backends
        )
        print(
            f"batch={entry['batch_workers']:>5}  tasks={entry['tasks']:>5}  "
            f"{timings}  speedup: {speedups}  "
            f"augmentations={entry['augmentations']}"
        )
    sections["sparse"] = _section(results, totals_s, "reference", backends)

    # Dense section: rows long enough for the numpy backend's vector path
    # (the LTC default of ~12 eligible tasks per worker stays on the scalar
    # path by design).  The O(V*E) reference would take minutes here and
    # is omitted; the comparison of interest is python vs numpy.
    dense_results = []
    dense_totals_s = {impl: 0.0 for impl in backends}
    for size in args.dense_sizes:
        entry, medians_s = bench_size(
            size, args.repeats, args.seed, backends,
            degree=args.dense_degree, include_reference=False,
        )
        dense_results.append(entry)
        for impl, value in medians_s.items():
            dense_totals_s[impl] += value
        fingerprint_cases.append({
            "section": "dense",
            "batch_workers": entry["batch_workers"],
            "tasks": entry["tasks"],
            "pair_arcs": entry["pair_arcs"],
            "flow_value": entry["flow_value"],
            "total_cost": round(entry["total_cost"], 9),
            "augmentations": entry["augmentations"],
        })
        timings = "  ".join(
            f"{name}={entry[f'{name}_ms_median']:>9.2f}ms" for name in backends
        )
        ratio = entry.get("numpy_speedup_vs_python")
        print(
            f"dense batch={entry['batch_workers']:>5}  degree={entry['degree']:>4}  "
            f"{timings}"
            + (f"  numpy_vs_python={ratio:>5.2f}x" if ratio is not None else "")
        )
    if dense_results and len(backends) > 1:
        # With a single backend there is nothing to compare the dense rows
        # against (the reference is deliberately excluded there).
        sections["dense"] = _section(
            dense_results, dense_totals_s, "python",
            [b for b in backends if b != "python"],
        )

    headline = {
        f"sparse_{backend}_vs_reference":
            sections["sparse"]["speedups"][f"{backend}_vs_reference"]
        for backend in backends
    }
    if "dense" in sections and "numpy_vs_python" in sections["dense"]["speedups"]:
        headline["dense_numpy_vs_python"] = (
            sections["dense"]["speedups"]["numpy_vs_python"]
        )

    config = {
        "sizes": list(args.sizes),
        "repeats": args.repeats,
        "seed": args.seed,
        "capacity": CAPACITY,
        "task_need": TASK_NEED,
        "degree": DEGREE,
        "dense_sizes": list(args.dense_sizes),
        "dense_degree": args.dense_degree,
        "backends": list(backends),
    }
    return SuiteResult(
        config=config,
        sections=sections,
        headline_speedups=headline,
        fingerprint_payload=fingerprint_cases,
    )


def add_arguments(parser) -> None:
    parser.add_argument("--sizes", type=int, nargs="+", default=[50, 200, 800],
                        help="batch sizes (workers) to benchmark")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repetitions per size (median reported)")
    parser.add_argument("--seed", type=int, default=20180416)
    parser.add_argument("--backends", nargs="+", default=None,
                        help="kernel backends to time (default: all available)")
    parser.add_argument("--dense-sizes", type=int, nargs="*", default=[250],
                        help="batch sizes for the dense (vectorization-regime) "
                             "section; empty to skip")
    parser.add_argument("--dense-degree", type=int, default=370,
                        help="eligible tasks per worker in the dense section "
                             "(rows long enough for the numpy vector path)")


SUITE = _common.register_suite(BenchSuite(
    name="flow_kernel",
    description=(
        "Per-batch MCF-LTC flow solve: the array kernel (ArcArena + DAG "
        "potentials + solve_mcf) on each registered backend (python, "
        "numpy) vs the pre-refactor object-graph SSPA (Edge objects, "
        "dict adjacency, Bellman-Ford). Times are medians over repeated "
        "interleaved build+solve runs; all implementations are asserted "
        "to agree on every case."
    ),
    default_output=DEFAULT_OUTPUT,
    add_arguments=add_arguments,
    run=run_suite,
    smoke_overrides={"sizes": [20, 40], "repeats": 2, "dense_sizes": []},
))


if __name__ == "__main__":
    sys.exit(_common.suite_main(SUITE))
