"""A uniform grid spatial index.

The baselines in the paper's evaluation ("Base-off" and "Random") assign
*nearby* tasks to a worker, and the data generators need to sample task
locations close to check-in hotspots.  A uniform grid over the dataset's
bounding box gives O(1) insertion and cheap range / nearest-neighbour queries,
which is all that is required at the scales involved; it mirrors the grid
world in the paper's synthetic setup.
"""

from __future__ import annotations

import math
from typing import Dict, Generic, Hashable, Iterator, List, Optional, Tuple, TypeVar

from repro.geo.bbox import BoundingBox
from repro.geo.point import Point

ItemId = TypeVar("ItemId", bound=Hashable)


class GridIndex(Generic[ItemId]):
    """Maps item ids to locations and supports spatial queries.

    Parameters
    ----------
    bounds:
        The spatial extent covered by the index.  Points outside the extent
        are clamped into the border cells (they remain queryable).
    cell_size:
        Side length of each square cell, in the same units as the bounds.
    """

    def __init__(self, bounds: BoundingBox, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self._bounds = bounds
        self._cell_size = float(cell_size)
        self._cols = max(1, int(math.ceil(bounds.width / cell_size)))
        self._rows = max(1, int(math.ceil(bounds.height / cell_size)))
        self._cells: Dict[Tuple[int, int], List[ItemId]] = {}
        self._locations: Dict[ItemId, Point] = {}

    @property
    def bounds(self) -> BoundingBox:
        """The extent covered by the index."""
        return self._bounds

    @property
    def cell_size(self) -> float:
        """The side length of each grid cell."""
        return self._cell_size

    def __len__(self) -> int:
        return len(self._locations)

    def __contains__(self, item_id: ItemId) -> bool:
        return item_id in self._locations

    def __iter__(self) -> Iterator[ItemId]:
        return iter(self._locations)

    def _cell_of(self, point: Point) -> Tuple[int, int]:
        """Grid cell containing ``point`` (clamped to the extent)."""
        col = int((point.x - self._bounds.min_x) // self._cell_size)
        row = int((point.y - self._bounds.min_y) // self._cell_size)
        col = min(max(col, 0), self._cols - 1)
        row = min(max(row, 0), self._rows - 1)
        return (col, row)

    def insert(self, item_id: ItemId, location: Point) -> None:
        """Insert ``item_id`` at ``location`` (re-inserting moves it)."""
        if item_id in self._locations:
            self.remove(item_id)
        cell = self._cell_of(location)
        self._cells.setdefault(cell, []).append(item_id)
        self._locations[item_id] = location

    def remove(self, item_id: ItemId) -> None:
        """Remove ``item_id``; raises ``KeyError`` if absent."""
        location = self._locations.pop(item_id)
        cell = self._cell_of(location)
        members = self._cells.get(cell, [])
        members.remove(item_id)
        if not members:
            self._cells.pop(cell, None)

    def location_of(self, item_id: ItemId) -> Point:
        """The stored location of ``item_id``."""
        return self._locations[item_id]

    def items(self) -> Iterator[Tuple[ItemId, Point]]:
        """Iterate over ``(item_id, location)`` pairs."""
        return iter(self._locations.items())

    def query_radius(self, center: Point, radius: float) -> List[ItemId]:
        """All items within Euclidean distance ``radius`` of ``center``.

        An infinite radius is valid and matches every stored item: the cell
        scan is clamped to the grid extent (``int(inf // cell_size)`` would
        otherwise overflow) while the distance test stays ``d**2 <= inf``,
        which every point passes.  Finite radii larger than the extent are
        already clamped by :meth:`_cell_of`.
        """
        if math.isnan(radius):
            raise ValueError("radius must not be NaN")
        if radius < 0:
            raise ValueError("radius must be non-negative")
        if math.isinf(radius):
            col_min, row_min = 0, 0
            col_max, row_max = self._cols - 1, self._rows - 1
        else:
            col_min, row_min = self._cell_of(
                Point(center.x - radius, center.y - radius)
            )
            col_max, row_max = self._cell_of(
                Point(center.x + radius, center.y + radius)
            )
        result: List[ItemId] = []
        r2 = radius * radius
        for col in range(col_min, col_max + 1):
            for row in range(row_min, row_max + 1):
                for item_id in self._cells.get((col, row), ()):  # pragma: no branch
                    if self._locations[item_id].squared_distance_to(center) <= r2:
                        result.append(item_id)
        return result

    def nearest(
        self, center: Point, k: int = 1, max_radius: Optional[float] = None
    ) -> List[ItemId]:
        """The ``k`` items nearest to ``center``, closest first.

        Searches rings of cells of increasing radius until ``k`` items are
        found or ``max_radius`` (if given) is exceeded.  Returns fewer than
        ``k`` items when the index is small or the radius cap cuts the search
        short.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if not self._locations:
            return []

        found: List[Tuple[float, ItemId]] = []
        seen: set[ItemId] = set()
        ring = 0
        max_ring = max(self._cols, self._rows)
        center_cell = self._cell_of(center)
        while ring <= max_ring:
            radius_bound = ring * self._cell_size
            if max_radius is not None and radius_bound > max_radius + self._cell_size:
                break
            for col, row in self._ring_cells(center_cell, ring):
                for item_id in self._cells.get((col, row), ()):
                    if item_id in seen:
                        continue
                    seen.add(item_id)
                    dist = self._locations[item_id].distance_to(center)
                    if max_radius is not None and dist > max_radius:
                        continue
                    found.append((dist, item_id))
            # Once we have k candidates and have expanded one ring past the
            # furthest candidate, no closer item can appear in later rings.
            if len(found) >= k:
                found.sort(key=lambda pair: pair[0])
                if found[k - 1][0] <= ring * self._cell_size:
                    break
            ring += 1

        found.sort(key=lambda pair: pair[0])
        return [item_id for _, item_id in found[:k]]

    def _ring_cells(
        self, center_cell: Tuple[int, int], ring: int
    ) -> Iterator[Tuple[int, int]]:
        """Cells at Chebyshev distance ``ring`` from ``center_cell``."""
        c0, r0 = center_cell
        if ring == 0:
            if 0 <= c0 < self._cols and 0 <= r0 < self._rows:
                yield (c0, r0)
            return
        for col in range(c0 - ring, c0 + ring + 1):
            for row in (r0 - ring, r0 + ring):
                if 0 <= col < self._cols and 0 <= row < self._rows:
                    yield (col, row)
        for row in range(r0 - ring + 1, r0 + ring):
            for col in (c0 - ring, c0 + ring):
                if 0 <= col < self._cols and 0 <= row < self._rows:
                    yield (col, row)
