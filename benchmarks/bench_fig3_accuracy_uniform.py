"""Regenerates Fig. 3d/3h/3l of the paper: latency / runtime / memory vs the mean historical accuracy (uniform).

The benchmark times the full regeneration (workload generation plus all five
algorithms across the sweep) and writes the rendered series to
``benchmarks/results/fig3_accuracy_uniform.txt``.
"""

import pytest


@pytest.mark.benchmark(group="fig3_accuracy_uniform")
def test_regenerate_fig3_accuracy_uniform(benchmark, figure_runner):
    table = benchmark.pedantic(
        lambda: figure_runner("fig3_accuracy_uniform"), rounds=1, iterations=1
    )
    assert len(table) > 0
    assert table.completion_rate() == 1.0
