"""The paper's baselines: ``Base-off`` (offline) and ``Random`` (online).

* **Base-off** processes workers in arrival order but exploits offline
  knowledge of the future: when a worker arrives, the uncompleted nearby
  tasks with the *fewest remaining nearby workers* (counting only workers
  that have not arrived yet, plus the current one) are assigned to them.
  Scarce tasks are served first so they are not starved by later arrivals.

* **Random** assigns up to ``K`` uncompleted nearby tasks uniformly at
  random to every arriving worker.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms.base import OfflineSolver, OnlineSolver, SolveResult
from repro.core.arrangement import Arrangement, Assignment
from repro.core.candidate_engine import validate_candidate_backend_name
from repro.core.candidates import CandidateFinder
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker


class BaseOffSolver(OfflineSolver):
    """The ``Base-off`` offline greedy baseline (Sec. V-A)."""

    name = "Base-off"

    def __init__(
        self, use_spatial_index: bool = True, candidates: Optional[str] = None
    ) -> None:
        validate_candidate_backend_name(candidates)
        self.use_spatial_index = use_spatial_index
        self.candidates = candidates

    def solve(self, instance: LTCInstance) -> SolveResult:
        arrangement = instance.new_arrangement()
        candidates = CandidateFinder(
            instance,
            use_spatial_index=self.use_spatial_index,
            backend=self.candidates,
        )

        # Offline knowledge: which (future) workers can serve each task.
        eligible_tasks_per_worker: Dict[int, List[int]] = {}
        remaining_nearby: Dict[int, int] = {task.task_id: 0 for task in instance.tasks}
        for worker in instance.workers:
            task_ids = [task.task_id for task in candidates.candidates(worker)]
            eligible_tasks_per_worker[worker.index] = task_ids
            for task_id in task_ids:
                remaining_nearby[task_id] += 1

        observed = 0
        for worker in instance.workers:
            observed += 1
            candidate_ids = eligible_tasks_per_worker[worker.index]
            open_ids = [
                task_id
                for task_id in candidate_ids
                if not arrangement.is_task_complete(task_id)
            ]
            # Scarcest-first: fewest remaining nearby workers, then task id.
            open_ids.sort(key=lambda task_id: (remaining_nearby[task_id], task_id))
            for task_id in open_ids[: worker.capacity]:
                arrangement.assign(worker, instance.task(task_id))
            # The current worker no longer counts as "remaining" for any of
            # its nearby tasks.
            for task_id in candidate_ids:
                remaining_nearby[task_id] -= 1
            if arrangement.is_complete():
                break

        return SolveResult(
            algorithm=self.name,
            arrangement=arrangement,
            completed=arrangement.is_complete(),
            max_latency=arrangement.max_latency,
            workers_observed=observed,
        )


class RandomOnlineSolver(OnlineSolver):
    """The ``Random`` online baseline: random nearby tasks.

    The paper describes it as "a naive online baseline algorithm where tasks
    nearby are assigned randomly to the worker" — naive in that it does not
    look at the tasks' completion state: each arriving worker simply receives
    up to ``K`` random nearby tasks, and capacity spent on tasks that are
    already complete is wasted.  Set ``skip_completed=True`` for a stronger
    variant that only draws from uncompleted tasks (used by the ablation
    tests; the default matches the paper's naive baseline).
    """

    name = "Random"
    supports_dynamic_tasks = True

    def __init__(
        self,
        seed: int = 0,
        use_spatial_index: bool = True,
        skip_completed: bool = False,
        candidates: Optional[str] = None,
    ) -> None:
        validate_candidate_backend_name(candidates)
        self.seed = seed
        self.use_spatial_index = use_spatial_index
        self.skip_completed = skip_completed
        self.candidates = candidates
        self._rng = np.random.default_rng(seed)
        self._instance: Optional[LTCInstance] = None
        self._arrangement: Optional[Arrangement] = None
        self._candidates: Optional[CandidateFinder] = None

    def start(self, instance: LTCInstance) -> None:
        self._instance = instance
        self._arrangement = instance.new_arrangement()
        self._candidates = CandidateFinder(
            instance,
            use_spatial_index=self.use_spatial_index,
            backend=self.candidates,
        )
        self._rng = np.random.default_rng(self.seed)

    @property
    def arrangement(self) -> Arrangement:
        if self._arrangement is None:
            raise RuntimeError("start() must be called before reading the arrangement")
        return self._arrangement

    def add_tasks(self, tasks: Sequence[Task]) -> None:
        """Post additional tasks mid-stream (the dynamic-arrival path).

        Random keeps no per-task state beyond the arrangement, so the
        extension is just the shared instance/arrangement/snapshot
        appends; the enlarged nearby pool is drawn from on the next
        arrival.  (Random never retires tasks — the paper's naive
        baseline deliberately keeps drawing completed ones.)
        """
        if self._instance is None or self._arrangement is None or self._candidates is None:
            raise RuntimeError("start() must be called before add_tasks()")
        tasks = list(tasks)
        self._instance.add_tasks(tasks)
        self._arrangement.add_tasks(tasks)
        self._candidates.add_tasks(tasks)

    def observe(self, worker: Worker) -> List[Assignment]:
        if self._instance is None or self._arrangement is None or self._candidates is None:
            raise RuntimeError("start() must be called before observe()")
        arrangement = self._arrangement
        nearby = self._candidates.candidates(worker)
        if self.skip_completed:
            nearby = [
                task
                for task in nearby
                if not arrangement.is_task_complete(task.task_id)
            ]
        if not nearby:
            return []
        count = min(worker.capacity, len(nearby))
        chosen = self._rng.choice(len(nearby), size=count, replace=False)
        return [arrangement.assign(worker, nearby[i]) for i in sorted(chosen)]
