"""Tests for repro.core.task and repro.core.worker."""

import pytest

from repro.core.quality_threshold import MIN_WORKER_ACCURACY
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point


class TestTask:
    def test_basic_construction(self):
        task = Task(task_id=3, location=Point(1.0, 2.0), description="parking?")
        assert task.task_id == 3
        assert task.location == Point(1.0, 2.0)
        assert task.true_answer == 1

    def test_at_constructor(self):
        task = Task.at(0, 5, 6)
        assert task.location == Point(5.0, 6.0)

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            Task(task_id=-1, location=Point(0, 0))

    def test_rejects_invalid_answer(self):
        with pytest.raises(ValueError):
            Task(task_id=0, location=Point(0, 0), true_answer=0)

    def test_with_answer(self):
        task = Task.at(0, 0, 0)
        flipped = task.with_answer(-1)
        assert flipped.true_answer == -1
        assert flipped.task_id == task.task_id
        assert task.true_answer == 1

    def test_distance_to(self):
        task = Task.at(0, 0, 0)
        assert task.distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_tasks_are_hashable(self):
        assert len({Task.at(0, 0, 0), Task.at(0, 0, 0)}) == 1


class TestWorker:
    def test_basic_construction(self):
        worker = Worker(index=1, location=Point(0, 0), accuracy=0.9, capacity=6)
        assert worker.index == 1
        assert worker.capacity == 6

    def test_at_constructor(self):
        worker = Worker.at(2, 1, 1, accuracy=0.8, capacity=3)
        assert worker.location == Point(1.0, 1.0)

    def test_rejects_bad_index(self):
        with pytest.raises(ValueError):
            Worker(index=0, location=Point(0, 0), accuracy=0.9, capacity=1)

    def test_rejects_accuracy_out_of_range(self):
        with pytest.raises(ValueError):
            Worker(index=1, location=Point(0, 0), accuracy=1.5, capacity=1)
        with pytest.raises(ValueError):
            Worker(index=1, location=Point(0, 0), accuracy=0.0, capacity=1)

    def test_rejects_spam_accuracy(self):
        below = MIN_WORKER_ACCURACY - 0.05
        with pytest.raises(ValueError):
            Worker(index=1, location=Point(0, 0), accuracy=below, capacity=1)

    def test_accepts_accuracy_exactly_at_spam_threshold(self):
        worker = Worker(index=1, location=Point(0, 0),
                        accuracy=MIN_WORKER_ACCURACY, capacity=1)
        assert worker.accuracy == MIN_WORKER_ACCURACY

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            Worker(index=1, location=Point(0, 0), accuracy=0.9, capacity=0)

    def test_distance_to(self):
        worker = Worker.at(1, 0, 0, accuracy=0.9, capacity=1)
        assert worker.distance_to(Point(0, 2)) == pytest.approx(2.0)
