"""Largest Acc First (LAF) — Algorithm 2.

LAF is the simplest online greedy: when a worker arrives, assign them the
(at most) K uncompleted eligible tasks with the largest ``Acc*``.  The paper
proves a competitive ratio of 7.967 under the assumption
``epsilon <= e^-1.5`` (delta >= 3).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.algorithms.base import OnlineSolver
from repro.core.arrangement import Arrangement, Assignment
from repro.core.candidates import CandidateFinder
from repro.core.instance import LTCInstance
from repro.core.worker import Worker
from repro.structures.topk import TopKHeap


class LAFSolver(OnlineSolver):
    """Largest Acc First online solver (paper Algorithm 2)."""

    name = "LAF"

    def __init__(self, use_spatial_index: bool = True) -> None:
        self._use_spatial_index = use_spatial_index
        self._instance: Optional[LTCInstance] = None
        self._arrangement: Optional[Arrangement] = None
        self._candidates: Optional[CandidateFinder] = None
        self._workers_with_assignments = 0

    # --------------------------------------------------------------- protocol

    def start(self, instance: LTCInstance) -> None:
        self._instance = instance
        self._arrangement = instance.new_arrangement()
        self._candidates = CandidateFinder(
            instance, use_spatial_index=self._use_spatial_index
        )
        self._workers_with_assignments = 0

    @property
    def arrangement(self) -> Arrangement:
        if self._arrangement is None:
            raise RuntimeError("start() must be called before reading the arrangement")
        return self._arrangement

    def observe(self, worker: Worker) -> List[Assignment]:
        """Assign the K largest-``Acc*`` uncompleted tasks to ``worker``."""
        if self._instance is None or self._arrangement is None or self._candidates is None:
            raise RuntimeError("start() must be called before observe()")
        arrangement = self._arrangement
        instance = self._instance

        heap: TopKHeap = TopKHeap(worker.capacity)
        for task in self._candidates.candidates(worker):
            if arrangement.is_task_complete(task.task_id):
                continue
            heap.push(instance.acc_star(worker, task), task)

        assignments: List[Assignment] = []
        for _, task in heap.pop_all():
            assignments.append(arrangement.assign(worker, task))
        if assignments:
            self._workers_with_assignments += 1
        return assignments

    def diagnostics(self) -> Dict[str, float]:
        return {"workers_with_assignments": float(self._workers_with_assignments)}
