"""Unit tests for the benchmark orchestrator and its regression gate.

Covers the suite registry (unknown names get did-you-mean errors,
``--only`` filtering, smoke overrides), the ratio-based comparator in
``_common.compare_reports`` (improvements and within-noise drift pass,
real regressions and missing sections trip it, overrides resolve
most-specific-first), and — end to end — that ``bench_all.py --check``
exits non-zero when a synthetic regression is injected into the fresh
report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import _common  # noqa: E402
import bench_all  # noqa: E402  (importing registers the real suites)


def make_report(*, mode="smoke", sections=None, fingerprints=None,
                suites=None, benchmark="all"):
    """A minimal consolidated report for comparator tests."""
    sections = sections if sections is not None else {
        "demo.solve": {
            "baseline": "reference",
            "timings_ms": {"reference": 10.0, "fast": 4.0},
            "speedups": {"fast_vs_reference": 2.5},
        },
    }
    fingerprints = (fingerprints if fingerprints is not None
                    else {"demo": "sha256:" + "0" * 32})
    suites = suites if suites is not None else {"demo": {"size": 5}}
    return {
        "schema_version": _common.SCHEMA_VERSION,
        "benchmark": benchmark,
        "description": "synthetic comparator fixture",
        "mode": mode,
        "config": {"only": None, "suites": suites},
        "environment": _common.environment_metadata(),
        "sections": sections,
        "headline_speedups": {"demo.fast_vs_reference": 2.5},
        "fingerprints": fingerprints,
    }


def with_speedup(report, value):
    clone = json.loads(json.dumps(report))
    clone["sections"]["demo.solve"]["speedups"]["fast_vs_reference"] = value
    return clone


# ------------------------------------------------------------- registry

def test_unknown_suite_gets_did_you_mean():
    with pytest.raises(_common.UnknownSuiteError) as excinfo:
        _common.get_suite("flowkernel")
    message = str(excinfo.value)
    assert "unknown benchmark suite 'flowkernel'" in message
    assert "did you mean 'flow_kernel'?" in message


def test_select_suites_filters_and_preserves_order():
    suites = _common.select_suites(["dispatch_scale", "flow_kernel"])
    assert [suite.name for suite in suites] == ["dispatch_scale",
                                               "flow_kernel"]
    every = _common.select_suites(None)
    assert {suite.name for suite in every} >= {
        "flow_kernel", "candidates", "dynamic_sessions", "dispatch_scale",
    }


def test_suite_namespace_applies_smoke_overrides():
    suite = _common.get_suite("flow_kernel")
    full = _common.suite_namespace(suite)
    smoke = _common.suite_namespace(suite, smoke=True)
    assert smoke.sizes == suite.smoke_overrides["sizes"]
    assert full.sizes != smoke.sizes
    capped = _common.suite_namespace(suite, smoke=True, repeats=1)
    assert capped.repeats == 1


def test_bench_all_only_rejects_unknown_suite(capsys):
    assert bench_all.main(["--only", "flowkernel"]) == 2
    assert "did you mean 'flow_kernel'?" in capsys.readouterr().err


# ----------------------------------------------------------- comparator

def test_improvement_and_within_noise_pass():
    baseline = make_report()
    improved = _common.compare_reports(baseline, with_speedup(baseline, 3.1))
    assert improved.ok and improved.checked == 1
    assert any("improved" in note for note in improved.notes)

    drifted = _common.compare_reports(baseline, with_speedup(baseline, 2.0),
                                      noise=0.45)
    assert drifted.ok
    assert any("within noise" in note for note in drifted.notes)


def test_synthetic_regression_trips_the_gate():
    baseline = make_report()
    # floor = 2.5 * (1 - 0.45) = 1.375; 1.1x is a real regression.
    comparison = _common.compare_reports(baseline,
                                         with_speedup(baseline, 1.1))
    assert not comparison.ok
    assert any("regressed 2.50x -> 1.10x" in p for p in comparison.problems)


def test_missing_section_and_missing_speedup_are_errors():
    baseline = make_report()
    gutted = json.loads(json.dumps(baseline))
    gutted["sections"] = {"other.section": {"metrics": {"n": 1}}}
    comparison = _common.compare_reports(baseline, gutted)
    assert any("missing from the fresh report" in p
               for p in comparison.problems)

    keyless = json.loads(json.dumps(baseline))
    keyless["sections"]["demo.solve"]["speedups"] = {"other_vs_reference": 1.0}
    comparison = _common.compare_reports(baseline, keyless)
    assert any("speedup 'fast_vs_reference' is missing" in p
               for p in comparison.problems)


def test_noise_overrides_resolve_most_specific_first():
    baseline = make_report()
    fresh = with_speedup(baseline, 2.0)  # a 20% drop from 2.5x

    # Section-wide tightening to 10% makes the drop a regression...
    tight = _common.compare_reports(baseline, fresh,
                                    overrides={"demo.solve": 0.1})
    assert not tight.ok
    # ...but a per-key override wins over the section-wide one.
    loose = _common.compare_reports(
        baseline, fresh,
        overrides={"demo.solve": 0.1,
                   "demo.solve.fast_vs_reference": 0.3},
    )
    assert loose.ok


def test_parse_noise_overrides_validates_input():
    parsed = _common.parse_noise_overrides(
        ["demo.solve=0.3", "demo.solve.fast_vs_reference=0.1"])
    assert parsed == {"demo.solve": 0.3,
                      "demo.solve.fast_vs_reference": 0.1}
    with pytest.raises(ValueError):
        _common.parse_noise_overrides(["no-equals-sign"])
    with pytest.raises(ValueError):
        _common.parse_noise_overrides(["demo=1.5"])


def test_fingerprint_gate_distinguishes_config_changes():
    baseline = make_report()

    drifted = json.loads(json.dumps(baseline))
    drifted["fingerprints"]["demo"] = "sha256:" + "f" * 32
    same_config = _common.compare_reports(baseline, drifted)
    assert any("outputs drifted" in p for p in same_config.problems)

    # Same drift under a different workload config is only a note.
    drifted["config"]["suites"]["demo"] = {"size": 9}
    new_config = _common.compare_reports(baseline, drifted)
    assert new_config.ok
    assert any("configs differ" in note for note in new_config.notes)

    missing = json.loads(json.dumps(baseline))
    missing["fingerprints"] = {}
    comparison = _common.compare_reports(baseline, missing)
    assert any("fingerprint is missing" in p for p in comparison.problems)

    skipped = _common.compare_reports(baseline, missing,
                                      check_fingerprints=False)
    assert skipped.ok


def test_observational_sections_are_exempt_from_the_ratio_gate():
    sections = {"demo.shed": {"metrics": {"shed_total": 42}}}
    baseline = make_report(sections=sections)
    fresh = make_report(sections={"demo.shed": {"metrics": {"shed_total": 7}}})
    comparison = _common.compare_reports(baseline, fresh)
    assert comparison.ok and comparison.checked == 0


# ------------------------------------------------- end-to-end exit codes

def run_check_cli(tmp_path, baseline, fresh, extra=()):
    """Drive ``bench_all.py --check`` on pre-written reports."""
    baseline_path = tmp_path / "baseline.json"
    fresh_path = tmp_path / "fresh.json"
    baseline_path.write_text(json.dumps(baseline))
    fresh_path.write_text(json.dumps(fresh))
    return bench_all.main([
        "--check", "--baseline", str(baseline_path),
        "--fresh", str(fresh_path), *extra,
    ])


def test_check_passes_on_matching_reports(tmp_path, capsys):
    baseline = make_report()
    assert run_check_cli(tmp_path, baseline, baseline) == 0
    assert "gate: PASS" in capsys.readouterr().out


def test_check_exits_nonzero_on_injected_regression(tmp_path, capsys):
    baseline = make_report()
    regressed = with_speedup(baseline, 1.1)
    assert run_check_cli(tmp_path, baseline, regressed) == 1
    out = capsys.readouterr().out
    assert "gate: FAIL" in out
    assert "regressed" in out


def test_check_honours_noise_override_flags(tmp_path):
    baseline = make_report()
    fresh = with_speedup(baseline, 2.0)
    assert run_check_cli(tmp_path, baseline, fresh,
                         extra=["--noise-override", "demo.solve=0.1"]) == 1
    assert run_check_cli(tmp_path, baseline, fresh,
                         extra=["--noise-override", "demo.solve=0.3"]) == 0


def test_check_fails_prerequisites_without_baseline(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    fresh_path = tmp_path / "fresh.json"
    fresh_path.write_text(json.dumps(make_report()))
    code = bench_all.main(["--check", "--baseline", str(missing),
                           "--fresh", str(fresh_path)])
    assert code == 2
    assert "baseline report present" in capsys.readouterr().out
