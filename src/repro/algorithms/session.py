"""Session implementations for the two solver families.

:class:`OnlineSolverSession` is the native adapter: each
:meth:`~repro.core.session.Session.on_worker` call is one irrevocable greedy
decision of the wrapped :class:`~repro.algorithms.base.OnlineSolver`.

:class:`ReplaySession` adapts an :class:`~repro.algorithms.base.OfflineSolver`
to the same protocol: when the first worker arrives the solver plans on the
full instance (it is an *offline* algorithm — it legitimately sees the whole
worker sequence), and the plan is then replayed arrival by arrival.  The
replay refuses streams that differ from the instance's own workers, because a
plan computed for one future is meaningless on another.

Both sessions defer solver start-up until the first arrival so that
:meth:`~repro.core.session.Session.submit_tasks` can stage tasks into the
effective instance for free.  After activation, submission stays legal
for online solvers that declare ``supports_dynamic_tasks`` (their
candidate state rides the incremental engine, so new tasks append to the
live snapshot); replay sessions and non-dynamic solvers refuse with
:class:`~repro.core.session.SessionStateError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.algorithms.base import OnlineSolver, Solver, SolveResult
from repro.core.arrangement import Arrangement, Assignment
from repro.core.instance import LTCInstance
from repro.core.session import Session, SessionSnapshot, SessionStateError
from repro.core.task import Task
from repro.core.worker import Worker


class _SolverSession(Session):
    """Shared machinery: deferred activation plus pre-arrival task staging."""

    def __init__(self, solver: Solver, instance: LTCInstance) -> None:
        self._solver = solver
        self._base_instance = instance
        self._extra_tasks: List[Task] = []
        self._instance: Optional[LTCInstance] = None  # set on activation
        self._observed = 0

    # ----------------------------------------------------------- protocol

    @property
    def algorithm(self) -> str:
        return self._solver.name

    @property
    def workers_observed(self) -> int:
        """How many workers have been fed so far."""
        return self._observed

    @property
    def instance(self) -> LTCInstance:
        """The effective instance (base tasks plus any submitted extras)."""
        if self._instance is not None:
            return self._instance
        return self._effective_instance()

    def submit_tasks(self, tasks: Sequence[Task]) -> None:
        if self._instance is not None:
            self._submit_live(list(tasks))
            return
        known = {task.task_id for task in self._base_instance.tasks}
        known.update(task.task_id for task in self._extra_tasks)
        for task in tasks:
            if task.task_id in known:
                raise ValueError(f"task id {task.task_id} is already posted")
            known.add(task.task_id)
            self._extra_tasks.append(task)

    def on_worker(self, worker: Worker) -> List[Assignment]:
        self._activate()
        # Count the arrival only after dispatch succeeds, so a worker the
        # session *rejects up front* (wrong stream, rebound solver) does not
        # desync it or inflate workers_observed.  If a solver's observe()
        # itself fails partway it may already have mutated its arrangement —
        # sessions make no transactional promise about mid-observe failures.
        assignments = self._dispatch(worker)
        self._observed += 1
        return assignments

    def snapshot(self) -> SessionSnapshot:
        if self._instance is None:
            # Not yet activated: nothing observed, nothing assigned.
            return SessionSnapshot(
                algorithm=self.algorithm,
                workers_observed=0,
                num_assignments=0,
                tasks_total=len(self._base_instance.tasks) + len(self._extra_tasks),
                tasks_completed=0,
                max_latency=0,
                complete=False,
            )
        arrangement = self.arrangement
        total = len(self._instance.tasks)
        abandoned = len(arrangement.abandoned_tasks)
        return SessionSnapshot(
            algorithm=self.algorithm,
            workers_observed=self._observed,
            num_assignments=len(arrangement),
            tasks_total=total,
            tasks_completed=(
                total - len(arrangement.uncompleted_tasks()) - abandoned
            ),
            max_latency=arrangement.max_latency,
            complete=self.is_complete,
            tasks_abandoned=abandoned,
        )

    # ------------------------------------------------------------ internals

    def _effective_instance(self) -> LTCInstance:
        base = self._base_instance
        if not self._extra_tasks:
            return base
        return LTCInstance(
            tasks=[*base.tasks, *self._extra_tasks],
            workers=list(base.workers),
            error_rate=base.error_rate,
            accuracy_model=base.accuracy_model,
            name=base.name,
            min_assignable_accuracy=base.min_assignable_accuracy,
        )

    def _activate(self) -> None:
        if self._instance is None:
            self._instance = self._effective_instance()
            self._start(self._instance)

    # Subclass hooks -----------------------------------------------------

    @property
    def arrangement(self) -> Arrangement:
        """The arrangement built so far (activates the session if needed)."""
        raise NotImplementedError

    def _start(self, instance: LTCInstance) -> None:
        raise NotImplementedError

    def _dispatch(self, worker: Worker) -> List[Assignment]:
        raise NotImplementedError

    def _submit_live(self, tasks: List[Task]) -> None:
        """Post tasks after activation; the default (replay) refuses."""
        raise SessionStateError(
            f"session over solver {self._solver.name!r} cannot accept tasks "
            "after the first worker arrives: an offline replay plan is "
            "computed for a fixed future and cannot absorb new tasks"
        )


class OnlineSolverSession(_SolverSession):
    """Native session over an online solver's start/observe loop.

    A solver object holds one mutable arrangement, so it can serve only one
    live session at a time; activating a new session rebinds the solver, and
    any further use of a superseded session raises
    :class:`~repro.core.session.SessionStateError` instead of silently
    corrupting the newer session's state.  Build one solver per concurrent
    session (e.g. via :func:`~repro.algorithms.registry.build_solver`).
    """

    def __init__(self, solver: OnlineSolver, instance: LTCInstance) -> None:
        if not solver.is_online:
            raise TypeError("OnlineSolverSession requires an online solver")
        super().__init__(solver, instance)
        self._online: OnlineSolver = solver

    def _effective_instance(self) -> LTCInstance:
        # Dynamic solvers extend their instance in place as tasks are
        # submitted mid-stream, so the session must own a private copy —
        # otherwise the caller's instance object would silently grow (and
        # a second session or offline baseline run on it would see a
        # different task set than the caller posted).
        base = self._base_instance
        if not self._extra_tasks and not self._online.supports_dynamic_tasks:
            return base
        return LTCInstance(
            tasks=[*base.tasks, *self._extra_tasks],
            workers=list(base.workers),
            error_rate=base.error_rate,
            accuracy_model=base.accuracy_model,
            name=base.name,
            min_assignable_accuracy=base.min_assignable_accuracy,
        )

    @property
    def arrangement(self) -> Arrangement:
        self._activate()
        self._check_binding()
        return self._online.arrangement

    @property
    def is_complete(self) -> bool:
        if self._instance is None:
            return False
        self._check_binding()
        return self._online.arrangement.is_complete()

    def _check_binding(self) -> None:
        bound = getattr(self._online, "_active_session", None)
        if bound is not self:
            raise SessionStateError(
                f"solver {self._online.name!r} has been rebound to another "
                "session since this one started; a solver object serves one "
                "live session at a time — build one solver per session"
            )

    def _start(self, instance: LTCInstance) -> None:
        self._online.start(instance)
        self._online._active_session = self

    def _dispatch(self, worker: Worker) -> List[Assignment]:
        self._check_binding()
        return self._online.observe(worker)

    def _submit_live(self, tasks: List[Task]) -> None:
        """Mid-stream submission: forward to a dynamic solver in place.

        The solver extends its instance/arrangement/candidate snapshot
        (see :meth:`~repro.algorithms.base.OnlineSolver.add_tasks`).  The
        instance it mutates is the session's *private working copy* (see
        :meth:`_effective_instance`), so snapshots and completion checks
        see the enlarged task set immediately while the instance object
        the caller submitted stays untouched.
        """
        if not self._online.supports_dynamic_tasks:
            raise SessionStateError(
                f"solver {self._online.name!r} does not accept tasks after "
                "the first worker arrives; its candidate snapshot froze at "
                "activation (only dynamic engine-backed solvers can extend "
                "a live task set)"
            )
        self._check_binding()
        self._online.add_tasks(tasks)

    def expire_tasks(self, task_ids: Sequence[int]) -> List[int]:
        """Expire overdue tasks through an expiry-capable solver.

        Activates the session first (a TTL sweep may fire before the first
        routed arrival), then abandons the tasks in the solver's live
        arrangement/candidate snapshot.  See
        :meth:`repro.core.session.Session.expire_tasks` for the contract.
        """
        if not self._online.supports_task_expiry:
            raise SessionStateError(
                f"session over solver {self._online.name!r} cannot expire "
                "tasks: the solver does not support mid-stream task expiry"
            )
        self._activate()
        self._check_binding()
        return self._online.expire_tasks(list(task_ids))

    def result(self) -> SolveResult:
        self._activate()
        self._check_binding()
        arrangement = self._online.arrangement
        return SolveResult(
            algorithm=self.algorithm,
            arrangement=arrangement,
            completed=arrangement.is_complete(),
            max_latency=arrangement.max_latency,
            workers_observed=self._observed,
            extra=self._online.diagnostics(),
        )


class ReplaySession(_SolverSession):
    """Adapts an offline solver to the incremental protocol by replaying.

    On activation the offline solver plans over the *full* instance (tasks
    and the whole worker sequence — exactly the information the offline
    scenario grants it); :meth:`on_worker` then releases the plan's
    assignments for each arriving worker.  The fed stream must be the
    instance's own workers in arrival order.
    """

    def __init__(self, solver: Solver, instance: LTCInstance) -> None:
        super().__init__(solver, instance)
        self._plan: Dict[int, List[int]] = {}
        self._replayed: Optional[Arrangement] = None
        self._pending_assignments = 0
        self._plan_extra: Dict[str, float] = {}

    @property
    def arrangement(self) -> Arrangement:
        self._activate()
        assert self._replayed is not None
        return self._replayed

    @property
    def is_complete(self) -> bool:
        if self._replayed is None:
            return False
        return self._pending_assignments == 0 and self._replayed.is_complete()

    def _start(self, instance: LTCInstance) -> None:
        planned = self._solver.solve(instance)
        self._plan = {}
        for assignment in planned.arrangement.assignments:
            self._plan.setdefault(assignment.worker_index, []).append(
                assignment.task_id
            )
            self._pending_assignments += 1
        self._plan_extra = dict(planned.extra)
        self._replayed = instance.new_arrangement()

    def _dispatch(self, worker: Worker) -> List[Assignment]:
        assert self._instance is not None and self._replayed is not None
        expected = self._observed + 1
        if worker.index != expected:
            raise SessionStateError(
                f"replay session expected worker {expected}, got "
                f"{worker.index}; offline plans replay only over the "
                "instance's own stream in arrival order"
            )
        if worker != self._instance.worker(worker.index):
            raise SessionStateError(
                f"worker {worker.index} differs from the instance's worker at "
                "that arrival; offline plans replay only over the instance's "
                "own stream"
            )
        assignments: List[Assignment] = []
        for task_id in self._plan.get(worker.index, ()):
            assignments.append(
                self._replayed.assign(worker, self._instance.task(task_id))
            )
            self._pending_assignments -= 1
        return assignments

    def result(self) -> SolveResult:
        self._activate()
        assert self._replayed is not None
        return SolveResult(
            algorithm=self.algorithm,
            arrangement=self._replayed,
            completed=self._replayed.is_complete(),
            max_latency=self._replayed.max_latency,
            workers_observed=self._observed,
            extra=dict(self._plan_extra),
        )


def open_session(solver: Solver, instance: LTCInstance) -> Session:
    """Open the right kind of session for any solver (functional spelling).

    Parameters
    ----------
    solver:
        Any built solver (e.g. from
        :func:`~repro.algorithms.registry.build_solver`).  Online solvers
        get a native :class:`OnlineSolverSession`; offline solvers get a
        :class:`ReplaySession` that plans on the full instance at first
        arrival and replays the plan.
    instance:
        The LTC instance to serve.  More tasks may always be added through
        :meth:`~repro.core.session.Session.submit_tasks` before the first
        worker arrives; after that, submission stays legal exactly for
        dynamic online solvers (``supports_dynamic_tasks``), whose live
        candidate snapshot absorbs the new tasks in place.

    Returns
    -------
    A fresh :class:`~repro.core.session.Session`.  Note the invariant that
    one solver object holds one mutable arrangement: opening a second live
    session on the same *online* solver rebinds it and invalidates the
    first (which then raises
    :class:`~repro.core.session.SessionStateError`) — build one solver per
    concurrent session.
    """
    return solver.open_session(instance)
