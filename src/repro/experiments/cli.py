"""Command-line entry point: ``repro-experiments``.

Examples
--------
List the available experiments::

    repro-experiments --list

Run the Fig. 3a/e/i column at the default scaled-down size and print its
latency / runtime / memory tables::

    repro-experiments fig3_tasks

Run a larger version of the epsilon sweep with more repetitions::

    repro-experiments fig4_epsilon --scale 0.05 --repetitions 5

Algorithms may be bare registry names or parameterized spec strings::

    repro-experiments fig3_tasks --algorithms LAF "MCF-LTC?batch_multiplier=2.0"
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.configs import get_experiment, list_experiments
from repro.experiments.harness import run_experiment
from repro.experiments.paper_reference import PAPER_EXPECTATIONS
from repro.experiments.report import render_table


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the evaluation of 'Latency-oriented Task "
        "Completion via Spatial Crowdsourcing' (ICDE 2018).",
    )
    parser.add_argument("experiment", nargs="?", help="experiment id to run")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--scale", type=float, default=None,
                        help="fraction of the paper's cardinalities (default: per-experiment)")
    parser.add_argument("--repetitions", type=int, default=None,
                        help="repetitions per setting (paper uses 30)")
    parser.add_argument("--algorithms", nargs="*", default=None,
                        help="subset of algorithms to run; accepts registry "
                        "names and spec strings like "
                        "'MCF-LTC?batch_multiplier=2.0'")
    parser.add_argument("--no-memory", action="store_true",
                        help="skip peak-memory metering (faster)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-run progress lines")
    parser.add_argument("--check", action="store_true",
                        help="compare the measured shapes against the paper's claims")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="also write the aggregated series to a CSV file")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write records and series to a JSON file")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        for experiment_id in list_experiments():
            definition = get_experiment(experiment_id)
            print(f"{experiment_id:24s} {definition.figure_panels:24s} {definition.description}")
        return 0

    progress = None if args.quiet else (lambda message: print(message, file=sys.stderr))
    table = run_experiment(
        args.experiment,
        scale=args.scale,
        repetitions=args.repetitions,
        algorithms=args.algorithms,
        track_memory=not args.no_memory,
        progress=progress,
    )
    print(render_table(table))

    if args.csv or args.json:
        from repro.experiments.export import export_json, write_series_csv

        if args.csv:
            print(f"\nwrote {write_series_csv(table, args.csv)}")
        if args.json:
            print(f"wrote {export_json(table, args.json)}")

    if args.check:
        expectation = PAPER_EXPECTATIONS.get(args.experiment)
        if expectation is None:
            print("\n(no paper expectation registered for this experiment)")
        else:
            problems = expectation.check(table)
            if problems:
                print("\nDeviations from the paper's qualitative claims:")
                for problem in problems:
                    print(f"  - {problem}")
                return 1
            print("\nMeasured shapes match the paper's qualitative claims.")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
