"""Benchmark: sharded dispatch vs a single-process dispatcher under replay load.

The single-process :class:`~repro.service.LTCDispatcher` pays one
eligibility probe per open session per arrival, so its per-arrival cost
grows with the whole platform's campaign count.  The
:class:`~repro.service.sharding.ShardedDispatcher` partitions campaigns and
traffic geographically, cutting that to the sessions of one shard — this
benchmark measures the honest win on a seeded, replayable multi-city
workload from :mod:`repro.service.loadgen`:

* **shard_sweep** — the same worker stream through shard plans of 1, 2, 4
  and 8 geo shards, under the ``serial`` executor (single-threaded: the
  speedup is pure routing-work reduction), the ``thread`` executor (one
  drain thread per shard on top) and the ``process`` executor (one worker
  *process* per shard over shared-memory task snapshots — the only rows
  that can escape the GIL, so on multi-core hosts they carry the scaling
  story; on a single core the pipe/pickle hop makes them an honest
  overhead measurement instead).  Every lossless run must produce
  per-session arrangements **byte-identical** to the single-process
  baseline (asserted via fingerprints); throughput, routed fraction and
  routing-latency p50/p99 land in the report.
* **backpressure** — a burst-heavy stream through deliberately small
  shard queues under the ``drop-oldest`` and ``reject`` policies,
  reporting shed rates (byte-identity is forfeited by design here, and the
  shed counts are thread-timing dependent, so this observational section
  is excluded from the exactness fingerprint).
* **ttl** — the latency-vs-abandonment trade: the stream is cut at a
  deadline fraction, every still-open task is expired through the TTL
  sweep, and the report shows completion vs abandonment per deadline.

The suite registers with the shared registry in :mod:`_common`, reports in
the shared schema, and is normally run through
``benchmarks/bench_all.py``; standalone it writes
``BENCH_dispatch_scale.json`` at the repo root (or a smoke report under
``benchmarks/results/`` with ``--smoke``).

Usage::

    PYTHONPATH=src python benchmarks/bench_dispatch_scale.py
    PYTHONPATH=src python benchmarks/bench_dispatch_scale.py \
        --workers 2000 --repeats 1 \
        --output benchmarks/results/dispatch_scale_smoke.json
"""

from __future__ import annotations

import hashlib
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent))

import _common
from _common import BenchSuite, SuiteResult

from repro.service import LTCDispatcher, ShardedDispatcher, ShardPlan
from repro.service.loadgen import BurstWindow, ReplayConfig, build_workload

DEFAULT_OUTPUT = _common.REPO_ROOT / "BENCH_dispatch_scale.json"

#: Shard-count sweep: shard count -> (cols, rows) over the 4x2 city grid.
SHARD_GRIDS: Dict[int, Tuple[int, int]] = {1: (1, 1), 2: (2, 1), 4: (2, 2), 8: (4, 2)}

#: Executors swept per shard count (all three keep byte-identity).
EXECUTORS: Tuple[str, ...] = ("serial", "thread", "process")


def make_config(args) -> ReplayConfig:
    return ReplayConfig(
        seed=args.seed,
        city_cols=4,
        city_rows=2,
        city_spacing=1000.0,
        city_radius=50.0,
        campaigns_per_city=args.campaigns_per_city,
        tasks_per_campaign=args.tasks_per_campaign,
        num_workers=args.workers,
        worker_spread=1.4,
        diurnal_amplitude=0.5,
        bursts=(BurstWindow(0.45, 0.55, hot_city=2, intensity=3.0, city_bias=4.0),),
        error_rate=args.error_rate,
        capacity=args.capacity,
    )


def fingerprint(results: Dict[str, object]) -> Dict[str, str]:
    """Per-session digest of the final arrangement (order-sensitive)."""
    return {
        session_id: hashlib.sha256(
            repr(result.arrangement.assignments).encode()
        ).hexdigest()[:16]
        for session_id, result in results.items()
    }


def run_single_process(workload) -> dict:
    dispatcher = LTCDispatcher(default_solver="AAM")
    ids = [dispatcher.submit_instance(c) for c in workload.campaigns]
    start = time.perf_counter()
    for worker in workload.worker_stream():
        dispatcher.feed_worker(worker)
    wall = time.perf_counter() - start
    statuses = dispatcher.poll()
    completed = sum(1 for s in statuses.values() if s.complete)
    results = dispatcher.close_all()
    metrics = dispatcher.metrics
    return {
        "wall_s": wall,
        "offered": metrics.workers_fed,
        "routed_fraction": metrics.routed_fraction,
        "sessions": len(ids),
        "sessions_completed": completed,
        "fingerprints": fingerprint(results),
    }


def run_sharded(workload, shards: int, executor: str, queue_capacity: int) -> dict:
    cols, rows = SHARD_GRIDS[shards]
    plan = ShardPlan.for_region(workload.config.bounds, cols=cols, rows=rows)
    dispatcher = ShardedDispatcher(
        plan,
        default_solver="AAM",
        executor=executor,
        queue_capacity=queue_capacity,
        queue_policy="block",
        record_latencies=True,
    )
    for campaign in workload.campaigns:
        dispatcher.submit_instance(campaign)
    overflow_sessions = [
        status
        for status in dispatcher.shard_status()
        if status.is_overflow and status.session_ids
    ]
    if overflow_sessions:
        raise AssertionError(
            "benchmark campaigns must pin to geo shards; "
            f"{len(overflow_sessions[0].session_ids)} landed in overflow"
        )
    start = time.perf_counter()
    for worker in workload.worker_stream():
        dispatcher.feed_worker(worker)
    dispatcher.drain()
    wall = time.perf_counter() - start
    statuses = dispatcher.poll()
    completed = sum(1 for s in statuses.values() if s.complete)
    latencies = sorted(
        sample
        for samples in dispatcher.routing_latencies().values()
        for sample in samples
    )
    dispatcher.stop()
    metrics = dispatcher.metrics
    shed = dispatcher.shed_total
    offered = dispatcher.arrivals_offered
    results = dispatcher.close_all()

    def quantile(q: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    return {
        "wall_s": wall,
        "offered": offered,
        "routed_fraction": metrics.routed_fraction,
        "shed": shed,
        "sessions_completed": completed,
        "routing_p50_us": quantile(0.50) * 1e6,
        "routing_p99_us": quantile(0.99) * 1e6,
        "fingerprints": fingerprint(results),
    }


def bench_shard_sweep(workload, shard_counts, repeats, queue_capacity):
    """The headline sweep: timings are medians over interleaved repeats."""
    runners = {"single_process": lambda: run_single_process(workload)}
    for shards in shard_counts:
        for executor in EXECUTORS:
            runners[f"{executor}_{shards}"] = (
                lambda s=shards, e=executor: run_sharded(
                    workload, s, e, queue_capacity
                )
            )
    times: Dict[str, List[float]] = {impl: [] for impl in runners}
    outputs: Dict[str, dict] = {}
    for _ in range(repeats):
        for impl, runner in runners.items():
            outputs[impl] = runner()
            times[impl].append(outputs[impl]["wall_s"])
    baseline = outputs["single_process"]
    for impl, output in outputs.items():
        if output.get("shed", 0):
            raise AssertionError(f"{impl} shed arrivals under the block policy")
        if output["fingerprints"] != baseline["fingerprints"]:
            diverged = [
                sid
                for sid, digest in output["fingerprints"].items()
                if baseline["fingerprints"].get(sid) != digest
            ]
            raise AssertionError(
                f"{impl} arrangements diverged from single_process "
                f"(sessions {diverged[:5]})"
            )
    medians_s = {impl: statistics.median(times[impl]) for impl in runners}
    cases = {
        "single_process": {
            "wall_ms_median": round(medians_s["single_process"] * 1000, 3),
            "throughput_per_s": round(
                baseline["offered"] / medians_s["single_process"], 1
            ),
            "routed_fraction": round(baseline["routed_fraction"], 4),
            "sessions": baseline["sessions"],
            "sessions_completed": baseline["sessions_completed"],
        }
    }
    speedups = {}
    for impl, output in outputs.items():
        if impl == "single_process":
            continue
        median_s = medians_s[impl]
        speedups[f"{impl}_vs_single_process"] = _common.ratio(
            medians_s["single_process"], median_s
        )
        cases[impl] = {
            "wall_ms_median": round(median_s * 1000, 3),
            "throughput_per_s": round(output["offered"] / median_s, 1),
            "speedup_vs_single_process": speedups[f"{impl}_vs_single_process"],
            "routed_fraction": round(output["routed_fraction"], 4),
            "shed": output["shed"],
            "sessions_completed": output["sessions_completed"],
            "routing_p50_us": round(output["routing_p50_us"], 1),
            "routing_p99_us": round(output["routing_p99_us"], 1),
            "byte_identical_to_single_process": True,
        }
    section = {
        "baseline": "single_process",
        "timings_ms": {
            impl: round(value * 1000, 3) for impl, value in medians_s.items()
        },
        "speedups": speedups,
        "cases": cases,
    }
    witness = {
        "sessions": baseline["sessions"],
        "sessions_completed": baseline["sessions_completed"],
        "offered": baseline["offered"],
        "fingerprints": baseline["fingerprints"],
    }
    return section, witness


def bench_backpressure(workload, queue_capacity: int) -> dict:
    """Small queues + burst traffic: shed accounting per policy."""
    metrics = {}
    for policy in ("drop-oldest", "reject"):
        cols, rows = SHARD_GRIDS[8]
        plan = ShardPlan.for_region(workload.config.bounds, cols=cols, rows=rows)
        dispatcher = ShardedDispatcher(
            plan,
            default_solver="AAM",
            executor="thread",
            queue_capacity=queue_capacity,
            queue_policy=policy,
        )
        for campaign in workload.campaigns:
            dispatcher.submit_instance(campaign)
        for worker in workload.worker_stream():
            dispatcher.feed_worker(worker)
        dispatcher.stop()
        offered = dispatcher.arrivals_offered
        shed = dispatcher.shed_total
        dispatcher.close_all()
        metrics[policy] = {
            "queue_capacity": queue_capacity,
            "offered": offered,
            "shed": shed,
            "shed_rate": round(shed / offered, 4) if offered else 0.0,
        }
    return {"metrics": metrics}


def bench_ttl(workload, deadlines) -> dict:
    """Latency-vs-abandonment: expire everything still open at a deadline."""
    metrics = {}
    total_tasks = sum(c.num_tasks for c in workload.campaigns)
    for deadline in deadlines:
        cols, rows = SHARD_GRIDS[4]
        plan = ShardPlan.for_region(workload.config.bounds, cols=cols, rows=rows)
        dispatcher = ShardedDispatcher(plan, default_solver="AAM", executor="serial")
        session_tasks = {}
        for campaign in workload.campaigns:
            session_id = dispatcher.submit_instance(campaign)
            session_tasks[session_id] = [t.task_id for t in campaign.tasks]
        cutoff = int(deadline * workload.config.num_workers)
        for worker in workload.worker_stream():
            if worker.index > cutoff:
                break
            dispatcher.feed_worker(worker)
        # The sweep offers every id; sessions abandon only the open ones.
        expired = sum(
            len(dispatcher.expire_tasks(session_id, ids))
            for session_id, ids in session_tasks.items()
        )
        statuses = dispatcher.poll()
        completed_tasks = sum(
            s.snapshot.tasks_completed for s in statuses.values()
        )
        dispatcher.stop()
        dispatcher.close_all()
        metrics[f"deadline_{deadline:g}"] = {
            "deadline_arrivals": cutoff,
            "tasks_total": total_tasks,
            "tasks_completed": completed_tasks,
            "tasks_abandoned": expired,
            "abandonment_rate": round(expired / total_tasks, 4),
        }
    return {"metrics": metrics}


def run_suite(args) -> SuiteResult:
    config_obj = make_config(args)
    workload = build_workload(config_obj)
    print(f"workload: {len(workload.campaigns)} campaigns over "
          f"{config_obj.num_cities} cities, {config_obj.num_workers} arrivals")

    sweep, sweep_witness = bench_shard_sweep(
        workload, args.shards, args.repeats, args.queue_capacity
    )
    base = sweep["cases"]["single_process"]
    print(f"single_process  wall={base['wall_ms_median']:>9.1f}ms  "
          f"throughput={base['throughput_per_s']:>9.0f}/s")
    for shards in args.shards:
        for executor in EXECUTORS:
            entry = sweep["cases"][f"{executor}_{shards}"]
            print(f"{executor:>6}_{shards}  wall={entry['wall_ms_median']:>9.1f}ms  "
                  f"throughput={entry['throughput_per_s']:>9.0f}/s  "
                  f"speedup={entry['speedup_vs_single_process']:>5.2f}x  "
                  f"p99={entry['routing_p99_us']:>7.1f}us")

    backpressure = bench_backpressure(workload, args.burst_queue_capacity)
    for policy, entry in backpressure["metrics"].items():
        print(f"backpressure {policy:>11}  shed={entry['shed']:>6} "
              f"({entry['shed_rate']:.2%} of {entry['offered']})")

    ttl = bench_ttl(workload, args.deadlines)
    for key, entry in ttl["metrics"].items():
        print(f"ttl {key:>14}  completed={entry['tasks_completed']:>5.0f}  "
              f"abandoned={entry['tasks_abandoned']:>5} "
              f"({entry['abandonment_rate']:.2%})")

    sections = {
        "shard_sweep": sweep,
        "backpressure": backpressure,
        "ttl": ttl,
    }
    headline = {
        f"{executor}_max_shards_vs_single_process":
            sweep["speedups"][f"{executor}_{max(args.shards)}_vs_single_process"]
        for executor in EXECUTORS
    }
    config = {
        "cities": config_obj.num_cities,
        "campaigns": len(workload.campaigns),
        "campaigns_per_city": args.campaigns_per_city,
        "tasks_per_campaign": config_obj.tasks_per_campaign,
        "workers": config_obj.num_workers,
        "capacity": config_obj.capacity,
        "error_rate": config_obj.error_rate,
        "shard_counts": list(args.shards),
        "queue_capacity": args.queue_capacity,
        "burst_queue_capacity": args.burst_queue_capacity,
        "deadlines": list(args.deadlines),
        "repeats": args.repeats,
        "seed": args.seed,
    }
    # The backpressure section is deliberately absent from the payload:
    # shed counts under the thread executor depend on thread timing and
    # are not reproducible across machines.
    return SuiteResult(
        config=config,
        sections=sections,
        headline_speedups=headline,
        fingerprint_payload={
            "shard_sweep": sweep_witness,
            "ttl": ttl["metrics"],
        },
    )


def add_arguments(parser) -> None:
    parser.add_argument("--workers", type=int, default=20_000,
                        help="length of the merged arrival stream")
    parser.add_argument("--campaigns-per-city", type=int, default=8)
    parser.add_argument("--tasks-per-campaign", type=int, default=20)
    parser.add_argument("--capacity", type=int, default=1)
    parser.add_argument("--error-rate", type=float, default=0.01,
                        help="per-task epsilon (small values keep sessions "
                             "open longer, sustaining routing pressure)")
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4, 8],
                        choices=sorted(SHARD_GRIDS),
                        help="shard counts to sweep")
    parser.add_argument("--queue-capacity", type=int, default=65536,
                        help="per-shard queue bound for the lossless sweep")
    parser.add_argument("--burst-queue-capacity", type=int, default=64,
                        help="deliberately small bound for the backpressure "
                             "section")
    parser.add_argument("--deadlines", type=float, nargs="+",
                        default=[0.1, 0.25, 0.5, 1.0],
                        help="TTL deadlines as fractions of the stream")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=20180416)


SUITE = _common.register_suite(BenchSuite(
    name="dispatch_scale",
    description=(
        "Sharded dispatch vs a single-process dispatcher on a seeded, "
        "replayable multi-city worker stream (diurnal + burst traffic). "
        "'shard_sweep' feeds the identical stream through 1/2/4/8 geo "
        "shards under the serial executor (pure routing-work reduction), "
        "the thread executor (plus per-shard drain threads) and the "
        "process executor (one worker process per shard over "
        "shared-memory task snapshots — the only rows that can escape "
        "the GIL); every lossless run is asserted byte-identical to the "
        "single-process baseline via per-session arrangement "
        "fingerprints. "
        "'backpressure' sheds burst traffic through small bounded "
        "queues; 'ttl' expires still-open tasks at a deadline and "
        "reports the completion/abandonment trade."
    ),
    default_output=DEFAULT_OUTPUT,
    add_arguments=add_arguments,
    run=run_suite,
    smoke_overrides={"workers": 4000, "campaigns_per_city": 2,
                     "tasks_per_campaign": 8, "shards": [1, 2, 4],
                     "deadlines": [0.25, 0.5], "repeats": 1},
))


if __name__ == "__main__":
    sys.exit(_common.suite_main(SUITE))
