"""Experiment runner: sweep x algorithms x repetitions -> ResultTable.

The paper repeats every experimental setting 30 times and reports averages.
The runner reproduces that protocol: for every sweep value it generates
``repetitions`` instances (with derived seeds), runs every configured solver
on each instance, meters runtime/memory, and records the results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.algorithms.base import Solver
from repro.algorithms.registry import get_solver
from repro.core.instance import LTCInstance
from repro.simulation.metrics import measure_solver
from repro.simulation.results import ExperimentRecord, ResultTable

#: Builds an instance for (sweep value, repetition seed).
InstanceFactory = Callable[[float, int], LTCInstance]


@dataclass
class ExperimentRunner:
    """Runs one experiment sweep and collects a :class:`ResultTable`.

    Attributes
    ----------
    experiment_id:
        Identifier used in reports (e.g. ``"fig3_tasks"``).
    sweep_parameter:
        Human-readable name of the varied parameter (e.g. ``"|T|"``).
    sweep_values:
        The x-axis values of the figure panel.
    instance_factory:
        Callable building the instance for a sweep value and repetition.
    algorithms:
        Solver registry names to compare.
    repetitions:
        How many times to repeat each setting (paper: 30).
    track_memory:
        Whether to meter peak memory (slows runs down slightly).
    progress:
        Optional callback ``(message) -> None`` for long sweeps.
    """

    experiment_id: str
    sweep_parameter: str
    sweep_values: Sequence[float]
    instance_factory: InstanceFactory
    algorithms: Sequence[str]
    repetitions: int = 3
    track_memory: bool = True
    progress: Optional[Callable[[str], None]] = None
    solver_overrides: Dict[str, Callable[[], Solver]] = field(default_factory=dict)

    def _make_solver(self, name: str) -> Solver:
        if name in self.solver_overrides:
            return self.solver_overrides[name]()
        return get_solver(name)

    def _report(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def run(self) -> ResultTable:
        """Execute the full sweep and return the populated table."""
        table = ResultTable(self.experiment_id, self.sweep_parameter)
        for value in self.sweep_values:
            for repetition in range(self.repetitions):
                instance = self.instance_factory(value, repetition)
                for algorithm in self.algorithms:
                    solver = self._make_solver(algorithm)
                    measurement = measure_solver(
                        solver, instance, track_memory=self.track_memory
                    )
                    record = ExperimentRecord(
                        experiment_id=self.experiment_id,
                        sweep_parameter=self.sweep_parameter,
                        sweep_value=float(value),
                        algorithm=algorithm,
                        repetition=repetition,
                        max_latency=float(measurement.result.max_latency),
                        completed=measurement.result.completed,
                        runtime_seconds=measurement.runtime_seconds,
                        peak_memory_mb=measurement.peak_memory_mb,
                        extra=dict(measurement.result.extra),
                    )
                    table.add(record)
                    self._report(
                        f"[{self.experiment_id}] {self.sweep_parameter}={value} "
                        f"rep={repetition} {algorithm}: "
                        f"latency={measurement.result.max_latency} "
                        f"time={measurement.runtime_seconds:.2f}s"
                    )
        return table
