"""Geographic sharding for the dispatch layer.

The sigmoid accuracy model bounds every campaign's reach to a disk around
its tasks, so campaigns and worker traffic partition cleanly by region:

* :class:`ShardPlan` grids the serving region into geo shards (plus one
  overflow shard for campaigns whose reach spans cells or cannot be
  bounded) and pins each campaign to the shard containing its reach box;
* :class:`BoundedArrivalQueue` is the bounded, backpressure-aware buffer
  between the router and each shard's dispatch loop;
* :class:`ShardedDispatcher` runs one
  :class:`~repro.service.LTCDispatcher` per shard — serially, on one
  thread per shard, or in one worker process per shard
  (:mod:`repro.service.sharding.process_executor`, with task snapshots
  crossing the boundary as shared memory —
  :mod:`repro.service.sharding.shm`) — while keeping per-session
  arrangements byte-identical to a single-process run (in lossless
  configurations).

See ``docs/dispatch.md`` for the routing semantics and the exactness
argument, and ``benchmarks/bench_dispatch_scale.py`` for the replay load
harness that sweeps shard counts.
"""

from repro.service.sharding.dispatcher import (
    EXECUTORS,
    SHARD_STATES,
    ShardAffinityError,
    ShardedDispatcher,
    ShardStatus,
)
from repro.service.sharding.plan import (
    ShardPlan,
    instance_reach_radius,
    tasks_reach_bounds,
)
from repro.service.sharding.process_executor import (
    INJECTED_CRASH_EXIT,
    ProcessShardClient,
    ShardProcessDied,
    ShardProcessError,
    WorkerShardConfig,
    process_executor_available,
)
from repro.service.sharding.queueing import (
    BACKPRESSURE_POLICIES,
    BoundedArrivalQueue,
    QueueClosedError,
)
from repro.service.sharding.shm import (
    TaskSnapshotHandle,
    attach_tasks,
    export_tasks,
    segment_exists,
    shared_memory_available,
)

__all__ = [
    "ShardPlan",
    "ShardedDispatcher",
    "ShardStatus",
    "ShardAffinityError",
    "BoundedArrivalQueue",
    "QueueClosedError",
    "BACKPRESSURE_POLICIES",
    "EXECUTORS",
    "SHARD_STATES",
    "instance_reach_radius",
    "tasks_reach_bounds",
    "ProcessShardClient",
    "WorkerShardConfig",
    "ShardProcessError",
    "ShardProcessDied",
    "process_executor_available",
    "INJECTED_CRASH_EXIT",
    "TaskSnapshotHandle",
    "export_tasks",
    "attach_tasks",
    "shared_memory_available",
    "segment_exists",
]
