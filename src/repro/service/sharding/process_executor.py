"""Worker-process shards: the ``"process"`` executor's plumbing.

Thread shards share the GIL, so pure-python routing tops out well short
of the shard count.  This module runs each shard's
:class:`~repro.service.LTCDispatcher` in a **worker process** instead:

* :func:`shard_worker_main` is the child entry point — it owns the
  shard's dispatcher and applies messages from a duplex pipe strictly in
  order, preserving the per-shard FIFO contract;
* :class:`ShardProcessChannel` is the parent's handle on one process
  incarnation: a pipe, a receiver thread, ack/latency accounting, and
  single-shot death detection;
* :class:`ProcessShardClient` duck-types the slice of the
  ``LTCDispatcher`` surface the :class:`ShardedDispatcher` control plane
  uses, so the sharded runtime drives a process shard through the same
  code paths as an in-process one.  Cheap mirrors (open session ids,
  instances, last metrics snapshot) live parent-side; everything else is
  a synchronous request/reply round-trip.

Task batches cross the boundary as shared-memory snapshots
(:mod:`repro.service.sharding.shm`) — the worker attaches numpy views
and never re-pickles positions — with an inline-pickle fallback when
numpy or shared memory is unavailable.

**Failure transport.**  A dispatch failure in the worker (escalated
transient, injected crash, any bug) sends a final ``("failed", pickled
exception, repr, traceback)`` frame and exits — injected crashes with
:data:`INJECTED_CRASH_EXIT` so tests can tell them from organic deaths.
The parent rebuilds the original exception when it unpickles (so
supervisor ``last_error`` bookkeeping matches the thread executor) and
always attaches the worker-side traceback string as
``worker_traceback``.  A death with no final frame (hard kill) surfaces
as :class:`ShardProcessDied` with the exit code.  Either way the
channel's death callback fires exactly once, and the sharded runtime
resolves it like a PR 8 crash fault: journal replay into a fresh
process (``("replay", ...)``) under the restart policy, or migration of
the rebuilt sessions into the overflow shard's process (``("adopt",
...)``) under quarantine.

**Fault injection.**  Per-shard :class:`~repro.service.faults.FaultSpec`
schedules ship to the worker, which counts its own 1-based arrival
ordinals (one per ``("worker", ...)`` message, so the counter equals the
journal's worker-entry index).  A worker death reports the ordinal it
died on; recovery then *splits the journal at that cut*: the prefix —
exactly the arrivals the dead incarnation consumed — is replayed into
the fresh process with the ordinal counter advancing but the fault
schedule bypassed (the thread executor's "replayed arrivals bypass the
injector" rule, so a consumed ordinal can never re-fire), while the
suffix — arrivals that were in the pipe but never processed — is
**re-sent live** and fault-checked normally.  That is precisely the
thread executor's split (its replay covers what the dead dispatcher
consumed; everything behind it is still in the queue), so the same
seeded plan fires every fault exactly once, at identical stream
positions, under every executor.
"""

from __future__ import annotations

import os
import pickle
import sys
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import Solver
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.service.faults import (
    FaultSpec,
    InjectedShardCrash,
    TransientSolverError,
)
from repro.service.metrics import DispatcherMetrics
from repro.service.recovery import UNREPLAYABLE, JournalReplayError
from repro.service.sharding.shm import (
    ExportedTaskBlock,
    TaskSnapshotHandle,
    attach_tasks,
    export_tasks,
)

#: Exit code of a worker process killed by an injected crash fault, so
#: chaos tests (and operators) can tell injected kills from organic ones.
INJECTED_CRASH_EXIT = 86

#: Environment override for the multiprocessing start method
#: ("fork" / "spawn" / "forkserver"); defaults to fork where available.
MP_CONTEXT_ENV = "REPRO_SHARD_MP_CONTEXT"


class ShardProcessError(RuntimeError):
    """A shard worker process failed; carries the worker-side traceback."""

    def __init__(self, message: str, worker_traceback: Optional[str] = None):
        super().__init__(message)
        self.worker_traceback = worker_traceback


class ShardProcessDied(ShardProcessError):
    """A shard worker process died without a final failure frame."""

    def __init__(self, message: str, exitcode: Optional[int] = None):
        super().__init__(message)
        self.exitcode = exitcode


def _start_method() -> str:
    import multiprocessing

    override = os.environ.get(MP_CONTEXT_ENV)
    if override:
        return override
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def process_executor_available() -> bool:
    """Whether this platform can run worker-process shards at all.

    Shared memory is *not* required — task snapshots fall back to inline
    pickle — but a working ``multiprocessing`` context is.
    """
    if sys.platform in ("emscripten", "wasi"):
        return False
    try:
        import multiprocessing

        multiprocessing.get_context(_start_method())
    except (ImportError, ValueError, OSError):
        return False
    return True


@dataclass(frozen=True)
class WorkerShardConfig:
    """Everything a shard worker process needs to build its dispatcher.

    Must stay picklable under the ``spawn`` start method: solver specs
    (never prebuilt :class:`~repro.algorithms.base.Solver` objects),
    backend *names*, frozen fault specs.
    """

    shard_id: int
    default_solver: object = "AAM"
    keep_streams: bool = False
    candidates: Optional[str] = None
    transient_retries: int = 2
    fault_specs: Tuple[FaultSpec, ...] = ()


@dataclass(frozen=True)
class _InstancePayload:
    """A picklable :class:`LTCInstance` with its tasks in shared memory."""

    handle: TaskSnapshotHandle
    workers: Tuple[Worker, ...]
    error_rate: float
    accuracy_model: object
    name: str
    min_assignable_accuracy: float

    def build(self) -> LTCInstance:
        return LTCInstance(
            tasks=attach_tasks(self.handle),
            workers=list(self.workers),
            error_rate=self.error_rate,
            accuracy_model=self.accuracy_model,
            name=self.name,
            min_assignable_accuracy=self.min_assignable_accuracy,
        )


def export_instance(
    instance: LTCInstance,
) -> Tuple[_InstancePayload, Optional[ExportedTaskBlock]]:
    """Export an instance for the wire; tasks ride shared memory."""
    handle, block = export_tasks(instance.tasks)
    payload = _InstancePayload(
        handle=handle,
        workers=tuple(instance.workers),
        error_rate=instance.error_rate,
        accuracy_model=instance.accuracy_model,
        name=instance.name,
        min_assignable_accuracy=instance.min_assignable_accuracy,
    )
    return payload, block


def build_wire_entries(
    entries: Sequence[tuple],
) -> Tuple[List[tuple], List[ExportedTaskBlock]]:
    """Convert journal entries into picklable wire entries.

    Session opens and task batches are re-exported into fresh
    shared-memory blocks; the caller must release every returned block
    once the receiving worker acknowledged the message.  Raises
    :class:`JournalReplayError` on an unreplayable open (the
    :data:`UNREPLAYABLE` sentinel loses identity across pickle, so it
    must never reach the wire).
    """
    wire: List[tuple] = []
    blocks: List[ExportedTaskBlock] = []
    try:
        for entry in entries:
            kind = entry[0]
            if kind == "open":
                _, session_id, instance, solver = entry
                if solver is UNREPLAYABLE:
                    raise JournalReplayError(
                        f"session {session_id!r} was opened with a prebuilt "
                        "Solver object, which cannot be rebuilt from a spec; "
                        "journal replay is impossible for this shard"
                    )
                payload, block = export_instance(instance)
                if block is not None:
                    blocks.append(block)
                wire.append(("open", session_id, payload, solver))
            elif kind == "tasks":
                handle, block = export_tasks(list(entry[2]))
                if block is not None:
                    blocks.append(block)
                wire.append(("tasks", entry[1], handle))
            else:  # "worker" / "expire" / "close" are picklable as-is
                wire.append(entry)
    except BaseException:
        for block in blocks:
            block.release()
        raise
    return wire, blocks


# ======================================================== worker process


class _WorkerShard:
    """The child-process side: one dispatcher, one message loop."""

    def __init__(self, conn, config: WorkerShardConfig) -> None:
        from repro.service.dispatcher import LTCDispatcher

        self._conn = conn
        self._config = config
        self._make = lambda: LTCDispatcher(
            default_solver=config.default_solver,
            keep_streams=config.keep_streams,
            candidates=config.candidates,
        )
        self._dispatcher = self._make()
        self._ordinal = 0
        self._faults: Dict[int, FaultSpec] = {
            spec.at_arrival: spec for spec in config.fault_specs
        }
        self._consumed: set = set()

    # ----------------------------------------------------------- main loop

    def run(self) -> None:
        while True:
            try:
                message = self._conn.recv()
            except (EOFError, OSError):
                return  # parent went away; nothing to serve
            kind = message[0]
            if kind == "worker":
                self._on_worker(message[1])
            elif kind == "stop":
                self._reply_ok(None)
                return
            else:
                try:
                    payload = self._control(message)
                except BaseException as exc:  # noqa: BLE001 - shipped back
                    self._reply_err(exc)
                else:
                    self._reply_ok(payload)

    def _reply_ok(self, payload) -> None:
        self._conn.send(("ok", payload, self._dispatcher.metrics.copy()))

    def _reply_err(self, exc: BaseException) -> None:
        try:
            blob: Optional[bytes] = pickle.dumps(exc)
        except Exception:  # noqa: BLE001 - falls back to repr transport
            blob = None
        self._conn.send(("err", blob, repr(exc), traceback.format_exc()))

    # ------------------------------------------------------------ arrivals

    def _raise_fault(self, ordinal: int, attempt: int) -> None:
        """Mirror of :meth:`FaultInjector.raise_for`, worker-local."""
        spec = self._faults.get(ordinal)
        if spec is None or ordinal in self._consumed:
            return
        if spec.kind == "crash":
            self._consumed.add(ordinal)
            raise InjectedShardCrash(
                f"injected crash: shard {self._config.shard_id}, "
                f"arrival {ordinal}"
            )
        if attempt < spec.failures:
            raise TransientSolverError(
                f"injected transient dispatch failure: shard "
                f"{self._config.shard_id}, arrival {ordinal}, "
                f"attempt {attempt + 1}/{spec.failures}"
            )
        self._consumed.add(ordinal)

    def _on_worker(self, worker: Worker) -> None:
        self._ordinal += 1
        attempt = 0
        while True:
            try:
                self._raise_fault(self._ordinal, attempt)
                self._dispatcher.feed_worker(worker)
                break
            except TransientSolverError as exc:
                attempt += 1
                if attempt > self._config.transient_retries:
                    self._die(exc, exitcode=1)
            except BaseException as exc:  # noqa: BLE001 - shard failure
                code = (
                    INJECTED_CRASH_EXIT
                    if isinstance(exc, InjectedShardCrash)
                    else 1
                )
                self._die(exc, exitcode=code)
        self._conn.send(("done",))

    def _die(self, exc: BaseException, exitcode: int) -> None:
        """Ship the failure and hard-exit — shard state is genuinely lost.

        The frame carries the arrival ordinal the worker died on: the
        parent cuts the journal there, replaying what this incarnation
        consumed and re-sending the rest live.
        """
        try:
            blob: Optional[bytes] = pickle.dumps(exc)
        except Exception:  # noqa: BLE001
            blob = None
        try:
            self._conn.send(
                ("failed", blob, repr(exc), traceback.format_exc(),
                 self._ordinal)
            )
        except (OSError, ValueError):
            pass
        os._exit(exitcode)

    # ------------------------------------------------------- control plane

    def _control(self, message: tuple):
        kind = message[0]
        if kind == "open":
            _, session_id, payload, solver = message
            return self._dispatcher.submit_instance(
                payload.build(), solver=solver, session_id=session_id
            )
        if kind == "tasks":
            return self._dispatcher.submit_tasks(
                message[1], attach_tasks(message[2])
            )
        if kind == "expire":
            return self._dispatcher.expire_tasks(message[1], list(message[2]))
        if kind == "close":
            return self._dispatcher.close(message[1])
        if kind == "poll":
            return self._dispatcher.poll()
        if kind == "metrics":
            return None  # the metrics snapshot rides every ok-frame
        if kind == "routed_stream":
            return self._dispatcher.routed_stream(message[1])
        if kind == "all_complete":
            return self._dispatcher.all_complete
        if kind == "replay":
            return self._apply_entries(
                self._dispatcher, message[1], advance_ordinals=True
            )
        if kind == "adopt":
            scratch = self._make()
            self._apply_entries(scratch, message[1], advance_ordinals=False)
            return self._dispatcher.adopt_sessions(scratch)
        raise RuntimeError(f"unknown shard-worker message kind {kind!r}")

    def _apply_entries(
        self, dispatcher, wire: Sequence[tuple], advance_ordinals: bool
    ) -> int:
        """Apply wire entries in order; returns replayed arrival count.

        Replay advances the live-arrival ordinal counter without firing
        faults (see the module docstring), so the restarted shard's
        schedule stays aligned with the offered stream.
        """
        replayed = 0
        for entry in wire:
            kind = entry[0]
            if kind == "worker":
                if advance_ordinals:
                    self._ordinal += 1
                dispatcher.feed_worker(entry[1])
                replayed += 1
            elif kind == "open":
                _, session_id, payload, solver = entry
                dispatcher.submit_instance(
                    payload.build(), solver=solver, session_id=session_id
                )
            elif kind == "tasks":
                dispatcher.submit_tasks(entry[1], attach_tasks(entry[2]))
            elif kind == "expire":
                dispatcher.expire_tasks(entry[1], list(entry[2]))
            else:  # close
                dispatcher.close(entry[1])
        return replayed


def shard_worker_main(conn, config: WorkerShardConfig) -> None:
    """Entry point of a shard worker process."""
    try:
        _WorkerShard(conn, config).run()
    finally:
        try:
            conn.close()
        except OSError:
            pass


# ======================================================== parent channel


class ShardProcessChannel:
    """Parent handle on one worker-process incarnation.

    Owns the pipe, the daemon process, and a receiver thread that
    dispatches ``("done",)`` acks, control replies, and (exactly once)
    the death of the worker.  All sends go through one lock so message
    order on the pipe equals call order.
    """

    def __init__(
        self,
        config: WorkerShardConfig,
        on_done: Callable[[Optional[float]], None],
        on_death: Callable[["ShardProcessChannel", BaseException], None],
    ) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context(_start_method())
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._process = ctx.Process(
            target=shard_worker_main,
            args=(child_conn, config),
            name=f"repro-shard-{config.shard_id}",
            daemon=True,
        )
        self._on_done = on_done
        self._on_death = on_death
        self._send_lock = threading.Lock()
        self._cv = threading.Condition()
        self._reply: Optional[tuple] = None
        self._dead = False
        self._death_error: Optional[BaseException] = None
        self._stopping = False
        self._sent = 0
        self._acked = 0
        self._reconciled = False
        self._consumed_ordinal: Optional[int] = None
        self._send_times: deque = deque()
        self._process.start()
        child_conn.close()  # the parent's copy; the child keeps its own
        self._receiver = threading.Thread(
            target=self._receive_loop,
            name=f"repro-shard-{config.shard_id}-rx",
            daemon=True,
        )
        self._receiver.start()

    # ------------------------------------------------------------- queries

    @property
    def broken(self) -> bool:
        with self._cv:
            return self._dead

    @property
    def exitcode(self) -> Optional[int]:
        return self._process.exitcode

    @property
    def consumed_ordinal(self) -> Optional[int]:
        """Ordinal the worker reported dying on; ``None`` without a frame."""
        with self._cv:
            return self._consumed_ordinal

    @property
    def acked(self) -> int:
        """Arrivals acknowledged by this incarnation."""
        with self._cv:
            return self._acked

    def take_unacked(self) -> int:
        """Arrivals sent but never acked, counted once (death recovery)."""
        with self._cv:
            if self._reconciled:
                return 0
            self._reconciled = True
            return self._sent - self._acked

    # --------------------------------------------------------------- sends

    def send_worker(self, worker: Worker) -> bool:
        """Ship one arrival; ``False`` (without counting) when broken.

        Lock order is always ``_cv`` → ``_send_lock`` (as in
        :meth:`request`); the cv is never acquired while holding the
        send lock.
        """
        with self._cv:
            if self._dead or self._stopping:
                return False
        try:
            with self._send_lock:
                self._conn.send(("worker", worker))
        except (OSError, ValueError, BrokenPipeError):
            return False
        with self._cv:
            self._sent += 1
            self._send_times.append(time.perf_counter())
        return True

    def request(self, message: tuple):
        """One synchronous control round-trip; re-raises worker errors."""
        with self._cv:
            if self._dead:
                raise self._death_error
            self._reply = None
            try:
                with self._send_lock:
                    self._conn.send(message)
            except (OSError, ValueError, BrokenPipeError):
                # The receiver will (or already did) resolve the death;
                # surface it to this caller either way.
                self._cv.wait_for(lambda: self._dead, timeout=10.0)
                raise self._death_error or ShardProcessDied(
                    "shard worker pipe closed mid-request"
                )
            while self._reply is None and not self._dead:
                self._cv.wait()
            if self._reply is None:
                raise self._death_error
            reply, self._reply = self._reply, None
        if reply[0] == "ok":
            return reply[1], reply[2]  # payload, metrics snapshot
        _, blob, repr_str, tb = reply
        raise _rebuild_exception(blob, repr_str, tb)

    # ------------------------------------------------------------ shutdown

    def stop(self) -> Optional[DispatcherMetrics]:
        """Graceful shutdown: stop frame, join, close.  Idempotent."""
        with self._cv:
            if self._stopping:
                return None
            self._stopping = True
            if self._dead:
                self._close_conn()
                return None
        metrics: Optional[DispatcherMetrics] = None
        try:
            _, metrics = self.request(("stop",))
        except BaseException:  # noqa: BLE001 - dying worker; still join
            pass
        self._process.join(timeout=10.0)
        self._close_conn()
        return metrics

    def abandon(self) -> None:
        """Drop an incarnation without the stop handshake.

        Closes the pipe first: an abandoned worker that is still alive
        (a failed replay leaves the process running) exits on the EOF,
        so the join below is prompt either way.
        """
        with self._cv:
            self._stopping = True
        self._close_conn()
        self._process.join(timeout=10.0)

    def _close_conn(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass

    # ------------------------------------------------------------ receiver

    def _receive_loop(self) -> None:
        while True:
            try:
                message = self._conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "done":
                with self._cv:
                    self._acked += 1
                    sent_at = (
                        self._send_times.popleft()
                        if self._send_times
                        else None
                    )
                latency = (
                    None if sent_at is None
                    else time.perf_counter() - sent_at
                )
                self._on_done(latency)
            elif kind == "failed":
                _, blob, repr_str, tb, ordinal = message
                with self._cv:
                    self._consumed_ordinal = ordinal
                self._deliver_death(_rebuild_exception(blob, repr_str, tb))
            else:  # "ok" / "err" control reply
                with self._cv:
                    self._reply = message
                    self._cv.notify_all()
        with self._cv:
            stopping = self._stopping
        if stopping:
            return
        self._process.join(timeout=10.0)
        code = self._process.exitcode
        self._deliver_death(
            ShardProcessDied(
                f"shard worker process died without a failure frame "
                f"(exit code {code})",
                exitcode=code,
            )
        )

    def _deliver_death(self, error: BaseException) -> None:
        with self._cv:
            if self._dead:
                return
            self._dead = True
            self._death_error = error
            self._cv.notify_all()
        self._on_death(self, error)


def _rebuild_exception(
    blob: Optional[bytes], repr_str: str, tb: str
) -> BaseException:
    """Reconstruct a worker-side exception; always attach the traceback.

    Unpickling the original instance keeps the supervisor's
    ``last_error`` (``repr`` of the error) identical to what the thread
    executor would record for the same fault; unpicklable exceptions
    degrade to :class:`ShardProcessError` carrying the repr.
    """
    exc: Optional[BaseException] = None
    if blob is not None:
        try:
            candidate = pickle.loads(blob)
            if isinstance(candidate, BaseException):
                exc = candidate
        except Exception:  # noqa: BLE001 - degrade to repr transport
            exc = None
    if exc is None:
        exc = ShardProcessError(
            f"shard worker failed with unpicklable error {repr_str}",
            worker_traceback=tb,
        )
    else:
        exc.worker_traceback = tb  # type: ignore[attr-defined]
    return exc


def split_journal_entries(
    entries: Sequence[tuple], consumed_ordinal: int
) -> Tuple[List[tuple], List[Worker]]:
    """Split journal entries at the dead incarnation's consumed ordinal.

    Returns ``(prefix, resend)``: the prefix (everything the dead worker
    actually applied, including the arrival it died on) is replayed with
    faults bypassed; ``resend`` holds the arrivals that were journaled
    and piped but never reached the worker — they go back down the fresh
    pipe as live, fault-checked sends.  Control entries always land in
    the prefix: a control reply only arrives after the worker processed
    everything sent before it, so no journaled control entry can follow
    an unprocessed arrival.
    """
    prefix: List[tuple] = []
    resend: List[Worker] = []
    seen = 0
    for entry in entries:
        if entry[0] == "worker":
            seen += 1
            if seen <= consumed_ordinal:
                prefix.append(entry)
            else:
                resend.append(entry[1])
        else:
            prefix.append(entry)
    return prefix, resend


# ========================================================= parent client


class ProcessShardClient:
    """The parent-side stand-in for one shard's ``LTCDispatcher``.

    Presents the dispatcher surface the sharded control plane uses
    (``submit_instance`` / ``submit_tasks`` / ``expire_tasks`` / ``poll``
    / ``close`` / ``metrics`` / ``session_ids`` / ``instance_of`` /
    ``routed_stream`` / ``all_complete``), backed by request/reply
    round-trips to the worker process.  The caller (the sharded
    dispatcher) serialises access under the shard's runtime lock, which
    also makes journal order equal pipe-send order.

    Lifecycle: the worker process spawns lazily on first use and
    survives :meth:`mark_stopping` while sessions remain open, so both
    ``stop()``-then-``close_all()`` and ``close_all()``-then-``stop()``
    orders work; the channel shuts down once stopping *and* empty.
    Metrics snapshots ride every control reply, so the cached metrics
    stay serviceable after the channel is gone.
    """

    def __init__(
        self,
        config: WorkerShardConfig,
        on_done: Callable[[Optional[float]], None],
        on_death: Callable[[ShardProcessChannel, BaseException], None],
    ) -> None:
        self._config = config
        self._on_done = on_done
        self._on_death = on_death
        self._channel: Optional[ShardProcessChannel] = None
        self._session_ids: List[str] = []
        self._instances: Dict[str, LTCInstance] = {}
        self._metrics = DispatcherMetrics()
        self._stopping = False
        #: Set while a restart/quarantine is rebuilding the channel, so a
        #: death of the *fresh* process mid-replay surfaces to the
        #: resolving caller instead of re-entering the failure path.
        self._resolving = False
        #: Worker-ordinal value the current incarnation started from
        #: (the replayed prefix length) — lets the parent reconstruct an
        #: absolute consumed ordinal for frameless (hard-kill) deaths.
        self._replay_base = 0

    # ------------------------------------------------------------ plumbing

    @property
    def shard_id(self) -> int:
        return self._config.shard_id

    @property
    def alive(self) -> bool:
        return self._channel is not None and not self._channel.broken

    def _dispatch_death(
        self, channel: ShardProcessChannel, error: BaseException
    ) -> None:
        if self._resolving or self._stopping:
            return
        self._on_death(channel, error)

    def _ensure_channel(self) -> ShardProcessChannel:
        if self._channel is None:
            self._channel = ShardProcessChannel(
                self._config, self._on_done, self._dispatch_death
            )
        return self._channel

    def _note_metrics(self, metrics: Optional[DispatcherMetrics]) -> None:
        if metrics is not None:
            self._metrics = metrics

    def _request(self, message: tuple):
        payload, metrics = self._ensure_channel().request(message)
        self._note_metrics(metrics)
        return payload

    def send_worker(self, worker: Worker) -> bool:
        return self._ensure_channel().send_worker(worker)

    # --------------------------------------------- LTCDispatcher surface

    def submit_instance(self, instance, solver=None, session_id=None) -> str:
        if isinstance(solver, Solver):
            raise ValueError(
                "prebuilt Solver objects cannot cross the process boundary "
                "(their mutable state is not replayable); pass a solver "
                "spec, or use the serial/thread executor"
            )
        payload, block = export_instance(instance)
        try:
            self._request(("open", session_id, payload, solver))
        finally:
            if block is not None:
                block.release()
        self._session_ids.append(session_id)
        self._instances[session_id] = instance
        return session_id

    def submit_tasks(self, session_id: str, tasks: Sequence[Task]) -> str:
        handle, block = export_tasks(list(tasks))
        try:
            return self._request(("tasks", session_id, handle))
        finally:
            if block is not None:
                block.release()

    def expire_tasks(
        self, session_id: str, task_ids: Sequence[int]
    ) -> List[int]:
        return self._request(("expire", session_id, tuple(task_ids)))

    @property
    def session_ids(self) -> List[str]:
        return list(self._session_ids)

    @property
    def all_complete(self) -> bool:
        if not self._session_ids:
            return True
        try:
            return bool(self._request(("all_complete",)))
        except BaseException:  # noqa: BLE001 - dead shard: not complete
            return False

    def instance_of(self, session_id: str) -> LTCInstance:
        try:
            return self._instances[session_id]
        except KeyError:
            from repro.service.dispatcher import UnknownSessionError

            known = ", ".join(self._session_ids) or "<none>"
            raise UnknownSessionError(
                f"unknown session {session_id!r}; open sessions: {known}"
            ) from None

    def poll(self):
        if not self._session_ids:
            return {}
        return self._request(("poll",))

    def routed_stream(self, session_id: str):
        return self._request(("routed_stream", session_id))

    @property
    def metrics(self) -> DispatcherMetrics:
        """A fresh snapshot when the worker is up; the cache otherwise."""
        if self.alive:
            try:
                self._request(("metrics",))
            except BaseException:  # noqa: BLE001 - death races the read
                pass
        return self._metrics

    def close(self, session_id: str):
        result = self._request(("close", session_id))
        if session_id in self._instances:
            del self._instances[session_id]
            self._session_ids.remove(session_id)
        if self._stopping and not self._session_ids:
            self._shutdown_channel()
        return result

    # ------------------------------------------------------------ recovery

    def death_ordinal(self, channel: ShardProcessChannel) -> int:
        """The absolute arrival ordinal a dead incarnation consumed through.

        A failure frame carries it exactly; a frameless death (hard
        kill) falls back to the replay base plus this incarnation's
        acks, which classifies any arrival the worker was processing
        when it was killed as *unconsumed* — it is re-sent live, never
        silently dropped.
        """
        ordinal = channel.consumed_ordinal
        if ordinal is not None:
            return ordinal
        return self._replay_base + channel.acked

    def respawn(
        self, entries: Sequence[tuple], consumed_ordinal: int
    ) -> int:
        """Replace a dead incarnation; rebuild it from the journal.

        The journal is split at ``consumed_ordinal`` (see
        :func:`split_journal_entries`): the prefix is replayed into the fresh
        process with faults bypassed, then the never-processed suffix is
        re-sent as ordinary live arrivals so their fault checks (and ack
        accounting) happen exactly as they would have in the dead
        incarnation.  Returns the number of arrivals replayed.  On a
        replay failure the fresh channel is abandoned and the error
        propagates — the caller (the supervisor loop) decides what
        happens next.
        """
        self._resolving = True
        try:
            if self._channel is not None:
                self._channel.abandon()
                self._channel = None
            prefix, resend = split_journal_entries(entries, consumed_ordinal)
            wire, blocks = build_wire_entries(prefix)
            channel = ShardProcessChannel(
                self._config, self._on_done, self._dispatch_death
            )
            try:
                payload, metrics = channel.request(("replay", wire))
            except BaseException:
                channel.abandon()
                raise
            finally:
                for block in blocks:
                    block.release()
            self._channel = channel
            self._replay_base = int(payload)
            self._note_metrics(metrics)
            # Rebuild the mirrors from the journal: opens minus closes,
            # in submission order.
            self._session_ids = []
            self._instances = {}
            for entry in entries:
                if entry[0] == "open":
                    self._session_ids.append(entry[1])
                    self._instances[entry[1]] = entry[2]
                elif entry[0] == "close":
                    self._session_ids.remove(entry[1])
                    del self._instances[entry[1]]
        finally:
            self._resolving = False
        # Live re-delivery happens outside the resolving window: a fault
        # firing on a re-sent arrival kills the fresh worker and is
        # dispatched as a new failure through the normal death path (it
        # blocks on the shard runtime lock until this recovery returns).
        # A send failing mid-loop means exactly that happened; the rest
        # of the suffix stays journaled for the next recovery's split.
        for worker in resend:
            if not channel.send_worker(worker):
                break
        return self._replay_base

    def adopt_entries(
        self,
        entries: Sequence[tuple],
        instances: Dict[str, LTCInstance],
    ) -> List[str]:
        """Adopt a quarantined shard's sessions (rebuilt by replay)."""
        wire, blocks = build_wire_entries(entries)
        try:
            adopted = self._request(("adopt", wire))
        finally:
            for block in blocks:
                block.release()
        for session_id in adopted:
            self._session_ids.append(session_id)
            self._instances[session_id] = instances[session_id]
        return list(adopted)

    def retire(self) -> None:
        """Drop the (dead) channel and clear the mirrors (quarantine)."""
        self._resolving = True
        try:
            if self._channel is not None:
                self._channel.abandon()
                self._channel = None
            self._session_ids = []
            self._instances = {}
        finally:
            self._resolving = False

    # ------------------------------------------------------------ shutdown

    def mark_stopping(self) -> None:
        """No new traffic will come; shut the channel once it empties."""
        self._stopping = True
        if not self._session_ids:
            self._shutdown_channel()

    def _shutdown_channel(self) -> None:
        if self._channel is None:
            return
        channel, self._channel = self._channel, None
        metrics = channel.stop()
        self._note_metrics(metrics)
