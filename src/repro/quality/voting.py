"""Weighted majority voting (Definition 4).

The platform determines the answer of a task as

    l_t = sign( sum_{w in W_t} weight_{w,t} * l_{w,t} ),  weight = 2*Acc(w,t) - 1

A tie (zero sum) is broken towards +1, which only matters for degenerate
inputs with no informative voters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True, slots=True)
class VoteOutcome:
    """Result of aggregating worker answers for one task."""

    decision: int
    score: float
    total_weight: float
    num_votes: int

    @property
    def confidence(self) -> float:
        """|score| / total_weight in [0, 1]; 0 when there are no voters."""
        if self.total_weight <= 0:
            return 0.0
        return abs(self.score) / self.total_weight


def weighted_majority_vote(
    answers: Sequence[int], accuracies: Sequence[float]
) -> VoteOutcome:
    """Aggregate binary answers using weights ``2 * Acc - 1``.

    Parameters
    ----------
    answers:
        Worker answers, each +1 or -1.
    accuracies:
        Predicted accuracy of each answering worker (same order/length).

    Returns
    -------
    VoteOutcome
        The sign decision, the raw weighted score, the total weight and the
        number of votes.
    """
    if len(answers) != len(accuracies):
        raise ValueError("answers and accuracies must have the same length")
    score = 0.0
    total_weight = 0.0
    for answer, accuracy in zip(answers, accuracies):
        if answer not in (-1, 1):
            raise ValueError(f"answers must be +1 or -1, got {answer}")
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
        weight = 2.0 * accuracy - 1.0
        score += weight * answer
        total_weight += abs(weight)
    decision = 1 if score >= 0 else -1
    return VoteOutcome(
        decision=decision,
        score=score,
        total_weight=total_weight,
        num_votes=len(answers),
    )
