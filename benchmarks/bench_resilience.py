"""Benchmark: what fault tolerance costs, and what recovery buys.

The recovery layer (``repro.service.recovery``) journals every arrival a
shard observes so a crashed shard can be rebuilt byte-identically by
replay.  Journaling is pure overhead on the fault-free path, and replay
is the price of a crash — this suite measures both on the seeded replay
workload from :mod:`repro.service.loadgen`:

* **journaling** (timed) — the identical stream through the sharded
  dispatcher under ``fail-fast`` (no journal: the zero-overhead
  baseline), under ``restart`` with journaling but no faults (the
  steady-state overhead), and under ``restart`` with three seeded
  mid-stream shard crashes (overhead plus recovery, end to end).  Every
  run must produce per-session arrangements byte-identical to the
  fail-fast baseline — crashes included — asserted via fingerprints.
* **crash_recovery** (observational) — one geo shard, a single seeded
  crash swept across journal lengths; reports the replay latency per
  journal length (from :attr:`~repro.service.RecoveryEvent.duration_seconds`)
  and the deterministic replayed-arrival counts.  Replay times are
  machine-dependent and excluded from the exactness fingerprint; the
  counts and arrangement digests are included.
* **quarantine** (observational) — a seeded crash under
  ``on_shard_failure="quarantine"`` with the serial executor: migrated
  session count, replayed arrivals and post-migration discard accounting
  (all deterministic serially, so all fingerprinted).

The suite registers with the shared registry in :mod:`_common` and is
normally run through ``benchmarks/bench_all.py``; standalone it writes
``BENCH_resilience.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience.py
    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent))

import _common
from _common import BenchSuite, SuiteResult

from repro.service import (
    FaultPlan,
    FaultSpec,
    RecoveryPolicy,
    ShardedDispatcher,
    ShardPlan,
)
from repro.service.loadgen import BurstWindow, ReplayConfig, build_workload

DEFAULT_OUTPUT = _common.REPO_ROOT / "BENCH_resilience.json"

GEO_SHARDS = [0, 1, 2, 3]  # the 2x2 grid the timed section shards over


def make_config(args) -> ReplayConfig:
    return ReplayConfig(
        seed=args.seed,
        city_cols=2,
        city_rows=2,
        city_spacing=1000.0,
        city_radius=50.0,
        campaigns_per_city=args.campaigns_per_city,
        tasks_per_campaign=args.tasks_per_campaign,
        num_workers=args.workers,
        worker_spread=1.4,
        diurnal_amplitude=0.5,
        bursts=(BurstWindow(0.4, 0.5, hot_city=3, intensity=2.5, city_bias=3.0),),
        error_rate=args.error_rate,
        capacity=args.capacity,
    )


def fingerprint(results) -> Dict[str, str]:
    return {
        session_id: _common.digest(result.arrangement.assignments)
        for session_id, result in results.items()
    }


def run_policy(workload, policy: Optional[RecoveryPolicy],
               faults: Optional[FaultPlan], queue_capacity: int) -> dict:
    plan = ShardPlan.for_region(workload.config.bounds, cols=2, rows=2)
    dispatcher = ShardedDispatcher(
        plan,
        default_solver="AAM",
        executor="serial",
        queue_capacity=queue_capacity,
        recovery=policy,
        faults=faults,
    )
    for campaign in workload.campaigns:
        dispatcher.submit_instance(campaign)
    start = time.perf_counter()
    for worker in workload.worker_stream():
        dispatcher.feed_worker(worker)
    dispatcher.drain()
    wall = time.perf_counter() - start
    results = dispatcher.close_all()
    metrics = dispatcher.metrics
    journal_entries = sum(s.journal_entries for s in dispatcher.shard_status())
    dispatcher.stop()
    return {
        "wall_s": wall,
        "offered": dispatcher.arrivals_offered,
        "restarts": metrics.restarts,
        "replayed_arrivals": metrics.replayed_arrivals,
        "journal_entries": journal_entries,
        "fingerprints": fingerprint(results),
    }


def bench_journaling(workload, repeats: int, queue_capacity: int,
                     crash_seed: int):
    """Timed: fail-fast vs journaled vs journaled-plus-recovery."""
    crash_plan = FaultPlan.seeded(
        seed=crash_seed, shard_ids=GEO_SHARDS,
        max_arrival=max(1, workload.config.num_workers // 20), crashes=3,
    )
    runners = {
        "fail_fast": lambda: run_policy(
            workload, None, None, queue_capacity),
        "journaled": lambda: run_policy(
            workload, RecoveryPolicy(on_shard_failure="restart"), None,
            queue_capacity),
        "journaled_3_crashes": lambda: run_policy(
            workload, RecoveryPolicy(on_shard_failure="restart"), crash_plan,
            queue_capacity),
    }
    times: Dict[str, List[float]] = {impl: [] for impl in runners}
    outputs: Dict[str, dict] = {}
    for _ in range(repeats):
        for impl, runner in runners.items():
            outputs[impl] = runner()
            times[impl].append(outputs[impl]["wall_s"])
    baseline = outputs["fail_fast"]
    for impl, output in outputs.items():
        if output["fingerprints"] != baseline["fingerprints"]:
            raise AssertionError(
                f"{impl} arrangements diverged from fail_fast — recovery "
                "broke exactness"
            )
    if outputs["journaled_3_crashes"]["restarts"] != 3:
        raise AssertionError(
            "expected all 3 seeded crashes to fire and recover, got "
            f"{outputs['journaled_3_crashes']['restarts']} restarts"
        )
    medians_s = {impl: statistics.median(times[impl]) for impl in runners}
    speedups = {
        f"{impl}_vs_fail_fast": _common.ratio(medians_s["fail_fast"], median)
        for impl, median in medians_s.items()
        if impl != "fail_fast"
    }
    cases = {}
    for impl, output in outputs.items():
        cases[impl] = {
            "wall_ms_median": round(medians_s[impl] * 1000, 3),
            "throughput_per_s": round(output["offered"] / medians_s[impl], 1),
            "restarts": output["restarts"],
            "replayed_arrivals": output["replayed_arrivals"],
            "journal_entries": output["journal_entries"],
            "byte_identical_to_fail_fast": True,
        }
    section = {
        "baseline": "fail_fast",
        "timings_ms": {
            impl: round(median * 1000, 3) for impl, median in medians_s.items()
        },
        "speedups": speedups,
        "cases": cases,
    }
    witness = {
        "offered": baseline["offered"],
        "fingerprints": baseline["fingerprints"],
        "crash_replayed_arrivals":
            outputs["journaled_3_crashes"]["replayed_arrivals"],
    }
    return section, witness


def bench_crash_recovery(workload, crash_arrivals, queue_capacity: int):
    """Observational: replay latency as a function of journal length.

    One geo shard covers the whole region, so the crash ordinal is the
    journal's worker count at the moment of failure.  Replay wall time is
    machine-dependent (reported, not fingerprinted); the replayed counts
    and resulting arrangements are deterministic (fingerprinted).
    """
    metrics = {}
    witness = {}
    for at_arrival in crash_arrivals:
        plan = ShardPlan.for_region(workload.config.bounds, cols=1, rows=1)
        faults = FaultPlan(
            faults=(FaultSpec(kind="crash", shard_id=0, at_arrival=at_arrival),)
        )
        dispatcher = ShardedDispatcher(
            plan,
            default_solver="AAM",
            executor="serial",
            queue_capacity=queue_capacity,
            recovery=RecoveryPolicy(on_shard_failure="restart"),
            faults=faults,
        )
        for campaign in workload.campaigns:
            dispatcher.submit_instance(campaign)
        for worker in workload.worker_stream():
            dispatcher.feed_worker(worker)
        dispatcher.drain()
        results = dispatcher.close_all()
        events = dispatcher.recovery_events
        if dispatcher.metrics.restarts != 1 or len(events) != 1:
            raise AssertionError(
                f"crash at arrival {at_arrival} did not fire exactly once "
                f"(restarts={dispatcher.metrics.restarts})"
            )
        event = events[0]
        dispatcher.stop()
        key = f"crash_at_{at_arrival}"
        metrics[key] = {
            "journal_arrivals_at_crash": event.replayed_arrivals,
            "replay_ms": round(event.duration_seconds * 1000, 3),
            "replay_us_per_arrival": round(
                event.duration_seconds * 1e6 / max(1, event.replayed_arrivals),
                2,
            ),
        }
        witness[key] = {
            "replayed_arrivals": event.replayed_arrivals,
            "fingerprints": fingerprint(results),
        }
    return {"metrics": metrics}, witness


def bench_quarantine(workload, at_arrival: int, queue_capacity: int):
    """Observational: serial quarantine — migration and shed accounting."""
    plan = ShardPlan.for_region(workload.config.bounds, cols=2, rows=2)
    faults = FaultPlan(
        faults=(FaultSpec(kind="crash", shard_id=0, at_arrival=at_arrival),)
    )
    dispatcher = ShardedDispatcher(
        plan,
        default_solver="AAM",
        executor="serial",
        queue_capacity=queue_capacity,
        recovery=RecoveryPolicy(on_shard_failure="quarantine"),
        faults=faults,
    )
    for campaign in workload.campaigns:
        dispatcher.submit_instance(campaign)
    for worker in workload.worker_stream():
        dispatcher.feed_worker(worker)
    dispatcher.drain()
    results = dispatcher.close_all()
    metrics = dispatcher.metrics
    entry = {
        "crash_at": at_arrival,
        "sessions_migrated": metrics.quarantined_sessions,
        "replayed_arrivals": metrics.replayed_arrivals,
        "arrivals_discarded": dispatcher.discarded_total,
        "restarts": metrics.restarts,
    }
    dispatcher.stop()
    witness = dict(entry, fingerprints=fingerprint(results))
    return {"metrics": {"serial_quarantine": entry}}, witness


def run_suite(args) -> SuiteResult:
    config_obj = make_config(args)
    workload = build_workload(config_obj)
    print(f"workload: {len(workload.campaigns)} campaigns over "
          f"{config_obj.num_cities} cities, {config_obj.num_workers} arrivals")

    journaling, journaling_witness = bench_journaling(
        workload, args.repeats, args.queue_capacity, args.crash_seed
    )
    for impl, entry in journaling["cases"].items():
        print(f"{impl:>20}  wall={entry['wall_ms_median']:>9.1f}ms  "
              f"throughput={entry['throughput_per_s']:>9.0f}/s  "
              f"restarts={entry['restarts']}  "
              f"journal={entry['journal_entries']}")

    crash, crash_witness = bench_crash_recovery(
        workload, args.crash_arrivals, args.queue_capacity
    )
    for key, entry in crash["metrics"].items():
        print(f"{key:>20}  replay={entry['replay_ms']:>8.2f}ms  "
              f"({entry['replay_us_per_arrival']:.1f}us/arrival over "
              f"{entry['journal_arrivals_at_crash']} arrivals)")

    quarantine, quarantine_witness = bench_quarantine(
        workload, args.quarantine_at, args.queue_capacity
    )
    entry = quarantine["metrics"]["serial_quarantine"]
    print(f"    serial_quarantine  migrated={entry['sessions_migrated']}  "
          f"replayed={entry['replayed_arrivals']}  "
          f"discarded={entry['arrivals_discarded']}")

    sections = {
        "journaling": journaling,
        "crash_recovery": crash,
        "quarantine": quarantine,
    }
    headline = {
        "journaled_vs_fail_fast":
            journaling["speedups"]["journaled_vs_fail_fast"],
        "journaled_3_crashes_vs_fail_fast":
            journaling["speedups"]["journaled_3_crashes_vs_fail_fast"],
    }
    config = {
        "cities": config_obj.num_cities,
        "campaigns": len(workload.campaigns),
        "campaigns_per_city": args.campaigns_per_city,
        "tasks_per_campaign": config_obj.tasks_per_campaign,
        "workers": config_obj.num_workers,
        "capacity": config_obj.capacity,
        "error_rate": config_obj.error_rate,
        "queue_capacity": args.queue_capacity,
        "crash_arrivals": list(args.crash_arrivals),
        "quarantine_at": args.quarantine_at,
        "crash_seed": args.crash_seed,
        "repeats": args.repeats,
        "seed": args.seed,
    }
    return SuiteResult(
        config=config,
        sections=sections,
        headline_speedups=headline,
        fingerprint_payload={
            "journaling": journaling_witness,
            "crash_recovery": crash_witness,
            "quarantine": quarantine_witness,
        },
    )


def add_arguments(parser) -> None:
    parser.add_argument("--workers", type=int, default=20_000,
                        help="length of the merged arrival stream")
    parser.add_argument("--campaigns-per-city", type=int, default=4)
    parser.add_argument("--tasks-per-campaign", type=int, default=12)
    parser.add_argument("--capacity", type=int, default=1)
    parser.add_argument("--error-rate", type=float, default=0.01)
    parser.add_argument("--queue-capacity", type=int, default=65536)
    parser.add_argument("--crash-arrivals", type=int, nargs="+",
                        default=[500, 2000, 8000],
                        help="journal lengths at which the single-shard "
                             "crash fires (crash_recovery section)")
    parser.add_argument("--quarantine-at", type=int, default=1000,
                        help="crash ordinal for the quarantine section")
    parser.add_argument("--crash-seed", type=int, default=1234,
                        help="seed for the 3-crash plan in the timed section")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=20180416)


SUITE = _common.register_suite(BenchSuite(
    name="resilience",
    description=(
        "Fault-tolerance pricing for the sharded dispatch runtime. "
        "'journaling' times the identical replay stream under fail-fast "
        "(no journal), journaled restart (steady-state overhead) and "
        "journaled restart with three seeded mid-stream shard crashes "
        "(overhead plus recovery), asserting per-session arrangements "
        "stay byte-identical throughout. 'crash_recovery' sweeps a "
        "single-shard crash across journal lengths and reports replay "
        "latency per journal length. 'quarantine' reports migration and "
        "discard accounting for a serial quarantine."
    ),
    default_output=DEFAULT_OUTPUT,
    add_arguments=add_arguments,
    run=run_suite,
    smoke_overrides={"workers": 4000, "campaigns_per_city": 2,
                     "tasks_per_campaign": 8,
                     "crash_arrivals": [200, 800], "quarantine_at": 300,
                     "repeats": 1},
))


if __name__ == "__main__":
    sys.exit(_common.suite_main(SUITE))
