"""Numpy-vectorized flow-kernel backend.

The arena's flat parallel arrays were designed so a vectorized backend could
slot in behind :func:`~repro.flow.kernel.solve_mcf` without touching
callers; this module is that backend.  The Dijkstra of each augmentation
keeps the reference backend's lazy binary heap for *selection* (pop order is
what the determinism contract pins down) but vectorizes the per-node arc
scans: for a popped node, the candidate distances of its whole adjacency
row — residual filter, reduced-cost arithmetic, clamping, strict-improvement
and goal-direction tests — are computed in a handful of numpy operations
over contiguous CSR slices.

Vectorization is **adaptive**.  Numpy pays a fixed per-operation overhead
that swamps the arithmetic on rows of a dozen arcs (the typical LTC batch
reduction is that sparse), so the backend keeps the python backend's *live*
rows and scalar loop for short rows and routes only long live rows
(:data:`VECTOR_MIN_ROW` arcs or more — dense reductions, high-degree hubs)
through the vector path.  Two rows are pinned to the scalar path outright:
the sink's (never scanned — its pop ends the search) and the source's
(scanned at distance 0, where nearly every arc improves, so a prefilter
cannot reject anything).  A graph where no other row can reach the
threshold is delegated wholesale to the pure-Python backend, making the
numpy backend a strict superset: at worst it *is* the python backend, and
in vectorizable regimes it is measurably faster
(``benchmarks/bench_flow_kernel.py`` reports both regimes honestly).  All
paths produce identical bits, so the cutover is purely a speed knob.

Bit-exactness with :class:`~repro.flow.backends.python_backend.PythonBackend`
is engineered, not hoped for:

* every float expression is evaluated in the same association order
  (``(base + cost) - pot[head]``, clamp to ``d``, ``dist - sink_dist``), so
  IEEE-754 gives identical bits;
* the vectorized row test is a *superset* prefilter — ``dist`` and the sink
  bound only decrease while a row is scanned, so anything the sequential
  loop would accept passes the vector test computed from the pre-row state
  — and survivors are re-checked in row order with exactly the sequential
  semantics (duplicate heads, the moving ``dist_sink`` bound, first-arc
  tie-breaking all included);
* heap entries are plain Python floats carrying the same values, so pop
  order (and the node-id tie fallback) is identical.

The numpy import is deferred to :func:`load_numpy` so that merely
registering the backend never requires numpy; environments without it fall
back to the pure-Python backend via ``resolve_backend("auto")``.
"""

from __future__ import annotations

import bisect
import heapq
import math
from typing import TYPE_CHECKING, List, Tuple

from repro.flow.backends.base import RELAX_EPS, KernelBackend
from repro.flow.backends.python_backend import PythonBackend

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.flow.kernel import ArcArena

_INF = math.inf

#: Rows shorter than this relax through the scalar loop; numpy's fixed
#: per-operation overhead (~8 small-array ops per row scan) only amortises
#: once a row carries a couple of hundred arcs — measured crossover on
#: CPython 3.11 / numpy 2.x is roughly 200-300 arcs per row, so this is a
#: deliberately conservative cutover.  A graph with *no* row that long is
#: handed to the pure-Python backend outright, skipping the numpy mirrors
#: entirely (they would be dead weight the whole solve).
VECTOR_MIN_ROW = 256

_SCALAR_FALLBACK = PythonBackend()


def load_numpy():
    """Import and return numpy (split out so tests can simulate absence)."""
    import numpy

    return numpy


class NumpyBackend(KernelBackend):
    """SSPA with adaptively numpy-vectorized arc scans over CSR rows."""

    name = "numpy"

    def is_available(self) -> bool:
        """Whether numpy can be imported."""
        try:
            load_numpy()
        except ImportError:
            return False
        return True

    def run(
        self,
        graph: "ArcArena",
        source: int,
        sink: int,
        target: float,
        potentials: List[float],
    ) -> Tuple[int, int, List[float]]:
        np = load_numpy()
        n = graph.num_nodes
        flow = graph.flow
        head = graph.head

        # Two rows can never profit from the vector path, whatever their
        # length: the sink's (never scanned — its pop ends the search) and
        # the source's (scanned at distance 0, where almost every arc is an
        # improvement, so the prefilter rejects nothing and the sequential
        # re-check repays the full scalar cost on top of the vector ops).
        adj = graph.packed_adjacency()
        if all(
            len(row) < VECTOR_MIN_ROW
            for node, row in enumerate(adj)
            if node != sink and node != source
        ):
            # Nothing to vectorize: every relaxation would take the scalar
            # path anyway, so skip the numpy mirrors and run the (bit-
            # identical) pure-Python loop directly.
            return _SCALAR_FALLBACK.run(graph, source, sink, target, potentials)
        res = [graph.cap[a] - flow[a] for a in range(len(flow))]

        # Scalar-path structure, identical to the python backend's: *live*
        # per-node rows holding only arcs with residual capacity, sorted by
        # arc id (stable insertion order), patched along each augmenting
        # path.  Only nodes whose live row is long take the vector path, so
        # e.g. a task node carrying hundreds of closed residual twins still
        # relaxes through a handful of scalar iterations.
        rows: List[List[Tuple[int, int, float]]] = [
            [entry for entry in row if res[entry[0]] > 0] for row in adj
        ]
        insort = bisect.insort

        # Vector-path structures: a CSR snapshot re-ordered into contiguous
        # per-node slices, in the same stable arc-insertion order the
        # scalar rows iterate (the tie-breaking contract requires it), plus
        # numpy mirrors of the per-arc/per-node state.  The mirrors are
        # kept in lockstep with their scalar twins: residuals change only
        # along augmenting paths, potentials only over each search's
        # touched region, distances only on relaxation improvements.
        ptr, arcs_list = graph.csr()
        arcs_cs = np.asarray(arcs_list, dtype=np.intp)
        heads_cs = np.asarray(graph.head, dtype=np.intp)[arcs_cs]
        costs_cs = np.asarray(graph.cost, dtype=np.float64)[arcs_cs]
        res_np = np.asarray(res, dtype=np.int64)
        pot = potentials
        pot_np = np.asarray(pot, dtype=np.float64)
        dist_np = np.empty(n, dtype=np.float64)

        heappush, heappop = heapq.heappush, heapq.heappop

        routed = 0
        augmentations = 0

        while routed < target:
            # Dijkstra over reduced costs, early exit at the sink.  Same
            # lazy heap and pop order as the python backend; only long-row
            # relaxations are vectorized.
            dist = [_INF] * n
            dist_np.fill(_INF)
            pred = [-1] * n
            dist[source] = 0.0
            dist_np[source] = 0.0
            dist_sink = _INF
            done = bytearray(n)
            touched: List[int] = []
            heap: List[Tuple[float, int]] = [(0.0, source)]
            while heap:
                d, node = heappop(heap)
                if done[node]:
                    continue
                if node == sink:
                    break
                done[node] = 1
                row = rows[node]
                if node == source or len(row) < VECTOR_MIN_ROW:
                    # Scalar path: the reference backend's loop verbatim,
                    # over the same live rows.
                    base = d + pot[node]
                    for a, h, c in row:
                        if done[h]:
                            continue
                        candidate = base + c - pot[h]
                        if candidate < d:
                            candidate = d
                        d_head = dist[h]
                        if candidate < d_head - RELAX_EPS and candidate < dist_sink:
                            if d_head == _INF:
                                touched.append(h)
                            dist[h] = candidate
                            dist_np[h] = candidate
                            pred[h] = a
                            if h == sink:
                                dist_sink = candidate
                            heappush(heap, (candidate, h))
                    continue

                # Vector path: whole-row candidates in a few numpy ops.
                # No done-head guard is needed here: a finalized head h has
                # dist[h] <= d <= candidate (the clamp makes candidates
                # monotone), so the strict improvement test rejects it.
                lo, hi = ptr[node], ptr[node + 1]
                row_heads = heads_cs[lo:hi]
                cand = (d + pot[node] + costs_cs[lo:hi]) - pot_np[row_heads]
                np.maximum(cand, d, out=cand)
                ok = cand < dist_np[row_heads] - RELAX_EPS
                ok &= cand < dist_sink
                ok &= res_np[arcs_cs[lo:hi]] > 0
                improvements = np.flatnonzero(ok)
                if not improvements.size:
                    continue
                # The vector test used the pre-row dist/dist_sink, which
                # only shrink while a row is scanned — so it passed a
                # superset of what the sequential loop accepts.  Re-check
                # the few survivors in row order to reproduce the
                # sequential semantics exactly (duplicate heads, the
                # moving sink bound).
                for j in improvements.tolist():
                    candidate = float(cand[j])
                    h = int(row_heads[j])
                    d_head = dist[h]
                    if candidate < d_head - RELAX_EPS and candidate < dist_sink:
                        if d_head == _INF:
                            touched.append(h)
                        dist[h] = candidate
                        dist_np[h] = candidate
                        pred[h] = int(arcs_cs[lo + j])
                        if h == sink:
                            dist_sink = candidate
                        heappush(heap, (candidate, h))

            sink_dist = dist_sink
            if sink_dist == _INF:
                break

            # Warm the potentials for the next augmentation — the python
            # backend's O(region) relative update, mirrored into pot_np.
            for v in touched:
                d_v = dist[v]
                if d_v < sink_dist:
                    new_pot = pot[v] + (d_v - sink_dist)
                    pot[v] = new_pot
                    pot_np[v] = new_pot

            # Bottleneck along sink -> source, then push.  Paths are short
            # (three hops in the LTC reduction), so scalar walks are fine.
            bottleneck = target - routed
            v = sink
            while v != source:
                a = pred[v]
                r = res[a]
                if r < bottleneck:
                    bottleneck = r
                v = head[a ^ 1]
            bottleneck = int(bottleneck)
            if bottleneck <= 0:
                break
            cost = graph.cost
            v = sink
            while v != source:
                a = pred[v]
                twin = a ^ 1
                flow[a] += bottleneck
                flow[twin] -= bottleneck
                res[a] -= bottleneck
                res_np[a] -= bottleneck
                if res[a] == 0:
                    rows[head[twin]].remove((a, head[a], cost[a]))
                if res[twin] == 0:
                    insort(rows[head[a]], (twin, head[twin], cost[twin]))
                res[twin] += bottleneck
                res_np[twin] += bottleneck
                v = head[twin]

            routed += bottleneck
            augmentations += 1

        return routed, augmentations, pot
