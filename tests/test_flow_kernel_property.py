"""Differential and brute-force property tests for the flow kernel.

Random LTC-shaped bipartite networks (source -> workers -> tasks -> sink,
negative real-valued worker->task costs) are solved three ways:

* the array kernel (:func:`repro.flow.kernel.solve_mcf`) with the O(E)
  DAG potential pass,
* the retained pre-refactor object-graph SSPA
  (:mod:`repro.flow.reference`), and
* on tiny instances, brute-force enumeration of every feasible assignment
  set.

Costs are drawn from a PRNG (full-precision uniform floats), so equal-cost
optima — where implementations may legitimately diverge — have measure
zero and per-pair flows must agree exactly.
"""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.flow.backends import available_backends
from repro.flow.kernel import ArcArena, dag_potentials, solve_mcf
from repro.flow.reference import LegacyFlowNetwork, legacy_successive_shortest_paths
from repro.flow.validate import validate_arena_flow


def random_ltc_shape(seed, num_workers, num_tasks, capacity, max_need, density):
    """One LTC-shaped reduction as plain data: pairs + capacities."""
    rng = random.Random(seed)
    pairs = {}
    for w in range(num_workers):
        for t in range(num_tasks):
            if rng.random() < density:
                pairs[(w, t)] = rng.uniform(0.1, 1.0)  # Acc* range
    needs = [rng.randint(1, max_need) for _ in range(num_tasks)]
    caps = [rng.randint(1, capacity) for _ in range(num_workers)]
    return pairs, caps, needs


def solve_with_kernel(pairs, caps, needs, backend=None):
    arena = ArcArena(2)  # 0 = source, 1 = sink
    worker_nodes = [arena.add_node() for _ in caps]
    task_nodes = [arena.add_node() for _ in needs]
    for node, cap in zip(worker_nodes, caps):
        arena.add_arc(0, node, cap, 0.0)
    pair_arcs = {}
    for (w, t), value in sorted(pairs.items()):
        pair_arcs[(w, t)] = arena.add_arc(worker_nodes[w], task_nodes[t], 1, -value)
    for node, need in zip(task_nodes, needs):
        arena.add_arc(node, 1, need, 0.0)
    topo = [0] + worker_nodes + task_nodes + [1]
    result = solve_mcf(
        arena, 0, 1, potentials=dag_potentials(arena, 0, topo), backend=backend
    )
    flows = {pair: arena.flow[arc] for pair, arc in pair_arcs.items()}
    violations = validate_arena_flow(arena, 0, 1, expected_value=result.flow_value)
    return result, flows, violations


def solve_with_reference(pairs, caps, needs):
    network = LegacyFlowNetwork()
    for w, cap in enumerate(caps):
        network.add_edge("s", ("w", w), cap, 0.0)
    pair_edges = {}
    for (w, t), value in sorted(pairs.items()):
        pair_edges[(w, t)] = network.add_edge(("w", w), ("t", t), 1, -value)
    for t, need in enumerate(needs):
        network.add_edge(("t", t), "d", need, 0.0)
    value, cost, augmentations = legacy_successive_shortest_paths(network, "s", "d")
    flows = {pair: edge.flow for pair, edge in pair_edges.items()}
    return value, cost, augmentations, flows


class TestKernelMatchesReferenceSSPA:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        num_workers=st.integers(1, 10),
        num_tasks=st.integers(1, 8),
        capacity=st.integers(1, 4),
        max_need=st.integers(1, 3),
    )
    def test_same_flow_cost_and_per_pair_flows(
        self, seed, num_workers, num_tasks, capacity, max_need
    ):
        pairs, caps, needs = random_ltc_shape(
            seed, num_workers, num_tasks, capacity, max_need, density=0.5
        )
        result, kernel_flows, violations = solve_with_kernel(pairs, caps, needs)
        ref_value, ref_cost, ref_augmentations, ref_flows = solve_with_reference(
            pairs, caps, needs
        )
        assert violations == []
        assert result.flow_value == ref_value
        assert result.total_cost == pytest.approx(ref_cost, abs=1e-9)
        assert kernel_flows == ref_flows
        assert result.augmentations == ref_augmentations

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("seed", range(6))
    def test_dense_instances(self, seed, backend):
        if backend == "numpy" and "numpy" not in available_backends():
            pytest.skip("numpy not installed")
        pairs, caps, needs = random_ltc_shape(
            seed, num_workers=12, num_tasks=9, capacity=4, max_need=3, density=1.0
        )
        result, kernel_flows, violations = solve_with_kernel(
            pairs, caps, needs, backend=backend
        )
        ref_value, ref_cost, _, ref_flows = solve_with_reference(pairs, caps, needs)
        assert violations == []
        assert result.flow_value == ref_value
        assert result.total_cost == pytest.approx(ref_cost, abs=1e-9)
        assert kernel_flows == ref_flows


class TestBackendsMatchEachOtherAndReference:
    """Three-way differential: numpy backend vs python backend vs oracle."""

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        num_workers=st.integers(1, 10),
        num_tasks=st.integers(1, 8),
        capacity=st.integers(1, 4),
        max_need=st.integers(1, 3),
    )
    def test_numpy_backend_is_bit_exact(
        self, seed, num_workers, num_tasks, capacity, max_need
    ):
        if "numpy" not in available_backends():
            pytest.skip("numpy not installed")
        pairs, caps, needs = random_ltc_shape(
            seed, num_workers, num_tasks, capacity, max_need, density=0.5
        )
        py_result, py_flows, py_violations = solve_with_kernel(
            pairs, caps, needs, backend="python"
        )
        np_result, np_flows, np_violations = solve_with_kernel(
            pairs, caps, needs, backend="numpy"
        )
        ref_value, ref_cost, _, ref_flows = solve_with_reference(pairs, caps, needs)
        assert py_violations == [] and np_violations == []
        # Bit-exact across backends: flows, costs, augmentation counts and
        # final potentials all agree exactly (no approx comparisons).
        assert np_flows == py_flows
        assert np_result.flow_value == py_result.flow_value
        assert np_result.total_cost == py_result.total_cost
        assert np_result.augmentations == py_result.augmentations
        assert np_result.potentials == py_result.potentials
        # And both agree with the pre-refactor oracle.
        assert py_result.flow_value == ref_value
        assert py_flows == ref_flows
        assert py_result.total_cost == pytest.approx(ref_cost, abs=1e-9)


def brute_force_best(pairs, caps, needs):
    """Max-cardinality, then max-value assignment set by full enumeration."""
    pair_list = sorted(pairs)
    best_size, best_value = 0, 0.0
    for bits in itertools.product([0, 1], repeat=len(pair_list)):
        load = [0] * len(caps)
        fill = [0] * len(needs)
        value = 0.0
        ok = True
        for chosen, (w, t) in zip(bits, pair_list):
            if not chosen:
                continue
            load[w] += 1
            fill[t] += 1
            if load[w] > caps[w] or fill[t] > needs[t]:
                ok = False
                break
            value += pairs[(w, t)]
        if not ok:
            continue
        size = sum(bits)
        if size > best_size or (size == best_size and value > best_value):
            best_size, best_value = size, value
    return best_size, best_value


class TestKernelMatchesBruteForce:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_min_cost_max_flow_equals_enumerated_optimum(self, seed):
        pairs, caps, needs = random_ltc_shape(
            seed, num_workers=3, num_tasks=3, capacity=2, max_need=2, density=0.7
        )
        result, _flows, violations = solve_with_kernel(pairs, caps, needs)
        best_size, best_value = brute_force_best(pairs, caps, needs)
        assert violations == []
        assert result.flow_value == best_size
        assert result.total_cost == pytest.approx(-best_value, abs=1e-9)
