"""Tests for repro.core.instance."""

import math

import pytest

from repro.core.accuracy import ConstantAccuracy
from repro.core.exceptions import InfeasibleInstanceError
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point


def build_instance(num_tasks=2, num_workers=4, accuracy=0.9, capacity=2,
                   error_rate=0.2):
    tasks = [Task(task_id=i, location=Point(i, 0)) for i in range(num_tasks)]
    workers = [
        Worker(index=i, location=Point(0, i), accuracy=0.9, capacity=capacity)
        for i in range(1, num_workers + 1)
    ]
    return LTCInstance(
        tasks=tasks,
        workers=workers,
        error_rate=error_rate,
        accuracy_model=ConstantAccuracy(accuracy),
    )


class TestValidation:
    def test_requires_tasks_and_workers(self):
        tasks = [Task.at(0, 0, 0)]
        workers = [Worker.at(1, 0, 0, accuracy=0.9, capacity=1)]
        with pytest.raises(ValueError):
            LTCInstance(tasks=[], workers=workers, error_rate=0.1)
        with pytest.raises(ValueError):
            LTCInstance(tasks=tasks, workers=[], error_rate=0.1)

    def test_rejects_bad_error_rate(self):
        tasks = [Task.at(0, 0, 0)]
        workers = [Worker.at(1, 0, 0, accuracy=0.9, capacity=1)]
        with pytest.raises(ValueError):
            LTCInstance(tasks=tasks, workers=workers, error_rate=1.0)

    def test_rejects_duplicate_task_ids(self):
        tasks = [Task.at(0, 0, 0), Task.at(0, 1, 0)]
        workers = [Worker.at(1, 0, 0, accuracy=0.9, capacity=1)]
        with pytest.raises(ValueError):
            LTCInstance(tasks=tasks, workers=workers, error_rate=0.1)

    def test_rejects_non_consecutive_worker_indices(self):
        tasks = [Task.at(0, 0, 0)]
        workers = [Worker.at(2, 0, 0, accuracy=0.9, capacity=1)]
        with pytest.raises(ValueError):
            LTCInstance(tasks=tasks, workers=workers, error_rate=0.1)

    def test_rejects_out_of_order_workers(self):
        tasks = [Task.at(0, 0, 0)]
        workers = [
            Worker.at(2, 0, 0, accuracy=0.9, capacity=1),
            Worker.at(1, 0, 0, accuracy=0.9, capacity=1),
        ]
        with pytest.raises(ValueError):
            LTCInstance(tasks=tasks, workers=workers, error_rate=0.1)


class TestAccessors:
    def test_delta_matches_quality_threshold(self):
        instance = build_instance(error_rate=0.2)
        assert instance.delta == pytest.approx(2 * math.log(5))

    def test_capacity_is_minimum_over_workers(self):
        tasks = [Task.at(0, 0, 0)]
        workers = [
            Worker.at(1, 0, 0, accuracy=0.9, capacity=3),
            Worker.at(2, 0, 0, accuracy=0.9, capacity=5),
        ]
        instance = LTCInstance(tasks=tasks, workers=workers, error_rate=0.1)
        assert instance.capacity == 3

    def test_lookup_by_id_and_index(self):
        instance = build_instance()
        assert instance.task(1).task_id == 1
        assert instance.worker(2).index == 2
        assert set(instance.workers_by_index()) == {1, 2, 3, 4}

    def test_counts_and_iteration(self):
        instance = build_instance(num_tasks=3, num_workers=5)
        assert instance.num_tasks == 3
        assert instance.num_workers == 5
        assert [w.index for w in instance.iter_workers()] == [1, 2, 3, 4, 5]

    def test_acc_and_acc_star(self):
        instance = build_instance(accuracy=0.9)
        worker = instance.worker(1)
        task = instance.task(0)
        assert instance.acc(worker, task) == pytest.approx(0.9)
        assert instance.acc_star(worker, task) == pytest.approx(0.64)

    def test_describe_contains_headline_fields(self):
        described = build_instance().describe()
        assert described["num_tasks"] == 2
        assert described["num_workers"] == 4
        assert "delta" in described


class TestUtilities:
    def test_new_arrangement_is_bound_to_instance(self):
        instance = build_instance()
        arrangement = instance.new_arrangement()
        assert arrangement.delta == pytest.approx(instance.delta)
        arrangement.assign(instance.worker(1), instance.task(0))
        assert len(instance.new_arrangement()) == 0

    def test_subset_of_workers(self):
        instance = build_instance(num_workers=4)
        subset = instance.subset_of_workers(2)
        assert subset.num_workers == 2
        assert subset.num_tasks == instance.num_tasks
        with pytest.raises(ValueError):
            instance.subset_of_workers(0)
        with pytest.raises(ValueError):
            instance.subset_of_workers(99)

    def test_total_available_acc_star(self):
        instance = build_instance(num_tasks=2, num_workers=3, accuracy=0.9, capacity=2)
        assert instance.total_available_acc_star() == pytest.approx(3 * 2 * 0.64)

    def test_check_feasibility_passes_for_feasible_instance(self):
        instance = build_instance(num_workers=8, error_rate=0.2)
        instance.check_feasibility()

    def test_check_feasibility_raises_for_starved_instance(self):
        instance = build_instance(num_tasks=4, num_workers=1, capacity=1, error_rate=0.05)
        with pytest.raises(InfeasibleInstanceError):
            instance.check_feasibility()
