"""Tests for repro.core.candidates (eligibility / "nearby" tasks)."""

import math

import pytest

from repro.core.accuracy import ConstantAccuracy, SigmoidDistanceAccuracy
from repro.core.candidates import CandidateFinder, sigmoid_eligibility_radius
from repro.core.instance import LTCInstance
from repro.core.quality_threshold import MIN_WORKER_ACCURACY
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point


def spatial_instance(task_xs, worker_accuracy=0.9, d_max=30.0):
    tasks = [Task(task_id=i, location=Point(x, 0.0)) for i, x in enumerate(task_xs)]
    workers = [Worker(index=1, location=Point(0.0, 0.0), accuracy=worker_accuracy, capacity=4)]
    return LTCInstance(
        tasks=tasks,
        workers=workers,
        error_rate=0.2,
        accuracy_model=SigmoidDistanceAccuracy(d_max=d_max),
    )


class TestEligibilityRadius:
    def test_matches_closed_form(self):
        radius = sigmoid_eligibility_radius(0.9, d_max=30.0, min_accuracy=0.66)
        # At this distance the sigmoid accuracy equals exactly 0.66.
        model = SigmoidDistanceAccuracy(d_max=30.0)
        worker = Worker(index=1, location=Point(0, 0), accuracy=0.9, capacity=1)
        task = Task(task_id=0, location=Point(radius, 0))
        assert model.accuracy(worker, task) == pytest.approx(0.66, abs=1e-9)

    def test_negative_when_worker_cannot_reach_threshold(self):
        assert sigmoid_eligibility_radius(0.66, d_max=30.0, min_accuracy=0.66) < 0

    def test_infinite_when_threshold_is_zero(self):
        assert math.isinf(sigmoid_eligibility_radius(0.9, 30.0, 0.0))


class TestCandidateFinder:
    def test_respects_accuracy_threshold(self):
        instance = spatial_instance([0.0, 10.0, 28.0, 60.0])
        finder = CandidateFinder(instance)
        worker = instance.worker(1)
        candidate_ids = [task.task_id for task in finder.candidates(worker)]
        # Tasks at distance 0, 10 and 28 are within the eligibility radius
        # (~28.6 for accuracy 0.9); the task at 60 is not.
        assert candidate_ids == [0, 1, 2]

    def test_is_eligible_pairwise(self):
        instance = spatial_instance([0.0, 60.0])
        finder = CandidateFinder(instance)
        worker = instance.worker(1)
        assert finder.is_eligible(worker, instance.task(0))
        assert not finder.is_eligible(worker, instance.task(1))

    def test_spatial_index_and_scan_agree(self, small_synthetic_instance):
        instance = small_synthetic_instance
        indexed = CandidateFinder(instance, use_spatial_index=True)
        scanned = CandidateFinder(instance, use_spatial_index=False)
        for worker in instance.workers[:40]:
            ids_indexed = [t.task_id for t in indexed.candidates(worker)]
            ids_scanned = [t.task_id for t in scanned.candidates(worker)]
            assert ids_indexed == ids_scanned

    def test_non_sigmoid_model_scans_all_tasks(self):
        tasks = [Task.at(0, 0, 0), Task.at(1, 500, 500)]
        workers = [Worker.at(1, 0, 0, accuracy=0.9, capacity=1)]
        instance = LTCInstance(
            tasks=tasks, workers=workers, error_rate=0.2,
            accuracy_model=ConstantAccuracy(0.9),
        )
        finder = CandidateFinder(instance)
        assert len(finder.candidates(instance.worker(1))) == 2

    def test_custom_threshold_overrides_instance(self):
        instance = spatial_instance([0.0, 27.0])
        permissive = CandidateFinder(instance, min_accuracy=0.5)
        strict = CandidateFinder(instance, min_accuracy=0.89)
        worker = instance.worker(1)
        assert len(permissive.candidates(worker)) == 2
        assert len(strict.candidates(worker)) == 1

    def test_min_accuracy_property(self):
        instance = spatial_instance([0.0])
        assert CandidateFinder(instance).min_accuracy == pytest.approx(
            instance.min_assignable_accuracy
        )

    def test_candidate_count_per_task(self):
        instance = spatial_instance([0.0, 60.0])
        finder = CandidateFinder(instance)
        counts = finder.candidate_count_per_task()
        assert counts == {0: 1, 1: 0}

    def test_zero_min_accuracy_matches_every_task(self):
        # Regression: min_accuracy <= 0 gives an infinite eligibility
        # radius, which used to overflow the grid's cell arithmetic
        # (int(inf // cell_size)).  The scan must now cover the whole grid.
        instance = spatial_instance([0.0, 60.0, 900.0])
        finder = CandidateFinder(instance, min_accuracy=0.0)
        worker = instance.worker(1)
        assert [t.task_id for t in finder.candidates(worker)] == [0, 1, 2]
        assert finder.has_candidates(worker)


class TestAllowedIdsSemantics:
    """``allowed_ids=None`` means unrestricted; an empty set means "nothing".

    Regression guard: the two spellings are deliberately not interchangeable,
    and an empty restriction must short-circuit rather than silently scan
    the pool and filter everything out.
    """

    def test_none_is_unrestricted(self):
        instance = spatial_instance([0.0, 10.0, 28.0])
        finder = CandidateFinder(instance)
        worker = instance.worker(1)
        unrestricted = [t.task_id for t in finder.iter_candidates(worker, None)]
        assert unrestricted == [t.task_id for t in finder.candidates(worker)]
        assert unrestricted == [0, 1, 2]

    def test_empty_set_yields_nothing(self):
        instance = spatial_instance([0.0, 10.0, 28.0])
        finder = CandidateFinder(instance)
        worker = instance.worker(1)
        assert list(finder.iter_candidates(worker, set())) == []
        assert list(finder.iter_candidates(worker, frozenset())) == []
        assert list(finder.eligible_pairs(instance.workers, set())) == []

    def test_empty_set_differs_from_none_for_eligible_pairs(self):
        instance = spatial_instance([0.0, 10.0])
        finder = CandidateFinder(instance)
        assert list(finder.eligible_pairs(instance.workers, None)) != []

    def test_subset_restricts_before_accuracy_check(self):
        instance = spatial_instance([0.0, 10.0, 28.0])
        finder = CandidateFinder(instance)
        worker = instance.worker(1)
        assert [t.task_id for t in finder.iter_candidates(worker, {2, 1})] == [1, 2]
        # Ids outside the instance are simply never yielded.
        assert [t.task_id for t in finder.iter_candidates(worker, {99})] == []


class TestHasCandidates:
    def test_agrees_with_the_full_candidate_list(self, small_synthetic_instance):
        from repro.core.candidates import CandidateFinder

        indexed = CandidateFinder(small_synthetic_instance, use_spatial_index=True)
        scanned = CandidateFinder(small_synthetic_instance, use_spatial_index=False)
        for worker in small_synthetic_instance.workers[:50]:
            expected = bool(indexed.candidates(worker))
            assert indexed.has_candidates(worker) == expected
            assert scanned.has_candidates(worker) == expected
