"""Running experiments end-to-end.

:func:`run_experiment` resolves an experiment id, builds its runner (applying
any ablation-specific solver overrides) and returns the populated
:class:`~repro.simulation.results.ResultTable`.  The CLI and the benchmark
files are thin wrappers over this function.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.algorithms.mcf_ltc import MCFLTCSolver
from repro.experiments.configs import ExperimentDefinition, get_experiment
from repro.simulation.results import ResultTable
from repro.simulation.runner import ExperimentRunner


def _apply_ablation_overrides(
    definition: ExperimentDefinition, runner: ExperimentRunner
) -> ExperimentRunner:
    """Install per-experiment solver overrides (currently batch ablation)."""
    if definition.experiment_id != "ablation_batch_size":
        return runner

    # The batch ablation runs MCF-LTC once per sweep value with the batch
    # multiplier equal to that value.  The runner calls the factory per
    # record, and the sweep value is not passed to factories, so we install a
    # stateful override fed by a wrapped instance factory.
    current_multiplier = {"value": 1.0}
    original_factory = runner.instance_factory

    def tracking_factory(sweep_value: float, repetition: int):
        current_multiplier["value"] = float(sweep_value)
        return original_factory(sweep_value, repetition)

    runner.instance_factory = tracking_factory
    runner.solver_overrides = {
        "MCF-LTC": lambda: MCFLTCSolver(batch_multiplier=current_multiplier["value"]),
    }
    return runner


def run_experiment(
    experiment_id: str,
    scale: Optional[float] = None,
    repetitions: Optional[int] = None,
    algorithms: Optional[Sequence[str]] = None,
    sweep_values: Optional[Sequence[float]] = None,
    track_memory: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> ResultTable:
    """Run one of the paper's experiments and return its result table.

    Parameters mirror :meth:`ExperimentDefinition.build_runner`; leaving them
    ``None`` uses the definition's scaled-down defaults.
    """
    definition = get_experiment(experiment_id)
    runner = definition.build_runner(
        scale=scale,
        repetitions=repetitions,
        algorithms=algorithms,
        sweep_values=sweep_values,
        track_memory=track_memory,
        progress=progress,
    )
    runner = _apply_ablation_overrides(definition, runner)
    return runner.run()
