"""Tests for the experiment runner."""

import pytest

from repro.algorithms.mcf_ltc import MCFLTCSolver
from repro.core.accuracy import ConstantAccuracy
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point
from repro.simulation.runner import ExperimentRunner


def toy_factory(sweep_value, repetition):
    """Instance whose size depends on the sweep value (number of tasks)."""
    num_tasks = int(sweep_value)
    tasks = [Task(task_id=i, location=Point(i, 0)) for i in range(num_tasks)]
    workers = [
        Worker(index=i, location=Point(0, i), accuracy=0.9, capacity=2)
        for i in range(1, 20)
    ]
    return LTCInstance(tasks=tasks, workers=workers, error_rate=0.2,
                       accuracy_model=ConstantAccuracy(0.9))


class TestExperimentRunner:
    def test_produces_one_record_per_cell(self):
        runner = ExperimentRunner(
            experiment_id="toy",
            sweep_parameter="|T|",
            sweep_values=[1, 2],
            instance_factory=toy_factory,
            algorithms=["LAF", "AAM"],
            repetitions=2,
            track_memory=False,
        )
        table = runner.run()
        assert len(table) == 2 * 2 * 2
        assert set(table.algorithms()) == {"LAF", "AAM"}
        assert table.sweep_values() == [1.0, 2.0]
        assert table.completion_rate() == 1.0

    def test_progress_callback_invoked(self):
        messages = []
        runner = ExperimentRunner(
            experiment_id="toy",
            sweep_parameter="|T|",
            sweep_values=[1],
            instance_factory=toy_factory,
            algorithms=["LAF"],
            repetitions=1,
            track_memory=False,
            progress=messages.append,
        )
        runner.run()
        assert len(messages) == 1
        assert "toy" in messages[0] and "LAF" in messages[0]

    def test_solver_overrides_take_precedence(self):
        override_calls = []

        def make_override():
            override_calls.append(1)
            return MCFLTCSolver(batch_multiplier=2.0)

        runner = ExperimentRunner(
            experiment_id="toy",
            sweep_parameter="|T|",
            sweep_values=[1],
            instance_factory=toy_factory,
            algorithms=["MCF-LTC"],
            repetitions=1,
            track_memory=False,
            solver_overrides={"MCF-LTC": make_override},
        )
        table = runner.run()
        assert override_calls == [1]
        assert len(table) == 1

    def test_latency_scales_with_sweep_value(self):
        runner = ExperimentRunner(
            experiment_id="toy",
            sweep_parameter="|T|",
            sweep_values=[1, 4],
            instance_factory=toy_factory,
            algorithms=["LAF"],
            repetitions=1,
            track_memory=False,
        )
        series = runner.run().mean_series("max_latency")["LAF"]
        assert series[0][1] < series[1][1]
