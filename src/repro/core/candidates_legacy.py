"""The pre-engine candidate scan, retained verbatim as a testing oracle.

:class:`LegacyCandidateFinder` is the object-level ``CandidateFinder``
exactly as it existed before the struct-of-arrays candidate engine
(``repro.core.candidate_engine``) replaced its internals: a
:class:`~repro.geo.grid_index.GridIndex` (dict-of-lists cells) queried
per worker, python ``Task`` objects throughout, and one scalar
``math.exp`` per (worker, task) accuracy evaluation.  It plays the same
role for the candidate layer that :mod:`repro.flow.reference` plays for
the flow kernel:

* the hypothesis differential suite checks both engine backends against
  it pair by pair, and
* ``benchmarks/bench_candidates.py`` uses it as the honest "before"
  baseline for the engine speedup numbers.

The module also keeps faithful replicas of the pre-engine LAF and AAM
``observe`` loops (:func:`legacy_laf_arrangement`,
:func:`legacy_aam_arrangement`): the solvers now drive the engine's bulk
``topk`` path, and these replicas pin down that the rewrite changed no
arrangement byte.  Do not "improve" anything in this file — its value is
that it does not change.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.accuracy import AccuracyModel, SigmoidDistanceAccuracy
from repro.core.arrangement import Arrangement
from repro.core.candidates import sigmoid_eligibility_radius
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.bbox import BoundingBox
from repro.geo.grid_index import GridIndex
from repro.structures.topk import TopKHeap


class LegacyCandidateFinder:
    """The pre-refactor ``CandidateFinder``, preserved as a semantics oracle.

    Same constructor and same public surface as the facade it predates;
    see the module docstring for why it is kept.
    """

    def __init__(
        self,
        instance: LTCInstance,
        min_accuracy: Optional[float] = None,
        use_spatial_index: bool = True,
    ) -> None:
        self._instance = instance
        self._min_accuracy = (
            instance.min_assignable_accuracy if min_accuracy is None else min_accuracy
        )
        self._model: AccuracyModel = instance.accuracy_model
        self._grid: Optional[GridIndex[int]] = None
        self._tasks_by_id: Dict[int, Task] = {
            task.task_id: task for task in instance.tasks
        }
        if use_spatial_index and isinstance(self._model, SigmoidDistanceAccuracy):
            self._grid = self._build_grid(instance.tasks, self._model.d_max)

    @staticmethod
    def _build_grid(tasks: Sequence[Task], d_max: float) -> GridIndex[int]:
        bounds = BoundingBox.from_points(task.location for task in tasks)
        bounds = bounds.expanded(max(d_max, 1.0))
        cell = max(d_max, 1.0)
        grid: GridIndex[int] = GridIndex(bounds, cell)
        for task in tasks:
            grid.insert(task.task_id, task.location)
        return grid

    @property
    def min_accuracy(self) -> float:
        """The eligibility threshold on predicted accuracy."""
        return self._min_accuracy

    def is_eligible(self, worker: Worker, task: Task) -> bool:
        """Whether ``worker`` may be assigned ``task``."""
        return self._model.accuracy(worker, task) >= self._min_accuracy - 1e-12

    def _eligible_pool(self, worker: Worker, ordered: bool) -> Sequence[Task]:
        if self._grid is not None and isinstance(self._model, SigmoidDistanceAccuracy):
            radius = sigmoid_eligibility_radius(
                worker.accuracy, self._model.d_max, self._min_accuracy
            )
            if radius < 0:
                return []
            nearby_ids = self._grid.query_radius(worker.location, radius)
            if ordered:
                nearby_ids = sorted(nearby_ids)
            return [self._tasks_by_id[task_id] for task_id in nearby_ids]
        return self._instance.tasks

    def iter_candidates(
        self, worker: Worker, allowed_ids: Optional[AbstractSet[int]] = None
    ) -> Iterator[Task]:
        """Lazily yield the worker's assignable tasks in ascending-id order."""
        if allowed_ids is not None and not allowed_ids:
            return
        pool = self._eligible_pool(worker, ordered=True)
        if allowed_ids is None:
            for task in pool:
                if self.is_eligible(worker, task):
                    yield task
        else:
            for task in pool:
                if task.task_id in allowed_ids and self.is_eligible(worker, task):
                    yield task

    def eligible_pairs(
        self,
        workers: Iterable[Worker],
        allowed_ids: Optional[AbstractSet[int]] = None,
    ) -> Iterator[Tuple[Worker, Task]]:
        """Bulk-iterate every assignable ``(worker, task)`` pair."""
        if allowed_ids is not None and not allowed_ids:
            return
        for worker in workers:
            for task in self.iter_candidates(worker, allowed_ids):
                yield worker, task

    def candidates(self, worker: Worker) -> List[Task]:
        """All tasks the worker may be assigned, in ascending task-id order."""
        return list(self.iter_candidates(worker))

    def has_candidates(self, worker: Worker) -> bool:
        """Whether at least one task is assignable to the worker."""
        pool = self._eligible_pool(worker, ordered=False)
        return any(self.is_eligible(worker, task) for task in pool)

    def candidate_count_per_task(self) -> Dict[int, int]:
        """For every task, the number of workers eligible to perform it.

        Note this is the *pre-fix* form that sorts a candidate list per
        worker just to count — the facade now counts via the unordered
        pool; the parity test compares the two.
        """
        counts = {task.task_id: 0 for task in self._instance.tasks}
        for worker in self._instance.workers:
            for task in self.candidates(worker):
                counts[task.task_id] += 1
        return counts


# --------------------------------------------------------------------------
# Pre-engine online observe loops (what LAFSolver / AAMSolver did before the
# engine rewrite), as plain driver functions over a LegacyCandidateFinder.


def legacy_laf_observe(
    instance: LTCInstance,
    arrangement: Arrangement,
    finder: LegacyCandidateFinder,
    worker: Worker,
) -> List[int]:
    """One pre-engine LAF arrival; returns the assigned task ids in order."""
    heap: TopKHeap = TopKHeap(worker.capacity)
    for task in finder.candidates(worker):
        if arrangement.is_task_complete(task.task_id):
            continue
        heap.push(instance.acc_star(worker, task), task)
    assigned: List[int] = []
    for _, task in heap.pop_all():
        arrangement.assign(worker, task)
        assigned.append(task.task_id)
    return assigned


def legacy_aam_observe(
    instance: LTCInstance,
    arrangement: Arrangement,
    finder: LegacyCandidateFinder,
    worker: Worker,
) -> List[int]:
    """One pre-engine AAM arrival (including the O(T) remaining scan)."""
    delta = arrangement.delta
    remaining = [
        arrangement.remaining_of(task.task_id)
        for task in instance.tasks
        if not arrangement.is_task_complete(task.task_id)
    ]
    if not remaining:
        return []
    avg = sum(remaining) / instance.capacity
    max_remain = max(remaining)
    use_lgf = avg >= max_remain

    heap: TopKHeap = TopKHeap(worker.capacity)
    for task in finder.candidates(worker):
        if arrangement.is_task_complete(task.task_id):
            continue
        need = delta - arrangement.accumulated_of(task.task_id)
        if use_lgf:
            score = min(instance.acc_star(worker, task), need)
        else:
            score = need
        heap.push(score, task)
    assigned: List[int] = []
    for _, task in heap.pop_all():
        arrangement.assign(worker, task)
        assigned.append(task.task_id)
    return assigned


def _legacy_online_arrangement(instance: LTCInstance, observe) -> Arrangement:
    arrangement = instance.new_arrangement()
    finder = LegacyCandidateFinder(instance)
    for worker in instance.workers:
        if arrangement.is_complete():
            break
        observe(instance, arrangement, finder, worker)
    return arrangement


def legacy_laf_arrangement(instance: LTCInstance) -> Arrangement:
    """The full pre-engine LAF run (stop at completion, like ``solve``)."""
    return _legacy_online_arrangement(instance, legacy_laf_observe)


def legacy_aam_arrangement(instance: LTCInstance) -> Arrangement:
    """The full pre-engine AAM run (stop at completion, like ``solve``)."""
    return _legacy_online_arrangement(instance, legacy_aam_observe)
