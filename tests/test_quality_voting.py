"""Tests for repro.quality.voting (Definition 4)."""

import pytest
from hypothesis import given, strategies as st

from repro.quality.voting import weighted_majority_vote


class TestWeightedMajorityVote:
    def test_unanimous_yes(self):
        outcome = weighted_majority_vote([1, 1, 1], [0.9, 0.8, 0.7])
        assert outcome.decision == 1
        assert outcome.num_votes == 3
        assert outcome.score == pytest.approx(0.8 + 0.6 + 0.4)

    def test_high_accuracy_worker_outweighs_low_accuracy_majority(self):
        outcome = weighted_majority_vote([1, -1, -1], [0.99, 0.55, 0.55])
        assert outcome.decision == 1

    def test_tie_breaks_to_positive(self):
        outcome = weighted_majority_vote([1, -1], [0.8, 0.8])
        assert outcome.score == pytest.approx(0.0)
        assert outcome.decision == 1

    def test_empty_vote(self):
        outcome = weighted_majority_vote([], [])
        assert outcome.decision == 1
        assert outcome.confidence == 0.0

    def test_below_half_accuracy_counts_against_stated_answer(self):
        """A 0-accuracy worker has weight -1: their answer is inverted."""
        outcome = weighted_majority_vote([1], [0.0])
        assert outcome.decision == -1

    def test_confidence_in_unit_interval(self):
        outcome = weighted_majority_vote([1, -1, 1], [0.9, 0.7, 0.6])
        assert 0.0 <= outcome.confidence <= 1.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            weighted_majority_vote([1], [0.9, 0.8])

    def test_invalid_answer_rejected(self):
        with pytest.raises(ValueError):
            weighted_majority_vote([0], [0.9])

    def test_invalid_accuracy_rejected(self):
        with pytest.raises(ValueError):
            weighted_majority_vote([1], [1.5])


answers = st.lists(st.sampled_from([-1, 1]), min_size=1, max_size=30)


class TestVotingProperties:
    @given(answers, st.data())
    def test_flipping_all_answers_flips_decision_or_tie(self, votes, data):
        accuracies = data.draw(st.lists(
            st.floats(min_value=0.51, max_value=1.0),
            min_size=len(votes), max_size=len(votes)))
        outcome = weighted_majority_vote(votes, accuracies)
        flipped = weighted_majority_vote([-v for v in votes], accuracies)
        if abs(outcome.score) > 1e-12:
            assert flipped.decision == -outcome.decision
        assert flipped.score == pytest.approx(-outcome.score)

    @given(answers, st.data())
    def test_total_weight_bounds_score(self, votes, data):
        accuracies = data.draw(st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=len(votes), max_size=len(votes)))
        outcome = weighted_majority_vote(votes, accuracies)
        assert abs(outcome.score) <= outcome.total_weight + 1e-9
