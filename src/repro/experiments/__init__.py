"""Experiment harness reproducing the paper's evaluation (Sec. V).

Every figure column of the paper maps to one experiment definition in
:mod:`repro.experiments.configs`; running it produces the latency, runtime
and memory series of the corresponding three panels.  The harness renders
these series as text tables (:mod:`repro.experiments.report`) and checks them
against the qualitative expectations extracted from the paper
(:mod:`repro.experiments.paper_reference`).
"""

from repro.experiments.configs import (
    ExperimentDefinition,
    EXPERIMENTS,
    get_experiment,
    list_experiments,
)
from repro.experiments.harness import run_experiment
from repro.experiments.report import render_table, render_series, render_summary
from repro.experiments.export import export_json, write_records_csv, write_series_csv
from repro.experiments.paper_reference import PAPER_EXPECTATIONS, PanelExpectation

__all__ = [
    "export_json",
    "write_records_csv",
    "write_series_csv",
    "ExperimentDefinition",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "run_experiment",
    "render_table",
    "render_series",
    "render_summary",
    "PAPER_EXPECTATIONS",
    "PanelExpectation",
]
