"""Regenerates Fig. 4a/4e/4i of the paper: latency / runtime / memory vs the tolerable error rate epsilon.

The benchmark times the full regeneration (workload generation plus all five
algorithms across the sweep) and writes the rendered series to
``benchmarks/results/fig4_epsilon.txt``.
"""

import pytest


@pytest.mark.benchmark(group="fig4_epsilon")
def test_regenerate_fig4_epsilon(benchmark, figure_runner):
    table = benchmark.pedantic(
        lambda: figure_runner("fig4_epsilon"), rounds=1, iterations=1
    )
    assert len(table) > 0
    assert table.completion_rate() == 1.0
