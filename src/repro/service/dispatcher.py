"""Multi-instance dispatch: many concurrent LTC sessions, one worker stream.

A production crowdsourcing platform does not solve one instance at a time —
campaigns (instances) overlap in time and share the stream of checking-in
workers.  :class:`LTCDispatcher` is that serving surface:

* :meth:`~LTCDispatcher.submit_instance` opens a named incremental
  :class:`~repro.core.session.Session` for an instance, served by any
  registered *online* solver (offline solvers replay a plan over their
  instance's own stream, which is incompatible with routed live traffic);
* :meth:`~LTCDispatcher.feed_worker` takes one arrival from the merged
  stream and routes it to every open session for which the worker is
  *eligible* — able to perform at least one of the session's tasks above the
  instance's assignable-accuracy threshold, which under the paper's sigmoid
  accuracy model is a geographic proximity test;
* :meth:`~LTCDispatcher.submit_tasks` posts additional tasks to an open
  session **mid-stream**: campaigns are long-lived and keep receiving
  tasks while workers flow.  Both the session's live candidate snapshot
  and the dispatcher's own routing snapshot absorb the tasks in place
  (no rebuild), and a session that had completed reopens;
* :meth:`~LTCDispatcher.poll` reports per-session progress snapshots;
* :meth:`~LTCDispatcher.close` finalises a session into its
  :class:`~repro.algorithms.base.SolveResult`.

Latency is measured in *per-session* arrivals, exactly as in the
single-instance setting: a worker delivered to a session is re-indexed into
that session's local arrival order, so a session's ``max_latency`` equals
what a standalone run over its routed sub-stream would report.  Sessions
that complete stop receiving workers, mirroring how a single-instance drive
stops at completion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.algorithms.base import Solver, SolveResult
from repro.algorithms.registry import build_solver
from repro.algorithms.spec import SolverSpecLike
from repro.core.arrangement import Assignment
from repro.core.candidate_engine import validate_candidate_backend_name
from repro.core.candidates import CandidateFinder
from repro.core.instance import LTCInstance
from repro.core.session import Session, SessionSnapshot
from repro.core.task import Task
from repro.core.worker import Worker
from repro.service.metrics import DispatcherMetrics


class UnknownSessionError(KeyError):
    """A session id that the dispatcher does not know."""


class DuplicateSessionError(ValueError):
    """A session id that is already in use."""


@dataclass(frozen=True)
class SessionStatus:
    """One session's progress as reported by :meth:`LTCDispatcher.poll`."""

    session_id: str
    algorithm: str
    workers_routed: int
    snapshot: SessionSnapshot

    @property
    def max_latency(self) -> int:
        """Largest per-session arrival index among used workers."""
        return self.snapshot.max_latency

    @property
    def complete(self) -> bool:
        """Whether every task of the session reached the quality threshold."""
        return self.snapshot.complete


@dataclass
class _ManagedSession:
    """Internal bookkeeping for one open session."""

    session_id: str
    instance: LTCInstance
    session: Session
    #: The dispatcher's own routing snapshot.  Long-lived: built once at
    #: submission and mutated in place (``add_tasks``) when tasks are
    #: posted mid-stream — never rebuilt per change.
    candidates: CandidateFinder
    solver: Solver
    workers_routed: int = 0
    #: Completion is cached here once observed — the dispatch hot path
    #: must not re-scan a finished session's task set on every arrival.
    #: No longer monotone: a mid-stream task submission reopens it.
    complete: bool = False
    routed_stream: Optional[List[Worker]] = None

    def deliver(self, worker: Worker) -> List[Assignment]:
        """Re-index ``worker`` into local arrival order and feed the session."""
        local = replace(worker, index=self.workers_routed + 1)
        assignments = self.session.on_worker(local)
        self.workers_routed += 1
        if self.routed_stream is not None:
            self.routed_stream.append(local)
        return assignments


class LTCDispatcher:
    """Routes one merged worker stream across many concurrent sessions.

    Parameters
    ----------
    default_solver:
        Spec used by :meth:`submit_instance` when none is given (name,
        spec string, or :class:`~repro.algorithms.spec.SolverSpec`).
    keep_streams:
        Record each session's routed sub-stream (re-indexed workers) so it
        can be replayed standalone with :meth:`routed_stream` — used by the
        dispatch demo and tests to verify per-session latencies match
        single-session runs.  Off by default to keep memory flat under
        heavy traffic.
    candidates:
        Candidate-engine backend used for the per-session eligibility
        routing test (``"python"``, ``"numpy"``, ``"auto"``, or ``None``
        to defer to ``REPRO_CANDIDATES_BACKEND`` / auto-detection).  The
        routing decision is a bulk ``has_candidates`` query per arrival
        per open session, so the vectorized backend is what keeps the
        dispatch hot path flat under heavy traffic.
    clock:
        Monotonic time source used for the ``busy_seconds`` metric;
        defaults to :func:`time.perf_counter`.  Injectable so tests can
        pin metric timing and so a sharded deployment can hand every
        per-shard dispatcher the same clock.
    """

    def __init__(
        self,
        default_solver: SolverSpecLike = "AAM",
        keep_streams: bool = False,
        candidates: Optional[str] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        validate_candidate_backend_name(candidates)
        self._default_solver = default_solver
        self._keep_streams = keep_streams
        self._candidates_backend = candidates
        self._clock: Callable[[], float] = clock if clock is not None else time.perf_counter
        self._sessions: Dict[str, _ManagedSession] = {}
        self._metrics = DispatcherMetrics()
        self._auto_id = 0

    # ------------------------------------------------------------- sessions

    def submit_instance(
        self,
        instance: LTCInstance,
        solver: Union[SolverSpecLike, Solver, None] = None,
        session_id: Optional[str] = None,
    ) -> str:
        """Open a session serving ``instance`` and return its id.

        ``solver`` may be a registry name, a spec string such as
        ``"AAM?use_spatial_index=false"``, a
        :class:`~repro.algorithms.spec.SolverSpec`, or an already-built
        :class:`~repro.algorithms.base.Solver`; it defaults to the
        dispatcher's ``default_solver``.  Only *online* solvers are
        accepted: offline solvers plan over their instance's own worker
        sequence and replay it verbatim, which is incompatible with being
        fed a routed sub-stream of merged live traffic.
        """
        if session_id is None:
            self._auto_id += 1
            session_id = f"session-{self._auto_id}"
        if session_id in self._sessions:
            raise DuplicateSessionError(
                f"session id {session_id!r} is already in use"
            )
        if isinstance(solver, Solver):
            solver_obj = solver
            for managed in self._sessions.values():
                if managed.solver is solver_obj:
                    raise ValueError(
                        f"solver object {solver_obj!r} already serves session "
                        f"{managed.session_id!r}; a solver holds one mutable "
                        "arrangement, so build one solver per session"
                    )
        else:
            solver_obj = build_solver(solver if solver is not None
                                      else self._default_solver)
        if not solver_obj.is_online:
            raise ValueError(
                f"solver {solver_obj.name!r} is offline: its replay session "
                "must be fed its instance's own worker sequence, not routed "
                "live traffic; dispatch sessions require an online solver"
            )
        # The dispatcher keeps its own CandidateFinder per session for the
        # routing test; the solver builds another internally.  Two grid
        # indexes per session is a deliberate trade-off: routing must work
        # before the session activates and without reaching into solver
        # internals, and index construction is O(tasks) once per session.
        managed = _ManagedSession(
            session_id=session_id,
            instance=instance,
            session=solver_obj.open_session(instance),
            candidates=CandidateFinder(instance, backend=self._candidates_backend),
            solver=solver_obj,
            routed_stream=[] if self._keep_streams else None,
        )
        self._sessions[session_id] = managed
        self._metrics.sessions_opened += 1
        return session_id

    def submit_tasks(self, session_id: str, tasks: Sequence[Task]) -> str:
        """Post additional tasks to an open session and return its id.

        Works at any point in the session's life: before its first routed
        worker the tasks are staged by the session, afterwards they join
        the serving solver's live candidate snapshot in place (legal for
        the dynamic online solvers the dispatcher accepts; a solver
        without dynamic support raises
        :class:`~repro.core.session.SessionStateError` and the dispatcher
        state is left untouched).  The dispatcher's own routing snapshot
        absorbs the tasks too, so subsequent arrivals near only the new
        tasks route correctly — and a session that had already completed
        reopens and resumes receiving workers.
        """
        managed = self._managed(session_id)
        tasks = list(tasks)
        # Session first: it validates duplicate ids (and dynamic support)
        # before the routing snapshot is touched, keeping the two in step.
        managed.session.submit_tasks(tasks)
        managed.candidates.add_tasks(tasks)
        self._metrics.tasks_submitted += len(tasks)
        if managed.complete and not managed.session.is_complete:
            managed.complete = False
            self._metrics.sessions_reopened += 1
        return session_id

    def expire_tasks(self, session_id: str, task_ids: Sequence[int]) -> List[int]:
        """Expire overdue tasks in an open session; return the expired ids.

        Delegates to :meth:`~repro.core.session.Session.expire_tasks` (legal
        for sessions over expiry-capable online solvers) and retires the
        same tasks from the dispatcher's routing snapshot, so arrivals near
        only-expired tasks stop being routed to the session.  A session
        whose last open tasks all expire becomes complete — abandonment,
        like completion, stops it from receiving further traffic.  The
        returned list contains only honestly-abandoned ids (completed and
        already-expired ids offered to the sweep are skipped).
        """
        managed = self._managed(session_id)
        expired = managed.session.expire_tasks(list(task_ids))
        if expired:
            managed.candidates.retire_tasks(expired)
            self._metrics.tasks_expired += len(expired)
            if not managed.complete and managed.session.is_complete:
                managed.complete = True
                self._metrics.sessions_completed += 1
        return expired

    @property
    def session_ids(self) -> List[str]:
        """Ids of all open (not yet closed) sessions, in submission order."""
        return list(self._sessions)

    @property
    def all_complete(self) -> bool:
        """Whether every open session has completed (vacuously true if none)."""
        return all(managed.complete for managed in self._sessions.values())

    # ------------------------------------------------------------ streaming

    def feed_worker(self, worker: Worker) -> Dict[str, List[Assignment]]:
        """Route one arriving worker; return the assignments per session.

        The worker is delivered to every open, still-incomplete session it is
        eligible for (it can perform at least one of the session's tasks).
        Eligibility never *shrinks* — a worker near only-completed tasks
        still counts as a session arrival, so the per-session latency axis
        means the same thing for the whole run, exactly as a standalone
        drive of that sub-stream would count it — but it does *grow* when
        :meth:`submit_tasks` posts tasks mid-stream (the routing snapshot
        absorbs them in place).  The returned mapping has an entry for each
        session the worker reached, possibly with an empty assignment list
        when the session's solver declined to use the worker.
        """
        started = self._clock()
        self._metrics.workers_fed += 1
        deliveries: Dict[str, List[Assignment]] = {}
        for managed in self._sessions.values():
            if managed.complete:
                continue
            if not managed.candidates.has_candidates(worker):
                continue
            assignments = managed.deliver(worker)
            deliveries[managed.session_id] = assignments
            self._metrics.workers_routed += 1
            self._metrics.assignments_made += len(assignments)
            if managed.session.is_complete:
                managed.complete = True
                self._metrics.sessions_completed += 1
        if not deliveries:
            self._metrics.workers_unrouted += 1
        self._metrics.busy_seconds += self._clock() - started
        return deliveries

    def feed_stream(self, workers, stop_when_all_complete: bool = True) -> int:
        """Feed a whole merged stream; return how many arrivals were consumed.

        ``workers`` is any iterable of :class:`~repro.core.worker.Worker`
        arrivals in merged-stream order; each is routed exactly as by
        :meth:`feed_worker`.  Stops early once every session is complete
        (the default), mirroring how a single-instance drive stops at
        completion; pass ``stop_when_all_complete=False`` to drain the
        iterable regardless (e.g. to keep serving sessions submitted
        mid-stream).
        """
        consumed = 0
        for worker in workers:
            if stop_when_all_complete and self.all_complete:
                break
            self.feed_worker(worker)
            consumed += 1
        return consumed

    # ----------------------------------------------------------- inspection

    def poll(self) -> Dict[str, SessionStatus]:
        """Progress snapshots of every open session, keyed by session id."""
        return {
            session_id: SessionStatus(
                session_id=session_id,
                algorithm=managed.session.algorithm,
                workers_routed=managed.workers_routed,
                snapshot=managed.session.snapshot(),
            )
            for session_id, managed in self._sessions.items()
        }

    def instance_of(self, session_id: str) -> LTCInstance:
        """The instance an open session serves."""
        return self._managed(session_id).instance

    def routed_stream(self, session_id: str) -> List[Worker]:
        """The re-indexed sub-stream delivered to a session so far.

        Only available when the dispatcher was built with
        ``keep_streams=True``.
        """
        managed = self._managed(session_id)
        if managed.routed_stream is None:
            raise RuntimeError(
                "routed streams are not recorded; build the dispatcher with "
                "keep_streams=True"
            )
        return list(managed.routed_stream)

    @property
    def metrics(self) -> DispatcherMetrics:
        """Aggregate serving counters (live object)."""
        return self._metrics

    # ------------------------------------------------------------ migration

    def adopt_sessions(self, donor: "LTCDispatcher") -> List[str]:
        """Take over every open session of ``donor`` (quarantine migration).

        Managed sessions move wholesale — live solver state, routing
        snapshot, routed-stream history and all — and the donor's metrics
        fold into this dispatcher's, leaving the donor empty.  Session ids
        must not collide (the sharded runtime keeps ids globally unique).
        Returns the adopted ids in the donor's submission order.
        """
        adopted = list(donor._sessions)
        for session_id in adopted:
            if session_id in self._sessions:
                raise DuplicateSessionError(
                    f"cannot adopt session {session_id!r}: the id is already "
                    "in use here"
                )
        self._sessions.update(donor._sessions)
        self._metrics.merge(donor._metrics)
        donor._sessions = {}
        donor._metrics = DispatcherMetrics()
        return adopted

    # -------------------------------------------------------------- closing

    def close(self, session_id: str) -> SolveResult:
        """Finalise one session, remove it, and return its solve result."""
        managed = self._managed(session_id)
        # Finalise before removing: if result() fails the session stays
        # open (retryable) and the metrics stay truthful.
        result = managed.session.result()
        del self._sessions[session_id]
        self._metrics.sessions_closed += 1
        return result

    def close_all(self) -> Dict[str, SolveResult]:
        """Finalise every open session, in submission order."""
        return {
            session_id: self.close(session_id)
            for session_id in list(self._sessions)
        }

    # ------------------------------------------------------------ internals

    def _managed(self, session_id: str) -> _ManagedSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            known = ", ".join(self._sessions) or "<none>"
            raise UnknownSessionError(
                f"unknown session {session_id!r}; open sessions: {known}"
            ) from None
