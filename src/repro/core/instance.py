"""Offline LTC problem instances (Definition 6).

An :class:`LTCInstance` bundles the task set, the worker sequence (ordered by
arrival index), the tolerable error rate and the accuracy model.  Offline
solvers receive the full instance; online solvers receive the same instance
but consume the workers one at a time through a
:class:`~repro.core.stream.WorkerStream` so they can never peek ahead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.core.accuracy import AccuracyModel, SigmoidDistanceAccuracy
from repro.core.arrangement import Arrangement
from repro.core.exceptions import InfeasibleInstanceError
from repro.core.quality_threshold import quality_threshold
from repro.core.task import Task
from repro.core.worker import Worker


@dataclass
class LTCInstance:
    """A complete offline LTC problem instance.

    Attributes
    ----------
    tasks:
        The micro tasks to complete.
    workers:
        The workers in arrival order.  Their ``index`` attributes must be the
        consecutive integers ``1..|W|``.
    error_rate:
        The tolerable error rate ``epsilon`` shared by all tasks.
    accuracy_model:
        Predicted-accuracy function ``Acc(w, t)``.
    name:
        Optional label used in reports.
    """

    tasks: List[Task]
    workers: List[Worker]
    error_rate: float
    accuracy_model: AccuracyModel = field(default_factory=SigmoidDistanceAccuracy)
    name: str = ""
    #: Minimum predicted accuracy for a (worker, task) pair to be assignable.
    #: The paper's bound analysis assumes assigned pairs satisfy
    #: Acc(w, t) >= 0.66 (the spam threshold), which keeps Acc* in [0.1, 1].
    min_assignable_accuracy: float = 0.66

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("an instance needs at least one task")
        if not self.workers:
            raise ValueError("an instance needs at least one worker")
        if not 0.0 < self.error_rate < 1.0:
            raise ValueError("error_rate must be in (0, 1)")
        task_ids = [task.task_id for task in self.tasks]
        if len(set(task_ids)) != len(task_ids):
            raise ValueError("task ids must be unique")
        indices = [worker.index for worker in self.workers]
        if indices != list(range(1, len(self.workers) + 1)):
            raise ValueError(
                "workers must be given in arrival order with consecutive "
                "indices starting at 1"
            )
        self._tasks_by_id: Dict[int, Task] = {task.task_id: task for task in self.tasks}
        self._workers_by_index: Dict[int, Worker] = {
            worker.index: worker for worker in self.workers
        }

    # ------------------------------------------------------------- accessors

    @property
    def delta(self) -> float:
        """The quality threshold ``2 * ln(1 / epsilon)``."""
        return quality_threshold(self.error_rate)

    @property
    def capacity(self) -> int:
        """The workers' shared capacity ``K``.

        The paper assumes every worker has the same capacity; when workers
        disagree this returns the minimum, which is the conservative value the
        bound formulas need.
        """
        return min(worker.capacity for worker in self.workers)

    @property
    def num_tasks(self) -> int:
        """``|T|``."""
        return len(self.tasks)

    @property
    def num_workers(self) -> int:
        """``|W|``."""
        return len(self.workers)

    def task(self, task_id: int) -> Task:
        """Look a task up by id."""
        return self._tasks_by_id[task_id]

    def worker(self, index: int) -> Worker:
        """Look a worker up by arrival index."""
        return self._workers_by_index[index]

    def workers_by_index(self) -> Dict[int, Worker]:
        """Mapping from arrival index to worker (copy)."""
        return dict(self._workers_by_index)

    def add_tasks(self, tasks: Sequence[Task]) -> None:
        """Append newly posted tasks (the online dynamic-arrival path).

        The paper's online setting is a stream: tasks keep being posted
        while workers check in.  Sessions over dynamic solvers mutate
        their *private working copy* of the instance through this method
        (the caller's original is never touched), so downstream views
        (``num_tasks``, ``task()``, progress counters) stay consistent.
        Raises ``ValueError`` when a task id is already posted.
        """
        incoming = list(tasks)
        seen = set()
        for task in incoming:
            if task.task_id in self._tasks_by_id or task.task_id in seen:
                raise ValueError(f"task id {task.task_id} is already posted")
            seen.add(task.task_id)
        for task in incoming:
            self.tasks.append(task)
            self._tasks_by_id[task.task_id] = task

    def iter_workers(self) -> Iterator[Worker]:
        """Workers in arrival order."""
        return iter(self.workers)

    # ------------------------------------------------------------- utilities

    def acc(self, worker: Worker, task: Task) -> float:
        """``Acc(w, t)`` under the instance's accuracy model."""
        return self.accuracy_model.accuracy(worker, task)

    def acc_star(self, worker: Worker, task: Task) -> float:
        """``Acc*(w, t)`` under the instance's accuracy model."""
        return self.accuracy_model.acc_star(worker, task)

    def new_arrangement(self) -> Arrangement:
        """A fresh, empty arrangement bound to this instance."""
        return Arrangement(self.tasks, self.delta, self.accuracy_model)

    def total_available_acc_star(self) -> float:
        """Upper bound on the total ``Acc*`` all workers could contribute.

        Every worker contributes at most ``capacity`` assignments, each worth
        at most their best ``Acc*`` over all tasks.  Used for cheap
        feasibility pre-checks.
        """
        total = 0.0
        for worker in self.workers:
            best = max(self.acc_star(worker, task) for task in self.tasks)
            total += worker.capacity * best
        return total

    def check_feasibility(self) -> None:
        """Raise :class:`InfeasibleInstanceError` if completion is impossible.

        This is a cheap necessary-condition check (total available ``Acc*``
        vs. total required), not a full feasibility proof; solvers still
        detect and report infeasibility when they exhaust the worker stream.
        """
        required = self.delta * self.num_tasks
        if self.total_available_acc_star() < required - 1e-9:
            raise InfeasibleInstanceError(
                f"workers can contribute at most "
                f"{self.total_available_acc_star():.2f} Acc* in total but the "
                f"tasks require {required:.2f}"
            )

    def subset_of_workers(self, count: int) -> "LTCInstance":
        """A copy of the instance restricted to the first ``count`` workers."""
        if count < 1 or count > self.num_workers:
            raise ValueError("count must be within 1..|W|")
        return LTCInstance(
            tasks=list(self.tasks),
            workers=list(self.workers[:count]),
            error_rate=self.error_rate,
            accuracy_model=self.accuracy_model,
            name=self.name,
            min_assignable_accuracy=self.min_assignable_accuracy,
        )

    def describe(self) -> dict[str, object]:
        """A plain-dict description for logging and reports."""
        return {
            "name": self.name or "<unnamed>",
            "num_tasks": self.num_tasks,
            "num_workers": self.num_workers,
            "error_rate": self.error_rate,
            "delta": self.delta,
            "capacity": self.capacity,
            "accuracy_model": repr(self.accuracy_model),
        }
