"""Running experiments end-to-end.

:func:`run_experiment` resolves an experiment id, builds its runner and
returns the populated :class:`~repro.simulation.results.ResultTable`.  The
CLI and the benchmark files are thin wrappers over this function.

Solver configuration is fully declarative: ``algorithms`` accepts registry
names and parameterized spec strings (``"MCF-LTC?batch_multiplier=2.0"``)
alike, and experiments whose sweep varies a solver parameter (the batch-size
ablation) declare the per-sweep specs on their
:class:`~repro.experiments.configs.ExperimentDefinition` — there are no
harness-level solver overrides.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.algorithms.spec import SolverSpecLike
from repro.experiments.configs import get_experiment
from repro.simulation.results import ResultTable


def run_experiment(
    experiment_id: str,
    scale: Optional[float] = None,
    repetitions: Optional[int] = None,
    algorithms: Optional[Sequence[SolverSpecLike]] = None,
    sweep_values: Optional[Sequence[float]] = None,
    track_memory: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> ResultTable:
    """Run one of the paper's experiments and return its result table.

    Parameters mirror :meth:`ExperimentDefinition.build_runner`; leaving them
    ``None`` uses the definition's scaled-down defaults.  ``algorithms``
    entries may be bare solver names or spec strings like
    ``"MCF-LTC?batch_multiplier=2.0"``.
    """
    definition = get_experiment(experiment_id)
    runner = definition.build_runner(
        scale=scale,
        repetitions=repetitions,
        algorithms=algorithms,
        sweep_values=sweep_values,
        track_memory=track_memory,
        progress=progress,
    )
    return runner.run()
