"""Tests for the paper-expectation checking logic."""

import pytest

from repro.experiments.paper_reference import PAPER_EXPECTATIONS, PanelExpectation
from repro.simulation.results import ExperimentRecord, ResultTable


def table_from_series(series, experiment_id="exp", runtimes=None):
    """Build a ResultTable from {algorithm: [(x, latency), ...]}."""
    table = ResultTable(experiment_id, "x")
    runtimes = runtimes or {}
    for algorithm, points in series.items():
        for x, latency in points:
            table.add(ExperimentRecord(
                experiment_id=experiment_id,
                sweep_parameter="x",
                sweep_value=x,
                algorithm=algorithm,
                repetition=0,
                max_latency=latency,
                completed=True,
                runtime_seconds=runtimes.get(algorithm, 0.1),
                peak_memory_mb=1.0,
            ))
    return table


class TestPanelExpectation:
    def test_matching_table_has_no_violations(self):
        expectation = PanelExpectation(
            experiment_id="exp",
            latency_better=[("AAM", "Random")],
            latency_trend="increasing",
            trend_algorithms=("AAM",),
            runtime_slowest="MCF-LTC",
        )
        table = table_from_series(
            {
                "AAM": [(1, 100), (2, 150)],
                "Random": [(1, 130), (2, 190)],
                "MCF-LTC": [(1, 90), (2, 140)],
            },
            runtimes={"MCF-LTC": 5.0, "AAM": 0.5, "Random": 0.2},
        )
        assert expectation.check(table) == []

    def test_pairwise_violation_reported(self):
        expectation = PanelExpectation(
            experiment_id="exp", latency_better=[("AAM", "Random")],
            runtime_slowest=None,
        )
        table = table_from_series({
            "AAM": [(1, 200)],
            "Random": [(1, 100)],
        })
        problems = expectation.check(table)
        assert len(problems) == 1
        assert "AAM" in problems[0]

    def test_trend_violation_reported(self):
        expectation = PanelExpectation(
            experiment_id="exp", latency_trend="decreasing",
            trend_algorithms=("LAF",), runtime_slowest=None,
        )
        table = table_from_series({"LAF": [(1, 100), (2, 200)]})
        problems = expectation.check(table)
        assert any("decrease" in p for p in problems)

    def test_runtime_violation_reported(self):
        expectation = PanelExpectation(
            experiment_id="exp", runtime_slowest="MCF-LTC",
        )
        table = table_from_series(
            {"MCF-LTC": [(1, 10)], "LAF": [(1, 10)]},
            runtimes={"MCF-LTC": 0.1, "LAF": 5.0},
        )
        problems = expectation.check(table)
        assert any("slowest" in p for p in problems)

    def test_missing_algorithms_are_ignored(self):
        expectation = PanelExpectation(
            experiment_id="exp", latency_better=[("AAM", "Random")],
            latency_trend="increasing", runtime_slowest="MCF-LTC",
        )
        table = table_from_series({"LAF": [(1, 10), (2, 20)]})
        assert expectation.check(table) == []

    def test_tolerance_allows_small_regressions(self):
        expectation = PanelExpectation(
            experiment_id="exp", latency_better=[("AAM", "Random")],
            runtime_slowest=None, tolerance=1.05,
        )
        table = table_from_series({
            "AAM": [(1, 103)],
            "Random": [(1, 100)],
        })
        assert expectation.check(table) == []


class TestRegisteredExpectations:
    def test_every_figure_experiment_has_an_expectation(self):
        for experiment_id in (
            "fig3_tasks", "fig3_capacity", "fig3_accuracy_normal",
            "fig3_accuracy_uniform", "fig4_epsilon", "fig4_scalability",
            "fig4_newyork", "fig4_tokyo",
        ):
            expectation = PAPER_EXPECTATIONS[experiment_id]
            assert expectation.experiment_id == experiment_id
            # The paper's headline claims are always present.
            pairs = set(expectation.latency_better)
            assert ("AAM", "Random") in pairs
            assert expectation.runtime_slowest == "MCF-LTC"

    def test_capacity_and_epsilon_sweeps_expect_decreasing_latency(self):
        assert PAPER_EXPECTATIONS["fig3_capacity"].latency_trend == "decreasing"
        assert PAPER_EXPECTATIONS["fig4_epsilon"].latency_trend == "decreasing"

    def test_task_sweeps_expect_increasing_latency(self):
        assert PAPER_EXPECTATIONS["fig3_tasks"].latency_trend == "increasing"
        assert PAPER_EXPECTATIONS["fig4_scalability"].latency_trend == "increasing"
