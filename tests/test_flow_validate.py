"""Tests for repro.flow.validate."""

import pytest

from repro.flow.network import FlowNetwork
from repro.flow.validate import validate_flow


def two_hop_network():
    network = FlowNetwork()
    first = network.add_edge("s", "a", 3, 1.0)
    second = network.add_edge("a", "t", 3, 1.0)
    return network, first, second


class TestValidateFlow:
    def test_valid_flow_has_no_violations(self):
        network, first, second = two_hop_network()
        first.push(2)
        second.push(2)
        assert validate_flow(network, "s", "t", expected_value=2) == []

    def test_conservation_violation_detected(self):
        network, first, second = two_hop_network()
        first.push(2)
        second.push(1)
        kinds = {v.kind for v in validate_flow(network, "s", "t")}
        assert "conservation" in kinds

    def test_capacity_violation_detected(self):
        network, first, second = two_hop_network()
        # Bypass Edge.push to simulate a corrupted flow.
        first.flow = 5
        second.flow = 5
        kinds = {v.kind for v in validate_flow(network, "s", "t")}
        assert "capacity" in kinds

    def test_negative_flow_detected(self):
        network, first, second = two_hop_network()
        first.flow = -1
        second.flow = -1
        kinds = {v.kind for v in validate_flow(network, "s", "t")}
        assert "negative-flow" in kinds

    def test_value_mismatch_detected(self):
        network, first, second = two_hop_network()
        first.push(1)
        second.push(1)
        violations = validate_flow(network, "s", "t", expected_value=3)
        assert any(v.kind == "value" for v in violations)

    def test_violation_renders_as_string(self):
        network, first, second = two_hop_network()
        first.push(1)
        violations = validate_flow(network, "s", "t")
        assert violations
        assert "conservation" in str(violations[0]) or "value" in str(violations[0])
