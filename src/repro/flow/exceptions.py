"""Exceptions raised by the min-cost-flow substrate."""


class FlowError(Exception):
    """Base class for all flow-related errors."""


class NegativeCycleError(FlowError):
    """The network contains a negative-cost cycle reachable from the source.

    The LTC reduction never produces one (all negative arcs point from the
    worker side to the task side of a bipartite graph), so hitting this error
    indicates a malformed network.
    """


class InfeasibleFlowError(FlowError):
    """A requested amount of flow cannot be routed from source to sink."""


class BackendUnavailableError(FlowError):
    """An explicitly named flow backend cannot run in this environment.

    Raised by :func:`repro.flow.backends.resolve_backend` when a backend is
    registered but its optional dependency (e.g. numpy) is missing.  Auto
    selection never raises this — it falls back to the pure-Python backend.
    """
