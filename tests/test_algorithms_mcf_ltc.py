"""Tests for the MCF-LTC offline solver (Algorithm 1)."""

import math

import pytest

from repro.algorithms.baselines import BaseOffSolver
from repro.algorithms.mcf_ltc import MCFLTCSolver
from repro.core.accuracy import ConstantAccuracy, TabularAccuracy
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point


class TestConstruction:
    def test_rejects_non_positive_batch_multiplier(self):
        with pytest.raises(ValueError):
            MCFLTCSolver(batch_multiplier=0.0)

    def test_name(self):
        assert MCFLTCSolver().name == "MCF-LTC"
        assert not MCFLTCSolver().is_online


class TestSolving:
    def test_completes_tiny_instance(self, tiny_instance):
        result = MCFLTCSolver().solve(tiny_instance)
        assert result.completed
        assert result.max_latency <= tiny_instance.num_workers
        assert result.arrangement.constraint_violations(
            tiny_instance.workers_by_index()) == []

    def test_completes_synthetic_instance(self, small_synthetic_instance):
        result = MCFLTCSolver().solve(small_synthetic_instance)
        assert result.completed
        assert result.arrangement.constraint_violations(
            small_synthetic_instance.workers_by_index()) == []

    def test_batch_sizes_follow_pseudocode(self, small_synthetic_instance):
        result = MCFLTCSolver().solve(small_synthetic_instance)
        instance = small_synthetic_instance
        expected_batch = math.floor(
            instance.num_tasks * math.ceil(instance.delta) / instance.capacity
        )
        assert result.extra["batch_size"] == float(max(1, expected_batch))
        assert result.extra["batches"] >= 1.0

    def test_flow_units_match_assignments(self, small_synthetic_instance):
        """Every unit of flow becomes an assignment; the greedy fill adds more."""
        result = MCFLTCSolver().solve(small_synthetic_instance)
        assert 0 < result.extra["flow_units"] <= result.num_assignments

    def test_batch_multiplier_changes_batching(self, small_synthetic_instance):
        small_batches = MCFLTCSolver(batch_multiplier=0.5).solve(small_synthetic_instance)
        large_batches = MCFLTCSolver(batch_multiplier=4.0).solve(small_synthetic_instance)
        assert small_batches.completed and large_batches.completed
        assert small_batches.extra["batches"] >= large_batches.extra["batches"]

    def test_spatial_index_toggle_gives_same_latency(self, small_synthetic_instance):
        indexed = MCFLTCSolver(use_spatial_index=True).solve(small_synthetic_instance)
        scanned = MCFLTCSolver(use_spatial_index=False).solve(small_synthetic_instance)
        assert indexed.max_latency == scanned.max_latency

    def test_incomplete_when_workers_insufficient(self):
        """With too few workers the solver reports (not raises) incompletion."""
        tasks = [Task.at(i, float(i), 0.0) for i in range(3)]
        workers = [Worker.at(1, 0, 0, accuracy=0.9, capacity=1)]
        instance = LTCInstance(tasks=tasks, workers=workers, error_rate=0.1,
                               accuracy_model=ConstantAccuracy(0.9))
        result = MCFLTCSolver().solve(instance)
        assert not result.completed
        assert result.workers_observed == 1

    def test_greedy_fill_uses_spare_capacity(self):
        """Workers left under capacity by the flow get topped up greedily.

        One task, delta = 1 (epsilon = e^-0.5), two workers with capacity 2:
        the flow needs at most ceil(delta) = 1 assignment from the first
        worker, and the greedy fill must not add duplicate assignments or
        exceed capacity.
        """
        tasks = [Task.at(0, 0, 0), Task.at(1, 1, 0)]
        workers = [Worker.at(i, 0, 0, accuracy=0.9, capacity=2) for i in (1, 2)]
        instance = LTCInstance(tasks=tasks, workers=workers,
                               error_rate=math.exp(-0.5),
                               accuracy_model=ConstantAccuracy(0.9))
        result = MCFLTCSolver().solve(instance)
        assert result.completed
        assert result.arrangement.constraint_violations(
            instance.workers_by_index()) == []

    def test_uses_accuracy_to_reduce_worker_count(self):
        """MCF-LTC should prefer accurate workers within a batch.

        Task 0 can be completed by two very accurate workers or by three
        mediocre ones; the flow solution should pick the accurate pair, so
        the third worker is never needed.
        """
        table = {
            (1, 0): 0.97, (2, 0): 0.97, (3, 0): 0.80,
        }
        tasks = [Task.at(0, 0, 0)]
        workers = [Worker.at(i, 0, 0, accuracy=0.9, capacity=1) for i in (1, 2, 3)]
        instance = LTCInstance(tasks=tasks, workers=workers, error_rate=0.42,
                               accuracy_model=TabularAccuracy(table))
        # delta = 2 ln(1/0.42) ~= 1.735; two 0.97-workers give 2 * 0.883 = 1.77.
        result = MCFLTCSolver().solve(instance)
        assert result.completed
        assert result.max_latency == 2


class TestAgainstBaseline:
    def test_not_much_worse_than_baseoff_on_synthetic_data(self, small_synthetic_instance):
        """The paper reports MCF-LTC <= Base-off; allow a small tolerance."""
        mcf = MCFLTCSolver().solve(small_synthetic_instance)
        base = BaseOffSolver().solve(small_synthetic_instance)
        assert mcf.completed and base.completed
        assert mcf.max_latency <= base.max_latency * 1.25
