"""A minimal immutable 2-D point.

The paper places tasks and workers on a 1000x1000 grid where each cell is a
10 m x 10 m square; distances in the accuracy function are measured in grid
units.  A plain ``(x, y)`` tuple would work, but a tiny named type keeps call
sites readable and gives us a single place for distance helpers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable point in the plane.

    Coordinates are floats in the coordinate system chosen by the dataset
    (grid units for the synthetic data, scaled metres for the check-in data).
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (cheaper when only comparing)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def manhattan_distance_to(self, other: "Point") -> float:
        """L1 distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translate(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """Return the ``(x, y)`` tuple representation."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    @classmethod
    def origin(cls) -> "Point":
        """The point ``(0, 0)``."""
        return cls(0.0, 0.0)

    @classmethod
    def from_tuple(cls, xy: Tuple[float, float]) -> "Point":
        """Build a point from an ``(x, y)`` pair."""
        x, y = xy
        return cls(float(x), float(y))
