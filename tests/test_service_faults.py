"""Tests for deterministic fault injection (`repro.service.faults`).

Covers the schedule layer (validation, seeding, one-shot semantics), the
dispatcher hook points under each fault kind, the fail-fast discard
accounting, and the exception-safety of ``stop()``.
"""

import threading
import time

import pytest

from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.service import (
    FaultPlan,
    FaultSpec,
    InjectedShardCrash,
    ShardedDispatcher,
    ShardPlan,
    TransientSolverError,
)

BOUNDS = BoundingBox(0.0, 0.0, 2000.0, 2000.0)

#: City centres aligned with the cells of a 2x2 plan over BOUNDS.
CENTERS = [(500.0, 500.0), (1500.0, 500.0), (500.0, 1500.0), (1500.0, 1500.0)]


def campaign(cx, cy, tid0=0, num_tasks=3, spread=5.0):
    tasks = [
        Task(task_id=tid0 + i, location=Point(cx + spread * i, cy))
        for i in range(num_tasks)
    ]
    workers = [Worker(index=1, location=Point(cx, cy), accuracy=0.9, capacity=2)]
    return LTCInstance(tasks=tasks, workers=workers, error_rate=0.2)


def city_worker(index, city=0):
    cx, cy = CENTERS[city]
    return Worker(index=index, location=Point(cx, cy), accuracy=0.9, capacity=2)


def shard0_worker(index):
    return city_worker(index, city=0)


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="explode", shard_id=0, at_arrival=1)
        with pytest.raises(ValueError):
            FaultSpec(kind="crash", shard_id=-1, at_arrival=1)
        with pytest.raises(ValueError):
            FaultSpec(kind="crash", shard_id=0, at_arrival=0)
        with pytest.raises(ValueError):
            FaultSpec(kind="transient", shard_id=0, at_arrival=1, failures=0)

    def test_plan_rejects_ambiguous_schedules(self):
        crash = FaultSpec(kind="crash", shard_id=0, at_arrival=5)
        stall = FaultSpec(kind="stall", shard_id=0, at_arrival=5)
        with pytest.raises(ValueError):
            FaultPlan(faults=(crash, stall))

    def test_seeded_plans_are_deterministic(self):
        kwargs = dict(
            shard_ids=[0, 1, 2], max_arrival=50, crashes=2, transients=2,
            stalls=1, transient_failures=3,
        )
        first = FaultPlan.seeded(42, **kwargs)
        second = FaultPlan.seeded(42, **kwargs)
        assert first == second
        assert len(first.faults) == 5
        for spec in first.faults:
            assert spec.shard_id in (0, 1, 2)
            assert 1 <= spec.at_arrival <= 50
        assert {s.kind for s in first.faults} == {"crash", "transient", "stall"}
        assert FaultPlan.seeded(43, **kwargs) != first

    def test_seeded_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.seeded(1, shard_ids=[], max_arrival=10)
        with pytest.raises(ValueError):
            FaultPlan.seeded(1, shard_ids=[0], max_arrival=0)
        with pytest.raises(ValueError):
            FaultPlan.seeded(1, shard_ids=[0], max_arrival=2, crashes=3)

    def test_for_shard_sorts_by_ordinal(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="crash", shard_id=0, at_arrival=9),
            FaultSpec(kind="transient", shard_id=0, at_arrival=3),
            FaultSpec(kind="crash", shard_id=1, at_arrival=1),
        ))
        assert [s.at_arrival for s in plan.for_shard(0)] == [3, 9]
        assert plan.shard_ids == [0, 1]


class TestFaultInjector:
    def test_crash_is_one_shot(self):
        injector = FaultPlan(
            faults=(FaultSpec(kind="crash", shard_id=0, at_arrival=2),)
        ).injector()
        assert injector.begin_arrival(0) == 1
        injector.raise_for(0, 1, 0)  # no fault at ordinal 1
        ordinal = injector.begin_arrival(0)
        with pytest.raises(InjectedShardCrash):
            injector.raise_for(0, ordinal, 0)
        # Consumed before raising: a replayed attempt does not crash again.
        injector.raise_for(0, ordinal, 0)

    def test_transient_fails_then_passes(self):
        injector = FaultPlan(faults=(
            FaultSpec(kind="transient", shard_id=0, at_arrival=1, failures=2),
        )).injector()
        ordinal = injector.begin_arrival(0)
        for attempt in range(2):
            with pytest.raises(TransientSolverError):
                injector.raise_for(0, ordinal, attempt)
        injector.raise_for(0, ordinal, 2)  # passes, consuming the fault
        injector.raise_for(0, ordinal, 0)  # and stays consumed

    def test_ordinals_are_per_shard(self):
        injector = FaultPlan().injector()
        assert injector.begin_arrival(3) == 1
        assert injector.begin_arrival(3) == 2
        assert injector.begin_arrival(7) == 1

    def test_stall_activates_and_releases(self):
        injector = FaultPlan(
            faults=(FaultSpec(kind="stall", shard_id=1, at_arrival=2),)
        ).injector()
        assert not injector.stall_active(1, processed=1)
        assert injector.stall_active(1, processed=2)
        assert injector.stall_active(1, processed=5)
        assert not injector.stall_active(0, processed=99)
        injector.release_stalls(shard_id=1)
        assert not injector.stall_active(1, processed=5)
        assert injector.wait_stall_release(1, processed=5, timeout=0.01)


@pytest.fixture
def plan():
    return ShardPlan(BOUNDS, cols=2, rows=2)


class TestFailFast:
    def test_serial_crash_raises_and_accounts(self, plan):
        faults = FaultPlan(
            faults=(FaultSpec(kind="crash", shard_id=0, at_arrival=3),)
        )
        dispatcher = ShardedDispatcher(plan, executor="serial", faults=faults)
        dispatcher.submit_instance(campaign(*CENTERS[0]))
        dispatcher.feed_worker(shard0_worker(1))
        dispatcher.feed_worker(shard0_worker(2))
        with pytest.raises(InjectedShardCrash):
            dispatcher.feed_worker(shard0_worker(3))
        status = {s.shard_id: s for s in dispatcher.shard_status()}
        assert status[0].state == "failed"
        assert "InjectedShardCrash" in status[0].last_error
        assert status[1].state == "live"
        # Subsequent arrivals routed to the dead shard are discarded and
        # counted, instead of silently vanishing.
        dispatcher.feed_worker(shard0_worker(4))
        assert dispatcher.discarded_total == 1
        assert {s.shard_id: s.arrivals_discarded
                for s in dispatcher.shard_status()}[0] == 1
        dispatcher.stop()

    def test_thread_crash_parks_error_until_drain(self, plan):
        faults = FaultPlan(
            faults=(FaultSpec(kind="crash", shard_id=0, at_arrival=2),)
        )
        dispatcher = ShardedDispatcher(
            plan, executor="thread", queue_capacity=64, faults=faults
        )
        dispatcher.submit_instance(campaign(*CENTERS[0]))
        for index in range(1, 5):
            dispatcher.feed_worker(shard0_worker(index))
        with pytest.raises(InjectedShardCrash):
            dispatcher.drain(timeout=5.0)
        dispatcher.stop()

    def test_fail_fast_keeps_no_journal(self, plan):
        dispatcher = ShardedDispatcher(plan, executor="serial")
        dispatcher.submit_instance(campaign(*CENTERS[0]))
        dispatcher.feed_worker(shard0_worker(1))
        assert all(s.journal_entries == 0 for s in dispatcher.shard_status())
        dispatcher.stop()

    def test_fault_plan_must_fit_the_shard_plan(self, plan):
        faults = FaultPlan(
            faults=(FaultSpec(kind="crash", shard_id=17, at_arrival=1),)
        )
        with pytest.raises(ValueError):
            ShardedDispatcher(plan, faults=faults)


class TestStalls:
    def test_serial_stall_builds_backlog_then_drains(self, plan):
        faults = FaultPlan(
            faults=(FaultSpec(kind="stall", shard_id=0, at_arrival=2),)
        )
        injector = faults.injector()
        dispatcher = ShardedDispatcher(
            plan, executor="serial", queue_capacity=64, faults=injector
        )
        dispatcher.submit_instance(campaign(*CENTERS[0]))
        for index in range(1, 6):
            dispatcher.feed_worker(shard0_worker(index))
        status = {s.shard_id: s for s in dispatcher.shard_status()}
        assert status[0].arrivals_processed == 2
        assert status[0].queue_depth == 3  # stalled backlog
        assert not dispatcher.drain(timeout=0.05)
        injector.release_stalls()
        assert dispatcher.drain()
        assert dispatcher.metrics.workers_fed == 5
        dispatcher.stop()

    def test_thread_stall_blocks_then_releases(self, plan):
        faults = FaultPlan(
            faults=(FaultSpec(kind="stall", shard_id=0, at_arrival=1),)
        )
        injector = faults.injector()
        dispatcher = ShardedDispatcher(
            plan, executor="thread", queue_capacity=64, faults=injector
        )
        dispatcher.submit_instance(campaign(*CENTERS[0]))
        for index in range(1, 4):
            dispatcher.feed_worker(shard0_worker(index))
        assert not dispatcher.drain(timeout=0.2)
        injector.release_stalls()
        assert dispatcher.drain(timeout=5.0)
        assert dispatcher.metrics.workers_fed == 3
        dispatcher.stop()

    def test_stop_releases_stalls(self, plan):
        faults = FaultPlan(
            faults=(FaultSpec(kind="stall", shard_id=0, at_arrival=1),)
        )
        dispatcher = ShardedDispatcher(
            plan, executor="thread", queue_capacity=64, faults=faults
        )
        dispatcher.submit_instance(campaign(*CENTERS[0]))
        for index in range(1, 4):
            dispatcher.feed_worker(shard0_worker(index))
        dispatcher.stop()  # must not hang on the stalled shard
        assert dispatcher.metrics.workers_fed == 3


class TestStopExceptionSafety:
    def test_stop_cleans_up_before_reraising(self, plan):
        """stop(drain=True) must close queues and join threads even when
        draining re-raises a parked shard error (the half-alive bug)."""
        faults = FaultPlan(
            faults=(FaultSpec(kind="crash", shard_id=0, at_arrival=1),)
        )
        dispatcher = ShardedDispatcher(
            plan, executor="thread", queue_capacity=64, faults=faults
        )
        dispatcher.submit_instance(campaign(*CENTERS[0]))
        dispatcher.feed_worker(shard0_worker(1))
        with pytest.raises(InjectedShardCrash):
            dispatcher.stop()
        # The runtime is fully stopped despite the exception ...
        for runtime in dispatcher._shards.values():
            assert runtime.queue.closed
            if runtime.thread is not None:
                assert not runtime.thread.is_alive()
        with pytest.raises(RuntimeError):
            dispatcher.feed_worker(shard0_worker(2))
        # ... and a second stop() is a clean no-op.
        dispatcher.stop()


class TestDrainDeadline:
    def test_drain_timeout_is_a_shared_budget(self, plan):
        """The timeout bounds the whole drain, not each shard's join.

        Four stalled shards under the old per-shard semantics would take
        up to 4x the timeout; the shared deadline returns within ~one.
        """
        faults = FaultPlan(faults=tuple(
            FaultSpec(kind="stall", shard_id=shard, at_arrival=1)
            for shard in range(4)
        ))
        injector = faults.injector()
        dispatcher = ShardedDispatcher(
            plan, executor="thread", queue_capacity=64, faults=injector
        )
        for i, (cx, cy) in enumerate(CENTERS):
            dispatcher.submit_instance(campaign(cx, cy, tid0=100 * i))
        # Two arrivals per shard: one processes, one sits behind the stall.
        index = 0
        for city in range(4):
            for _ in range(2):
                index += 1
                dispatcher.feed_worker(city_worker(index, city=city))
        timeout = 0.5
        started = time.monotonic()
        assert not dispatcher.drain(timeout=timeout)
        elapsed = time.monotonic() - started
        assert elapsed < timeout * 2.5  # well under the 4x worst case
        injector.release_stalls()
        assert dispatcher.drain(timeout=5.0)
        dispatcher.stop()
