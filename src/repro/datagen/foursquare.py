"""Foursquare-like check-in stream generator (Table V substitution).

The paper's real-data experiments replay Foursquare check-ins from New York
(|T| = 3717 POI tasks, |W| = 227 428 check-ins) and Tokyo (|T| = 9317,
|W| = 573 703), ordering workers chronologically by check-in time and drawing
historical accuracies from Normal(0.86, 0.05).  The raw dataset cannot be
shipped with this library, so this module generates a statistically similar
stream:

* a set of Gaussian **hotspots** stands in for the city's dense check-in
  areas (popularity follows a Zipf-like law, as observed for POI check-ins);
* each check-in picks a hotspot by popularity and a location around it;
* check-in times are drawn uniformly over the observation window and the
  stream is sorted chronologically, which is how the paper derives worker
  arrival order;
* POI tasks are placed near hotspots, restricted to the convex hull of the
  check-ins (the paper's construction), and rejection-sampled so that each
  task has enough eligible workers to be completable.

City presets :data:`NEW_YORK` and :data:`TOKYO` reproduce Table V's
cardinalities at a configurable ``scale`` (``scale=1.0`` gives the paper's
sizes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from repro.core.accuracy import SigmoidDistanceAccuracy
from repro.core.instance import LTCInstance
from repro.core.quality_threshold import MIN_WORKER_ACCURACY
from repro.core.task import Task
from repro.core.worker import Worker
from repro.datagen.distributions import AccuracyDistribution, NormalAccuracy
from repro.datagen.rng import generator_for
from repro.geo.bbox import BoundingBox
from repro.geo.grid_index import GridIndex
from repro.geo.hull import convex_hull, point_in_convex_polygon
from repro.geo.point import Point


@dataclass
class CheckinCityConfig:
    """Parameters of a Foursquare-like city check-in stream."""

    city: str
    num_tasks: int
    num_workers: int
    capacity: int = 6
    error_rate: float = 0.14
    accuracy_distribution: AccuracyDistribution = field(default_factory=NormalAccuracy)
    #: Side length of the square region covering the city, in grid units
    #: (10 m each, as in the synthetic setting).
    region_size: float = 3000.0
    d_max: float = 30.0
    #: Number of dense check-in neighbourhoods.  ``0`` (the default) derives
    #: it from the task count so that each neighbourhood holds roughly twice
    #: a worker's capacity in POI tasks — the regime in which both the long
    #: completion tails and the contention between open tasks (what separates
    #: the algorithms) survive scaling.
    num_hotspots: int = 0
    #: Standard deviation of check-in scatter around a hotspot, grid units.
    hotspot_spread: float = 40.0
    #: Zipf-like exponent of hotspot (neighbourhood) popularity.  Check-in
    #: activity across city neighbourhoods is heavily skewed — a downtown
    #: core absorbs most check-ins while outer neighbourhoods see a trickle —
    #: and that skew is what produces the paper's long completion tails on
    #: the real data, so the default is deliberately steep.
    popularity_exponent: float = 2.0
    #: POI tasks scatter around hotspot centres more tightly than check-ins
    #: (POIs line the core streets of a neighbourhood; people check in from a
    #: wider area around them).  The task scatter is
    #: ``hotspot_spread * poi_spread_factor``.
    poi_spread_factor: float = 0.4
    #: Length of the simulated observation window, seconds.
    observation_window: float = 180 * 24 * 3600.0
    seed: int = 0
    max_placement_attempts: int = 80
    min_eligible_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_tasks < 1 or self.num_workers < 1:
            raise ValueError("num_tasks and num_workers must be >= 1")
        if self.num_hotspots < 0:
            raise ValueError("num_hotspots must be >= 0 (0 = derive from tasks)")
        if not 0.0 < self.error_rate < 1.0:
            raise ValueError("error_rate must be in (0, 1)")
        if self.region_size <= 0 or self.d_max <= 0 or self.hotspot_spread <= 0:
            raise ValueError("region_size, d_max and hotspot_spread must be positive")

    def resolved_num_hotspots(self) -> int:
        """The hotspot count, deriving the default from the task count."""
        if self.num_hotspots > 0:
            return self.num_hotspots
        return max(3, self.num_tasks // (2 * self.capacity))

    def scaled(self, scale: float) -> "CheckinCityConfig":
        """A copy with task/worker counts (and area) scaled down.

        Worker *density* is preserved by shrinking the region's side length
        with the square root of the scale, so the latency behaviour of the
        algorithms is comparable to the full-size city.
        """
        if not 0 < scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        side_factor = math.sqrt(scale)
        return replace(
            self,
            num_tasks=max(1, int(self.num_tasks * scale)),
            num_workers=max(1, int(self.num_workers * scale)),
            region_size=self.region_size * side_factor,
            # Leave num_hotspots at its configured value; the default (0)
            # re-derives it from the scaled task count, preserving the number
            # of POI tasks per neighbourhood.
        )


#: Table V, New York: 3717 tasks, 227 428 check-ins.
NEW_YORK = CheckinCityConfig(
    city="New York", num_tasks=3717, num_workers=227428, region_size=3500.0,
    seed=11,
)

#: Table V, Tokyo: 9317 tasks, 573 703 check-ins.
TOKYO = CheckinCityConfig(
    city="Tokyo", num_tasks=9317, num_workers=573703, region_size=4500.0,
    seed=13,
)


def generate_checkin_instance(config: CheckinCityConfig) -> LTCInstance:
    """Generate a Foursquare-like LTC instance for ``config``."""
    hotspot_rng = generator_for(config.seed, config.city, "hotspots")
    checkin_rng = generator_for(config.seed, config.city, "checkins")
    task_rng = generator_for(config.seed, config.city, "tasks")

    bounds = BoundingBox.square(config.region_size)
    hotspots, popularity = _generate_hotspots(config, hotspot_rng, bounds)
    workers = _generate_checkins(config, checkin_rng, bounds, hotspots, popularity)
    tasks = _generate_pois(config, task_rng, bounds, hotspots, popularity, workers)

    return LTCInstance(
        tasks=tasks,
        workers=workers,
        error_rate=config.error_rate,
        accuracy_model=SigmoidDistanceAccuracy(d_max=config.d_max),
        name=f"checkins-{config.city.lower().replace(' ', '-')}",
    )


def _generate_hotspots(
    config: CheckinCityConfig, rng: np.random.Generator, bounds: BoundingBox
) -> tuple[List[Point], np.ndarray]:
    count = config.resolved_num_hotspots()
    margin = config.region_size * 0.1
    xs = rng.uniform(bounds.min_x + margin, bounds.max_x - margin, count)
    ys = rng.uniform(bounds.min_y + margin, bounds.max_y - margin, count)
    hotspots = [Point(float(x), float(y)) for x, y in zip(xs, ys)]
    ranks = np.arange(1, count + 1, dtype=float)
    weights = ranks ** (-config.popularity_exponent)
    popularity = weights / weights.sum()
    return hotspots, popularity


def _generate_checkins(
    config: CheckinCityConfig,
    rng: np.random.Generator,
    bounds: BoundingBox,
    hotspots: List[Point],
    popularity: np.ndarray,
) -> List[Worker]:
    count = config.num_workers
    hotspot_choice = rng.choice(len(hotspots), size=count, p=popularity)
    offsets_x = rng.normal(0.0, config.hotspot_spread, size=count)
    offsets_y = rng.normal(0.0, config.hotspot_spread, size=count)
    accuracies = config.accuracy_distribution.sample(rng, count)
    times = np.sort(rng.uniform(0.0, config.observation_window, size=count))

    workers: List[Worker] = []
    for i in range(count):
        hotspot = hotspots[int(hotspot_choice[i])]
        location = bounds.clamp(
            Point(hotspot.x + float(offsets_x[i]), hotspot.y + float(offsets_y[i]))
        )
        workers.append(
            Worker(
                index=i + 1,
                location=location,
                accuracy=float(accuracies[i]),
                capacity=config.capacity,
                arrival_time=float(times[i]),
                metadata={"hotspot": int(hotspot_choice[i])},
            )
        )
    return workers


def _generate_pois(
    config: CheckinCityConfig,
    rng: np.random.Generator,
    bounds: BoundingBox,
    hotspots: List[Point],
    popularity: np.ndarray,
    workers: List[Worker],
) -> List[Task]:
    hull = convex_hull([worker.location for worker in workers])
    model = SigmoidDistanceAccuracy(d_max=config.d_max)

    worker_grid: GridIndex[int] = GridIndex(
        bounds.expanded(config.d_max), max(config.d_max, 1.0)
    )
    for worker in workers:
        worker_grid.insert(worker.index, worker.location)

    minimum = config.min_eligible_workers
    if minimum is None:
        minimum = int(math.ceil(2.0 * math.log(1.0 / config.error_rate) / 0.3))

    tasks: List[Task] = []
    for task_id in range(config.num_tasks):
        best_location: Optional[Point] = None
        best_count = -1
        for _ in range(config.max_placement_attempts):
            # POIs are spread across all neighbourhoods (uniform over
            # hotspots) while check-ins concentrate in the popular ones; the
            # resulting worker-starved neighbourhoods are what drives the
            # long completion tails seen in the paper's real-data plots.
            hotspot = hotspots[int(rng.integers(len(hotspots)))]
            poi_spread = config.hotspot_spread * config.poi_spread_factor
            candidate = bounds.clamp(
                Point(
                    hotspot.x + float(rng.normal(0.0, poi_spread)),
                    hotspot.y + float(rng.normal(0.0, poi_spread)),
                )
            )
            if len(hull) >= 3 and not point_in_convex_polygon(candidate, hull):
                continue
            count = _eligible_count(candidate, workers, worker_grid, model)
            if count > best_count:
                best_count = count
                best_location = candidate
            if count >= minimum:
                break
        if best_location is None:
            # Extremely unlikely: every attempt fell outside the hull.  Place
            # the task at the most popular hotspot, which is certainly inside.
            best_location = hotspots[0]
            best_count = _eligible_count(best_location, workers, worker_grid, model)
        tasks.append(
            Task(
                task_id=task_id,
                location=best_location,
                true_answer=1 if rng.random() < 0.5 else -1,
                metadata={
                    "city": config.city,
                    "eligible_workers_at_generation": best_count,
                },
            )
        )
    return tasks


def _eligible_count(
    location: Point,
    workers: List[Worker],
    worker_grid: GridIndex[int],
    model: SigmoidDistanceAccuracy,
) -> int:
    probe = Task(task_id=0, location=location)
    count = 0
    for index in worker_grid.query_radius(location, model.d_max + 5.0):
        if model.accuracy(workers[index - 1], probe) >= MIN_WORKER_ACCURACY:
            count += 1
    return count
