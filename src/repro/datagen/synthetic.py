"""Synthetic workload generator (Table IV).

The paper's synthetic data places tasks and workers uniformly at random on a
1000 x 1000 grid (each cell a 10 m x 10 m square), draws historical
accuracies from a normal or uniform distribution, fixes the capacity ``K``
and tolerable error rate ``epsilon``, and uses ``d_max = 30`` grid units in
the accuracy function.

The generator reproduces that setting with two practical additions:

* a configurable ``grid_size`` so scaled-down instances (which pure Python
  needs for the larger sweeps) keep the same *worker density per eligibility
  disk* as the paper;
* optional feasibility-aware task placement: task locations are
  rejection-sampled until at least ``min_eligible_workers`` workers can
  perform them, mirroring the paper's assumption that every task can reach
  the tolerable error rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.accuracy import SigmoidDistanceAccuracy
from repro.core.instance import LTCInstance
from repro.core.quality_threshold import MIN_WORKER_ACCURACY, quality_threshold
from repro.core.task import Task
from repro.core.worker import Worker
from repro.datagen.distributions import AccuracyDistribution, NormalAccuracy
from repro.datagen.rng import generator_for
from repro.geo.bbox import BoundingBox
from repro.geo.grid_index import GridIndex
from repro.geo.point import Point


@dataclass
class SyntheticConfig:
    """Parameters of a synthetic LTC instance (Table IV).

    The paper's defaults are ``num_tasks=3000``, ``num_workers=40000``,
    ``capacity=6``, ``error_rate=0.14``, normal accuracy with mean 0.86 and
    ``grid_size=1000``; those remain the defaults here.  Scaled-down
    experiment configurations override the cardinalities and the grid size
    together (see ``repro.experiments.configs``).
    """

    num_tasks: int = 3000
    num_workers: int = 40000
    capacity: int = 6
    error_rate: float = 0.14
    accuracy_distribution: AccuracyDistribution = field(default_factory=NormalAccuracy)
    grid_size: float = 1000.0
    d_max: float = 30.0
    seed: int = 0
    #: Minimum number of eligible workers a task location must have; ``None``
    #: derives a value from delta assuming mid-range Acc* contributions.
    min_eligible_workers: Optional[int] = None
    #: How many candidate locations to try per task before giving up and
    #: accepting the best one found.
    max_placement_attempts: int = 60
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if self.num_tasks < 1 or self.num_workers < 1:
            raise ValueError("num_tasks and num_workers must be >= 1")
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 < self.error_rate < 1.0:
            raise ValueError("error_rate must be in (0, 1)")
        if self.grid_size <= 0 or self.d_max <= 0:
            raise ValueError("grid_size and d_max must be positive")

    @property
    def delta(self) -> float:
        """The quality threshold implied by the error rate."""
        return quality_threshold(self.error_rate)

    def resolved_min_eligible_workers(self) -> int:
        """The feasibility floor on eligible workers per task.

        Assuming nearby workers contribute around ``Acc* ~ 0.4`` each and can
        spread their capacity over several tasks, requiring
        ``ceil(delta / 0.3)`` eligible workers per task gives a comfortable
        margin without distorting the uniform placement at paper scale
        (where ~100 workers are eligible per task on average).
        """
        if self.min_eligible_workers is not None:
            return self.min_eligible_workers
        return int(math.ceil(self.delta / 0.3))


def generate_synthetic_instance(config: SyntheticConfig) -> LTCInstance:
    """Generate a synthetic LTC instance according to ``config``."""
    worker_rng = generator_for(config.seed, config.name, "workers")
    task_rng = generator_for(config.seed, config.name, "tasks")
    answer_rng = generator_for(config.seed, config.name, "answers")

    bounds = BoundingBox.square(config.grid_size)
    workers = _generate_workers(config, worker_rng, bounds)
    worker_index = _index_workers(workers, bounds, config.d_max)
    tasks = _generate_tasks(config, task_rng, answer_rng, bounds, workers, worker_index)

    return LTCInstance(
        tasks=tasks,
        workers=workers,
        error_rate=config.error_rate,
        accuracy_model=SigmoidDistanceAccuracy(d_max=config.d_max),
        name=config.name,
    )


def _generate_workers(
    config: SyntheticConfig, rng: np.random.Generator, bounds: BoundingBox
) -> List[Worker]:
    xs = rng.uniform(bounds.min_x, bounds.max_x, size=config.num_workers)
    ys = rng.uniform(bounds.min_y, bounds.max_y, size=config.num_workers)
    accuracies = config.accuracy_distribution.sample(rng, config.num_workers)
    workers = [
        Worker(
            index=i + 1,
            location=Point(float(xs[i]), float(ys[i])),
            accuracy=float(accuracies[i]),
            capacity=config.capacity,
            arrival_time=float(i),
        )
        for i in range(config.num_workers)
    ]
    return workers


def _index_workers(
    workers: List[Worker], bounds: BoundingBox, d_max: float
) -> GridIndex[int]:
    grid: GridIndex[int] = GridIndex(bounds.expanded(d_max), max(d_max, 1.0))
    for worker in workers:
        grid.insert(worker.index, worker.location)
    return grid


def _eligible_worker_count(
    location: Point,
    workers: List[Worker],
    worker_index: GridIndex[int],
    d_max: float,
) -> int:
    """How many workers could perform a task at ``location``."""
    model = SigmoidDistanceAccuracy(d_max=d_max)
    count = 0
    for index in worker_index.query_radius(location, d_max + 5.0):
        worker = workers[index - 1]
        if model.accuracy(worker, Task(task_id=0, location=location)) >= MIN_WORKER_ACCURACY:
            count += 1
    return count


def _generate_tasks(
    config: SyntheticConfig,
    rng: np.random.Generator,
    answer_rng: np.random.Generator,
    bounds: BoundingBox,
    workers: List[Worker],
    worker_index: GridIndex[int],
) -> List[Task]:
    minimum = config.resolved_min_eligible_workers()
    tasks: List[Task] = []
    for task_id in range(config.num_tasks):
        best_location: Optional[Point] = None
        best_count = -1
        for _ in range(config.max_placement_attempts):
            candidate = Point(
                float(rng.uniform(bounds.min_x, bounds.max_x)),
                float(rng.uniform(bounds.min_y, bounds.max_y)),
            )
            count = _eligible_worker_count(candidate, workers, worker_index, config.d_max)
            if count > best_count:
                best_count = count
                best_location = candidate
            if count >= minimum:
                break
        assert best_location is not None
        true_answer = 1 if answer_rng.random() < 0.5 else -1
        tasks.append(
            Task(
                task_id=task_id,
                location=best_location,
                true_answer=true_answer,
                metadata={"eligible_workers_at_generation": best_count},
            )
        )
    return tasks
