"""Regenerates Fig. 4c/4g/4k of the paper: latency / runtime / memory vs the New York check-in stream.

The benchmark times the full regeneration (workload generation plus all five
algorithms across the sweep) and writes the rendered series to
``benchmarks/results/fig4_newyork.txt``.
"""

import pytest


@pytest.mark.benchmark(group="fig4_newyork")
def test_regenerate_fig4_newyork(benchmark, figure_runner):
    table = benchmark.pedantic(
        lambda: figure_runner("fig4_newyork"), rounds=1, iterations=1
    )
    assert len(table) > 0
    assert table.completion_rate() == 1.0
