"""Pluggable backends for the flow kernel's SSPA inner loop.

:func:`repro.flow.kernel.solve_mcf` validates arguments and prepares
potentials, then hands the augmentation loop to a **backend** — an
implementation of the :class:`~repro.flow.backends.base.KernelBackend`
contract.  Two ship with the package:

* ``"python"`` — the tuned pure-Python reference loop
  (:mod:`repro.flow.backends.python_backend`); always available.
* ``"numpy"`` — vectorized arc scans over the arena's CSR rows
  (:mod:`repro.flow.backends.numpy_backend`); available when numpy imports.

Selection, most specific wins:

1. an explicit ``backend=`` argument to ``solve_mcf`` (or the ``backend=``
   parameter of the ``MCF-LTC`` solver spec, e.g.
   ``"MCF-LTC?backend=numpy"``);
2. the ``REPRO_FLOW_BACKEND`` environment variable;
3. ``"auto"`` — numpy when available, otherwise python.

Unknown names raise ``KeyError`` with a did-you-mean suggestion (matching
the solver registry's behaviour); naming an unavailable backend explicitly
raises :class:`~repro.flow.exceptions.BackendUnavailableError` instead of
silently falling back.  All backends are bit-exact with one another — see
:mod:`repro.flow.backends.base` and ``docs/flow_kernel.md``.
"""

from __future__ import annotations

import difflib
import os
from typing import Dict, List, Optional, Union

from repro.flow.backends.base import KernelBackend
from repro.flow.backends.numpy_backend import NumpyBackend
from repro.flow.backends.python_backend import PythonBackend
from repro.flow.exceptions import BackendUnavailableError

#: Environment variable consulted when no explicit backend is named.
BACKEND_ENV_VAR = "REPRO_FLOW_BACKEND"

#: The resolver keyword for "pick the best available backend".
AUTO_BACKEND = "auto"

#: Anything the ``backend=`` arguments accept.
BackendLike = Union[KernelBackend, str, None]

_BACKENDS: Dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend, overwrite: bool = False) -> KernelBackend:
    """Register a backend instance under its ``name`` and return it.

    Raises ``ValueError`` for empty/reserved names (``"auto"`` is the
    resolver's keyword) or, unless ``overwrite`` is true, for a name that is
    already taken.  Registered backends must honour the bit-exactness
    contract of :class:`~repro.flow.backends.base.KernelBackend`.
    """
    name = backend.name
    if not name or name != name.strip():
        raise ValueError(
            f"backend name {name!r} is empty or has surrounding whitespace"
        )
    if name == AUTO_BACKEND:
        raise ValueError(
            f"backend name {AUTO_BACKEND!r} is reserved for auto-selection"
        )
    if not overwrite and name in _BACKENDS:
        raise ValueError(f"backend name {name!r} is already registered")
    _BACKENDS[name] = backend
    return backend


def get_backend(name: str) -> KernelBackend:
    """The registered backend called ``name`` (may be unavailable).

    Raises ``KeyError`` with a did-you-mean suggestion for unknown names.
    """
    try:
        return _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        close = difflib.get_close_matches(name, list(_BACKENDS), n=1, cutoff=0.5)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise KeyError(
            f"unknown flow backend {name!r}{hint}; known backends: {known}"
        ) from None


def registered_backends() -> List[str]:
    """Names of all registered backends, sorted (available or not)."""
    return sorted(_BACKENDS)


def available_backends() -> List[str]:
    """Names of the backends that can actually run here, sorted."""
    return sorted(
        name for name, backend in _BACKENDS.items() if backend.is_available()
    )


def default_backend_name() -> str:
    """What auto-selection currently resolves to."""
    return resolve_backend(AUTO_BACKEND).name


def resolve_backend(choice: BackendLike = None) -> KernelBackend:
    """Turn a backend choice into a runnable backend instance.

    ``choice`` may be a :class:`~repro.flow.backends.base.KernelBackend`
    (returned as-is), a registered name, ``"auto"``, or ``None``.  ``None``
    consults the ``REPRO_FLOW_BACKEND`` environment variable (read at call
    time, so tests and services can flip it) and falls back to ``"auto"``
    when the variable is unset or empty.  ``"auto"`` prefers numpy and
    falls back to the pure-Python backend when numpy is absent.

    Raises ``KeyError`` (with a did-you-mean hint) for unknown names and
    :class:`~repro.flow.exceptions.BackendUnavailableError` when an
    explicitly named backend cannot run in this environment.
    """
    if isinstance(choice, KernelBackend):
        return choice
    if choice is None:
        choice = os.environ.get(BACKEND_ENV_VAR) or AUTO_BACKEND
    if not isinstance(choice, str):
        raise TypeError(
            f"backend must be a name or KernelBackend, got {type(choice).__name__}"
        )
    if choice == AUTO_BACKEND:
        numpy_backend = _BACKENDS.get(NumpyBackend.name)
        if numpy_backend is not None and numpy_backend.is_available():
            return numpy_backend
        return _BACKENDS[PythonBackend.name]
    backend = get_backend(choice)
    if not backend.is_available():
        raise BackendUnavailableError(
            f"flow backend {choice!r} is registered but cannot run here "
            "(missing optional dependency?); available backends: "
            f"{', '.join(available_backends())}"
        )
    return backend


register_backend(PythonBackend())
register_backend(NumpyBackend())

__all__ = [
    "AUTO_BACKEND",
    "BACKEND_ENV_VAR",
    "BackendLike",
    "KernelBackend",
    "NumpyBackend",
    "PythonBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend",
]
