"""Candidate (assignable) tasks for a worker.

The paper's bound analysis assumes every *assigned* pair has a predicted
accuracy of at least the spam threshold (``Acc(w, t) >= 0.66``), which makes
``Acc*`` fall in ``[0.1, 1]`` (Theorem 2).  Under the default sigmoid
accuracy function this is equivalent to a distance cut-off around ``d_max``,
which is also how the evaluation section talks about "nearby" tasks for the
``Base-off`` and ``Random`` baselines.

The :class:`CandidateFinder` centralises this eligibility rule.  It is a
thin facade over the struct-of-arrays
:class:`~repro.core.candidate_engine.engine.CandidateEngine`: tasks are
snapshotted into flat coordinate arrays (CSR-grid-packed under the sigmoid
model), and queries run through a pluggable backend — scalar loops or
vectorized numpy passes — selected via the ``backend`` argument, the
``candidates=`` solver-spec parameter, or the ``REPRO_CANDIDATES_BACKEND``
environment variable.  All backends return identical candidates in
identical order, so the choice is purely a speed knob; see
``docs/candidates.md``.  (The pre-engine object-level scan survives as
:class:`~repro.core.candidates_legacy.LegacyCandidateFinder`, the
differential-test oracle.)

The facade is **long-lived**: :meth:`CandidateFinder.add_tasks` appends
newly posted tasks and :meth:`CandidateFinder.retire_tasks` tombstones
completed or expired ones, so a finder serving a stream (a dispatcher
session, an online solver) is built once and mutated in place instead of
being re-snapshotted per change.
"""

from __future__ import annotations

import math
from typing import (
    AbstractSet,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.accuracy import AccuracyModel
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker


def sigmoid_eligibility_radius(
    historical_accuracy: float, d_max: float, min_accuracy: float
) -> float:
    """Largest distance at which the sigmoid accuracy stays above a threshold.

    Solves ``p / (1 + exp(d - d_max)) >= min_accuracy`` for ``d``.  Returns a
    negative number when the worker can never reach the threshold (i.e. no
    task is eligible) and ``math.inf`` when every distance qualifies
    (``min_accuracy <= 0``); spatial indexes clamp the infinite case to
    their extent.
    """
    if min_accuracy <= 0:
        return math.inf
    ratio = historical_accuracy / min_accuracy - 1.0
    if ratio <= 0:
        return -1.0
    return d_max + math.log(ratio)


class CandidateFinder:
    """Answers "which tasks may this worker be assigned?".

    Parameters
    ----------
    instance:
        The LTC instance whose tasks are indexed.
    min_accuracy:
        Minimum predicted accuracy for a pair to be assignable.  Defaults to
        the instance's ``min_assignable_accuracy``.
    use_spatial_index:
        Build the CSR grid when the accuracy model is the sigmoid model.
        Disable to force the exhaustive scan (useful in tests).
    backend:
        Candidate-engine backend: a name (``"python"``, ``"numpy"``,
        ``"auto"``), a backend instance, or ``None`` to defer to the
        ``REPRO_CANDIDATES_BACKEND`` environment variable / auto-detection.
    """

    def __init__(
        self,
        instance: LTCInstance,
        min_accuracy: Optional[float] = None,
        use_spatial_index: bool = True,
        backend=None,
    ) -> None:
        from repro.core.candidate_engine import CandidateEngine

        self._model: AccuracyModel = instance.accuracy_model
        self._engine = CandidateEngine(
            instance,
            min_accuracy=min_accuracy,
            use_spatial_index=use_spatial_index,
            backend=backend,
        )

    @property
    def min_accuracy(self) -> float:
        """The eligibility threshold on predicted accuracy."""
        return self._engine.min_accuracy

    @property
    def engine(self):
        """The underlying :class:`~repro.core.candidate_engine.engine.CandidateEngine`.

        Solvers that need the bulk operations (``topk``, per-position state
        containers) reach through this instead of re-snapshotting the
        instance.
        """
        return self._engine

    @property
    def backend_name(self) -> str:
        """Name of the candidate backend answering this finder's queries."""
        return self._engine.backend.name

    def add_tasks(self, tasks: Sequence[Task]) -> None:
        """Append newly posted tasks to the live snapshot.

        New tasks take fresh engine positions (existing positions never
        move, so per-position solver state stays valid) and become
        immediately queryable; in grid mode they join the spill range
        until the engine's next threshold-triggered rebuild merges them
        into the CSR cells.  Raises ``ValueError`` on a task id already
        known to the snapshot, retired ones included.
        """
        self._engine.add_tasks(tasks)

    def retire_tasks(self, task_ids: Iterable[int]) -> None:
        """Tombstone completed or expired tasks.

        Retired tasks vanish from every subsequent query — candidate
        lists, ``eligible_pairs`` streams, ``topk`` selection,
        ``has_candidates`` — without any snapshot rebuild.  This replaces
        the per-solver completed-mask plumbing: a solver retires a task
        the moment its arrangement completes it, and every later query is
        automatically restricted to the open task set.  Retiring an
        already-retired task is a no-op; unknown ids raise ``KeyError``.
        """
        self._engine.retire_tasks(task_ids)

    def is_eligible(self, worker: Worker, task: Task) -> bool:
        """Whether ``worker`` may be assigned ``task``."""
        return self._model.accuracy(worker, task) >= self.min_accuracy - 1e-12

    def iter_candidates(
        self, worker: Worker, allowed_ids: Optional[AbstractSet[int]] = None
    ) -> Iterator[Task]:
        """Yield the worker's assignable tasks in ascending-id order.

        ``allowed_ids`` optionally restricts the yield to a task-id subset
        (e.g. the uncompleted tasks of a batch) so callers pay nothing for
        tasks they would filter out anyway.

        The two "no restriction set" spellings mean opposite things and are
        deliberately *not* interchangeable: ``allowed_ids=None`` means "no
        restriction — every eligible task qualifies", while an **empty set
        means "nothing is allowed" and yields no tasks at all** (the natural
        reading for a batch whose uncompleted-task set has drained).  Only
        ``None`` is the don't-care value; do not pass an empty set to mean
        "unrestricted".
        """
        if allowed_ids is not None and not allowed_ids:
            # Explicit empty restriction: nothing can qualify.
            return
        yield from self._engine.eligible_tasks(worker, allowed_ids)

    def eligible_pairs(
        self,
        workers: Iterable[Worker],
        allowed_ids: Optional[AbstractSet[int]] = None,
    ) -> Iterator[Tuple[Worker, Task]]:
        """Bulk-iterate every assignable ``(worker, task)`` pair.

        Pairs stream grouped by worker (in the given worker order) with
        tasks ascending by id inside each group — exactly the stable arc
        order the MCF-LTC reduction appends to the kernel arena.  The
        restriction set is converted to a position mask once for the whole
        batch, so vectorized backends filter it in-array.

        ``allowed_ids`` follows :meth:`iter_candidates` semantics:
        ``None`` leaves the task set unrestricted, while an empty set means
        "nothing is allowed" and yields no pairs for any worker.
        """
        return self._engine.eligible_pairs(workers, allowed_ids)

    def candidates(self, worker: Worker) -> List[Task]:
        """All tasks the worker may be assigned, in ascending task-id order."""
        return self._engine.eligible_tasks(worker)

    def has_candidates(self, worker: Worker) -> bool:
        """Whether at least one task is assignable to the worker.

        Short-circuits (scalar backend) or answers in one array pass
        (numpy backend) without building the candidate list — the cheap
        eligibility test for hot paths like the service layer's routing
        decision.
        """
        return self._engine.has_candidates(worker)

    def candidate_count_per_task(self) -> Dict[int, int]:
        """For every task, the number of workers eligible to perform it.

        Used by the ``Base-off`` baseline, which prioritises tasks with few
        remaining nearby workers, and by feasibility diagnostics.  Counts
        come from the unordered per-worker pool — no candidate list is
        materialised or sorted per worker.
        """
        return self._engine.candidate_counts()
