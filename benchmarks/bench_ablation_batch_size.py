"""Ablation: MCF-LTC batch-size multiplier (Sec. V-B1 discussion).

The paper observes that MCF-LTC's effectiveness is affected by its batch
size — with very large batches the flow may pick accurate workers with large
arrival indices, inflating the latency.  This ablation sweeps a multiplier on
the paper's batch size and regenerates the latency/runtime series for
MCF-LTC alone.
"""

import pytest


@pytest.mark.benchmark(group="ablation_batch_size")
def test_regenerate_ablation_batch_size(benchmark, figure_runner):
    table = benchmark.pedantic(
        lambda: figure_runner("ablation_batch_size"), rounds=1, iterations=1
    )
    assert set(table.algorithms()) == {"MCF-LTC"}
    assert table.completion_rate() == 1.0
    # Larger batches must never reduce the number of MCF iterations below 1.
    assert all(record.extra.get("batches", 1) >= 1 for record in table.records)
