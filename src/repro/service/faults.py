"""Deterministic, seeded fault injection for the sharded dispatch runtime.

Chaos testing a concurrent system is only useful if the chaos is
*reproducible*: a fault schedule that depends on wall-clock timing or
thread interleaving produces unreviewable flakes.  Every fault here is
therefore keyed on a **per-shard processed-arrival ordinal** — "crash
shard 2 on its 37th arrival" means the same thing under the serial and
the thread executor, on a laptop and in CI, because each shard's queue
is FIFO and its arrival sub-sequence is fixed by the router, not by
scheduling.

Three fault kinds are supported (:data:`FAULT_KINDS`):

* ``"crash"`` — the shard's dispatch loop raises
  :class:`InjectedShardCrash` *instead of* processing the arrival.  The
  arrival itself is not lost: under a journaling recovery policy it was
  journaled before the attempt, so a restart replays it.
* ``"transient"`` — the arrival's dispatch attempt raises
  :class:`TransientSolverError` for the first ``failures`` attempts and
  then succeeds, exercising the supervisor's bounded in-place retry.
* ``"stall"`` — the shard stops consuming its queue once ``at_arrival``
  arrivals have been processed, until :meth:`FaultInjector.release_stalls`
  is called (or the runtime stops).  Backlog and backpressure become
  observable without any sleeps.

A :class:`FaultPlan` is a frozen, validated schedule; build one by hand
or with :meth:`FaultPlan.seeded`.  The plan compiles to a
:class:`FaultInjector`, the small mutable object the
:class:`~repro.service.sharding.ShardedDispatcher` consults from its
hook points.  Faults are **one-shot**: once fired (or passed, for
transients) they never fire again, so journal replay after a crash does
not re-trigger the fault that caused it.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: The accepted fault kinds, in documentation order.
FAULT_KINDS: Tuple[str, ...] = ("crash", "transient", "stall")


class InjectedShardCrash(RuntimeError):
    """A deterministic crash injected into a shard's dispatch loop."""


class TransientSolverError(RuntimeError):
    """A retryable dispatch failure (injected or genuine).

    The shard supervisor retries the *same* arrival in place up to the
    recovery policy's ``transient_retries`` before escalating to the
    shard-failure path.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``at_arrival`` is the 1-based ordinal of the shard's processed
    arrivals: a ``"crash"``/``"transient"`` fault fires when the shard
    attempts its ``at_arrival``-th arrival; a ``"stall"`` fault activates
    once the shard has *completed* ``at_arrival`` arrivals.  ``failures``
    is how many consecutive attempts a ``"transient"`` fault fails before
    the arrival succeeds (ignored for the other kinds).
    """

    kind: str
    shard_id: int
    at_arrival: int
    failures: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.shard_id < 0:
            raise ValueError("fault shard_id must be non-negative")
        if self.at_arrival < 1:
            raise ValueError("at_arrival is a 1-based arrival ordinal (>= 1)")
        if self.failures < 1:
            raise ValueError("a transient fault must fail at least once")


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, validated schedule of :class:`FaultSpec` entries.

    At most one fault may target a given ``(shard_id, at_arrival)`` point
    — an ambiguous schedule cannot be deterministic.
    """

    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        seen: Set[Tuple[int, int]] = set()
        for spec in self.faults:
            key = (spec.shard_id, spec.at_arrival)
            if key in seen:
                raise ValueError(
                    f"two faults target shard {spec.shard_id} at arrival "
                    f"{spec.at_arrival}; fault plans must be unambiguous"
                )
            seen.add(key)

    @property
    def shard_ids(self) -> List[int]:
        """Shards this plan touches (sorted, deduplicated)."""
        return sorted({spec.shard_id for spec in self.faults})

    def for_shard(self, shard_id: int) -> List[FaultSpec]:
        """The faults scheduled for one shard, by arrival ordinal."""
        return sorted(
            (spec for spec in self.faults if spec.shard_id == shard_id),
            key=lambda spec: spec.at_arrival,
        )

    def injector(self) -> "FaultInjector":
        """Compile the plan into a fresh runtime injector."""
        return FaultInjector(self)

    @classmethod
    def seeded(
        cls,
        seed: int,
        shard_ids: Sequence[int],
        max_arrival: int,
        crashes: int = 1,
        transients: int = 0,
        stalls: int = 0,
        transient_failures: int = 1,
    ) -> "FaultPlan":
        """A deterministic plan drawn from ``seed``.

        Places ``crashes`` + ``transients`` + ``stalls`` faults on
        distinct ``(shard, at_arrival)`` points with shards drawn from
        ``shard_ids`` and ordinals from ``1..max_arrival``.  The same
        seed always yields the same plan (the RNG is string-seeded and
        private to this call).
        """
        if not shard_ids:
            raise ValueError("seeded fault plans need at least one shard id")
        if max_arrival < 1:
            raise ValueError("max_arrival must be at least 1")
        total = crashes + transients + stalls
        if total > len(shard_ids) * max_arrival:
            raise ValueError(
                f"cannot place {total} faults on "
                f"{len(shard_ids) * max_arrival} distinct (shard, arrival) points"
            )
        rng = random.Random(f"{seed}-fault-plan")
        kinds = ["crash"] * crashes + ["transient"] * transients + ["stall"] * stalls
        taken: Set[Tuple[int, int]] = set()
        specs: List[FaultSpec] = []
        for kind in kinds:
            while True:
                point = (rng.choice(list(shard_ids)), rng.randint(1, max_arrival))
                if point not in taken:
                    taken.add(point)
                    break
            specs.append(
                FaultSpec(
                    kind=kind,
                    shard_id=point[0],
                    at_arrival=point[1],
                    failures=transient_failures if kind == "transient" else 1,
                )
            )
        return cls(faults=tuple(specs))


@dataclass
class _StallState:
    """Runtime state of one scheduled stall."""

    after_arrivals: int
    released: bool = False


class FaultInjector:
    """The mutable runtime consulted by the dispatcher's hook points.

    Thread-safe.  One injector serves one :class:`ShardedDispatcher` run;
    build a fresh one (``plan.injector()``) per run — fired faults are
    consumed.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        self._lock = threading.Lock()
        self._ordinals: Dict[int, int] = {}
        self._scheduled: Dict[Tuple[int, int], FaultSpec] = {
            (spec.shard_id, spec.at_arrival): spec
            for spec in plan.faults
            if spec.kind in ("crash", "transient")
        }
        self._consumed: Set[Tuple[int, int]] = set()
        self._stalls: Dict[int, List[_StallState]] = {}
        self._stall_released: Dict[int, threading.Event] = {}
        for spec in plan.faults:
            if spec.kind == "stall":
                self._stalls.setdefault(spec.shard_id, []).append(
                    _StallState(after_arrivals=spec.at_arrival)
                )
                self._stall_released.setdefault(spec.shard_id, threading.Event())

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    # ------------------------------------------------------- crash/transient

    def begin_arrival(self, shard_id: int) -> int:
        """Claim the next 1-based arrival ordinal for ``shard_id``.

        Called once per *live* arrival attempt (journal replay bypasses
        the injector, so replayed arrivals do not advance the ordinal —
        the schedule stays aligned with the offered stream).
        """
        with self._lock:
            self._ordinals[shard_id] = self._ordinals.get(shard_id, 0) + 1
            return self._ordinals[shard_id]

    def raise_for(self, shard_id: int, ordinal: int, attempt: int) -> None:
        """Fire the fault scheduled at this arrival, if any.

        ``attempt`` is 0-based: a transient fault with ``failures=f``
        raises on attempts ``0..f-1`` and passes (consuming itself) on
        attempt ``f``.  Crash faults consume themselves *before* raising,
        so a restarted shard does not crash again on replay.
        """
        with self._lock:
            key = (shard_id, ordinal)
            spec = self._scheduled.get(key)
            if spec is None or key in self._consumed:
                return
            if spec.kind == "crash":
                self._consumed.add(key)
                raise InjectedShardCrash(
                    f"injected crash: shard {shard_id}, arrival {ordinal}"
                )
            if attempt < spec.failures:
                raise TransientSolverError(
                    f"injected transient dispatch failure: shard {shard_id}, "
                    f"arrival {ordinal}, attempt {attempt + 1}/{spec.failures}"
                )
            self._consumed.add(key)

    # ---------------------------------------------------------------- stalls

    def stall_active(self, shard_id: int, processed: int) -> bool:
        """Whether ``shard_id`` should pause consumption right now."""
        with self._lock:
            return any(
                not stall.released and processed >= stall.after_arrivals
                for stall in self._stalls.get(shard_id, ())
            )

    def wait_stall_release(
        self, shard_id: int, processed: int, timeout: Optional[float] = None
    ) -> bool:
        """Block while a stall is active for ``shard_id`` (thread executor).

        Returns ``True`` once no stall is active (possibly immediately),
        ``False`` on timeout.
        """
        event = self._stall_released.get(shard_id)
        while self.stall_active(shard_id, processed):
            if event is None or not event.wait(timeout=timeout):
                return False
        return True

    def release_stalls(self, shard_id: Optional[int] = None) -> None:
        """Release active stalls (all shards, or one); wakes blocked loops."""
        with self._lock:
            targets = (
                self._stalls.keys() if shard_id is None else
                [shard_id] if shard_id in self._stalls else []
            )
            for sid in list(targets):
                for stall in self._stalls[sid]:
                    stall.released = True
                self._stall_released[sid].set()
