"""Registry of solvers keyed by the names used in the paper's figures.

The experiment harness and benchmarks refer to solvers by name ("MCF-LTC",
"Base-off", "Random", "LAF", "AAM"); this module maps those names to
factories so configuration stays declarative.  Additional solvers (ablation
variants, user extensions) can be registered at runtime.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.algorithms.aam import AAMSolver, LGFOnlySolver, LRFOnlySolver
from repro.algorithms.base import Solver
from repro.algorithms.baselines import BaseOffSolver, RandomOnlineSolver
from repro.algorithms.exact import ExactSolver
from repro.algorithms.laf import LAFSolver
from repro.algorithms.mcf_ltc import MCFLTCSolver

SolverFactory = Callable[[], Solver]

#: The five algorithms compared throughout the paper's evaluation, in the
#: order the figures list them.
DEFAULT_SOLVER_NAMES: List[str] = ["Base-off", "MCF-LTC", "Random", "LAF", "AAM"]

_REGISTRY: Dict[str, SolverFactory] = {}


def register_solver(name: str, factory: SolverFactory, overwrite: bool = False) -> None:
    """Register a solver factory under ``name``.

    Raises ``ValueError`` when the name is taken and ``overwrite`` is false.
    """
    if not overwrite and name in _REGISTRY:
        raise ValueError(f"solver name {name!r} is already registered")
    _REGISTRY[name] = factory


def get_solver(name: str) -> Solver:
    """Instantiate the solver registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown solver {name!r}; known solvers: {known}") from None
    return factory()


def available_solvers() -> List[str]:
    """Names of all registered solvers, sorted."""
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    register_solver("MCF-LTC", MCFLTCSolver)
    register_solver("Base-off", BaseOffSolver)
    register_solver("Random", RandomOnlineSolver)
    register_solver("LAF", LAFSolver)
    register_solver("AAM", AAMSolver)
    register_solver("Exact", ExactSolver)
    register_solver("LGF-only", LGFOnlySolver)
    register_solver("LRF-only", LRFOnlySolver)


_register_builtins()
