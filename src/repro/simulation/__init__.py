"""Simulation and measurement harness.

The experiment pipeline is: generate an instance (``repro.datagen``), run a
solver on it while metering runtime and memory (``metrics``), optionally
record the arrival-by-arrival trace of an online solver (``engine``), repeat
and aggregate (``runner`` / ``results``).
"""

from repro.simulation.metrics import SolveMeasurement, measure_solver
from repro.simulation.engine import OnlineSimulation, ArrivalEvent, SimulationOutcome
from repro.simulation.results import ExperimentRecord, ResultTable, FIGURE_METRICS
from repro.simulation.runner import ExperimentRunner

__all__ = [
    "SolveMeasurement",
    "measure_solver",
    "OnlineSimulation",
    "ArrivalEvent",
    "SimulationOutcome",
    "ExperimentRecord",
    "ResultTable",
    "FIGURE_METRICS",
    "ExperimentRunner",
]
