"""Service layer: serving many LTC instances from one worker stream.

This package is the first step toward the roadmap's heavy-traffic serving
story.  It builds on the incremental :class:`~repro.core.session.Session`
protocol: the :class:`LTCDispatcher` multiplexes many concurrent named
sessions, routes each arriving worker to the sessions it is eligible for
(a geographic proximity test under the paper's sigmoid accuracy model),
and aggregates throughput/latency metrics across the fleet of sessions.

See ``examples/dispatch_service.py`` for an end-to-end scenario serving
three concurrent campaigns from a single merged check-in stream.
"""

from repro.service.dispatcher import (
    DuplicateSessionError,
    LTCDispatcher,
    SessionStatus,
    UnknownSessionError,
)
from repro.service.metrics import DispatcherMetrics

__all__ = [
    "LTCDispatcher",
    "SessionStatus",
    "DispatcherMetrics",
    "DuplicateSessionError",
    "UnknownSessionError",
]
