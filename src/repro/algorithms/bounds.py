"""Latency bounds (Theorem 2) and McNaughton-style scheduling.

Theorem 2 of the paper bounds the optimal maximum latency of an offline LTC
instance, assuming |T| >= K and every assignable pair has Acc* in
[0.1, 1]:

    lower bound:  |T| * delta / K
    upper bound:  10 * |T| * delta / K + |T| / K + 1

The proof relies on McNaughton's rule: when every worker is equally accurate
on every task (Acc* = r for all pairs), an optimal arrangement uses
max(ceil(|T| * ceil(delta / r) / K), ceil(delta / r)) workers and can be
built greedily by "wrapping" tasks across workers.  Both the bounds and the
constructive schedule are exposed here; MCF-LTC uses the lower bound as its
batch size and the test-suite uses the schedule to validate the bound
formulas.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.core.instance import LTCInstance
from repro.core.quality_threshold import MIN_ACC_STAR, quality_threshold


def latency_lower_bound(num_tasks: int, delta: float, capacity: int) -> float:
    """Theorem 2's lower bound ``|T| * delta / K`` on the optimal latency."""
    _check_bound_args(num_tasks, delta, capacity)
    return num_tasks * delta / capacity


def latency_upper_bound(
    num_tasks: int,
    delta: float,
    capacity: int,
    min_acc_star: float = MIN_ACC_STAR,
) -> float:
    """Theorem 2's upper bound on the optimal latency.

    With the paper's default ``min_acc_star = 0.1`` this is
    ``10 * |T| * delta / K + |T| / K + 1``; the general form replaces the
    factor 10 by ``1 / min_acc_star``.
    """
    _check_bound_args(num_tasks, delta, capacity)
    if not 0 < min_acc_star <= 1:
        raise ValueError("min_acc_star must be in (0, 1]")
    factor = 1.0 / min_acc_star
    return factor * num_tasks * delta / capacity + num_tasks / capacity + 1.0


def instance_bounds(instance: LTCInstance) -> Tuple[float, float]:
    """Lower and upper latency bounds for a concrete instance."""
    delta = instance.delta
    return (
        latency_lower_bound(instance.num_tasks, delta, instance.capacity),
        latency_upper_bound(instance.num_tasks, delta, instance.capacity),
    )


def mcnaughton_latency(
    num_tasks: int, delta: float, capacity: int, acc_star: float
) -> int:
    """Optimal latency when every pair has the same ``Acc* = acc_star``.

    ``max(ceil(|T| * ceil(delta / acc_star) / K), ceil(delta / acc_star))``:
    each task needs ``ceil(delta / acc_star)`` workers, a worker serves at
    most ``K`` distinct tasks, and no worker may serve the same task twice.
    """
    _check_bound_args(num_tasks, delta, capacity)
    if not 0 < acc_star <= 1:
        raise ValueError("acc_star must be in (0, 1]")
    per_task = math.ceil(delta / acc_star)
    return max(math.ceil(num_tasks * per_task / capacity), per_task)


def mcnaughton_schedule(
    num_tasks: int, delta: float, capacity: int, acc_star: float
) -> Dict[int, List[int]]:
    """A concrete optimal arrangement for the uniform-accuracy case.

    Returns a mapping ``worker_index -> [task_id, ...]`` using exactly
    :func:`mcnaughton_latency` workers.  Tasks are identified ``0..|T|-1``.
    The schedule fills workers round-robin ("wrapping" as in McNaughton's
    rule for identical machines) so that no worker repeats a task and no
    worker exceeds ``capacity``.
    """
    per_task = math.ceil(delta / acc_star)
    total_units = num_tasks * per_task
    num_workers = mcnaughton_latency(num_tasks, delta, capacity, acc_star)

    schedule: Dict[int, List[int]] = {index: [] for index in range(1, num_workers + 1)}
    # Hand out the j-th copy of every task before the (j+1)-th copy; walking
    # workers cyclically guarantees the same worker never sees a task twice
    # because a full cycle over the workers covers >= num_tasks slots.
    worker_cursor = 0
    for copy in range(per_task):
        for task_id in range(num_tasks):
            assigned = False
            attempts = 0
            while not attempts or attempts <= num_workers:
                worker_index = (worker_cursor % num_workers) + 1
                worker_cursor += 1
                attempts += 1
                tasks_of_worker = schedule[worker_index]
                if len(tasks_of_worker) < capacity and task_id not in tasks_of_worker:
                    tasks_of_worker.append(task_id)
                    assigned = True
                    break
            if not assigned:
                raise RuntimeError(
                    "McNaughton schedule construction failed; "
                    f"copy {copy}, task {task_id}"
                )
    assert sum(len(tasks) for tasks in schedule.values()) == total_units
    return schedule


def _check_bound_args(num_tasks: int, delta: float, capacity: int) -> None:
    if num_tasks < 1:
        raise ValueError("num_tasks must be >= 1")
    if delta <= 0:
        raise ValueError("delta must be positive")
    if capacity < 1:
        raise ValueError("capacity must be >= 1")


def bounds_for_error_rate(
    num_tasks: int, error_rate: float, capacity: int
) -> Tuple[float, float]:
    """Convenience wrapper: bounds expressed in terms of epsilon."""
    delta = quality_threshold(error_rate)
    return (
        latency_lower_bound(num_tasks, delta, capacity),
        latency_upper_bound(num_tasks, delta, capacity),
    )
