"""Residual flow-network representation.

The network stores directed edges with integer capacities and real-valued
costs, together with their residual (reverse) twins.  Nodes are arbitrary
hashable labels so the MCF-LTC reduction can use worker/task objects (or
their ids) directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, List, Optional

Node = Hashable


@dataclass(slots=True)
class Edge:
    """A directed edge plus its residual state.

    ``flow`` is the amount currently pushed along the edge.  The residual
    capacity is ``capacity - flow``; the paired reverse edge exposes the same
    flow with the opposite sign through :attr:`residual_capacity`.
    """

    head: Node
    tail: Node
    capacity: int
    cost: float
    flow: int = 0
    is_residual: bool = False
    _twin: Optional["Edge"] = field(default=None, repr=False, compare=False)

    @property
    def residual_capacity(self) -> int:
        """How much additional flow this edge can carry."""
        return self.capacity - self.flow

    @property
    def twin(self) -> "Edge":
        """The paired reverse edge."""
        if self._twin is None:
            raise RuntimeError("edge has no twin; was it added through FlowNetwork?")
        return self._twin

    def push(self, amount: int) -> None:
        """Push ``amount`` units of flow along this edge."""
        if amount < 0:
            raise ValueError("flow amount must be non-negative")
        if amount > self.residual_capacity:
            raise ValueError(
                f"cannot push {amount} units over residual capacity "
                f"{self.residual_capacity}"
            )
        self.flow += amount
        self.twin.flow -= amount


class FlowNetwork:
    """A directed graph with capacities and costs for min-cost-flow solving.

    Edges are added with :meth:`add_edge`, which also creates the residual
    twin.  The adjacency structure exposes both forward and residual edges,
    which is what SSPA's shortest-path searches operate on.
    """

    def __init__(self) -> None:
        self._adjacency: Dict[Node, List[Edge]] = {}

    def add_node(self, node: Node) -> None:
        """Register ``node`` (idempotent)."""
        self._adjacency.setdefault(node, [])

    def add_edge(self, tail: Node, head: Node, capacity: int, cost: float) -> Edge:
        """Add a forward edge ``tail -> head`` and its residual twin.

        Returns the forward edge.  Capacities must be non-negative integers;
        costs may be any finite float (the LTC reduction uses negative costs).
        """
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if int(capacity) != capacity:
            raise ValueError("capacity must be an integer")
        self.add_node(tail)
        self.add_node(head)
        forward = Edge(head=head, tail=tail, capacity=int(capacity), cost=float(cost))
        backward = Edge(
            head=tail,
            tail=head,
            capacity=0,
            cost=-float(cost),
            is_residual=True,
        )
        forward._twin = backward
        backward._twin = forward
        self._adjacency[tail].append(forward)
        self._adjacency[head].append(backward)
        return forward

    @property
    def nodes(self) -> List[Node]:
        """All registered nodes."""
        return list(self._adjacency.keys())

    def __contains__(self, node: Node) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def edges_from(self, node: Node) -> List[Edge]:
        """Forward and residual edges leaving ``node``."""
        return self._adjacency.get(node, [])

    def forward_edges(self) -> Iterator[Edge]:
        """Iterate over every non-residual edge in the network."""
        for edges in self._adjacency.values():
            for edge in edges:
                if not edge.is_residual:
                    yield edge

    def total_cost(self) -> float:
        """Total cost of the current flow (sum of cost * flow on forward edges)."""
        return sum(edge.cost * edge.flow for edge in self.forward_edges())

    def outflow(self, node: Node) -> int:
        """Net flow leaving ``node`` over forward edges minus flow entering it."""
        net = 0
        for other_edges in self._adjacency.values():
            for edge in other_edges:
                if edge.is_residual:
                    continue
                if edge.tail == node:
                    net += edge.flow
                if edge.head == node:
                    net -= edge.flow
        return net

    def reset_flow(self) -> None:
        """Zero out the flow on every edge."""
        for edges in self._adjacency.values():
            for edge in edges:
                edge.flow = 0
