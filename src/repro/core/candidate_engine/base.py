"""The contract every candidate-engine backend implements.

A backend answers the candidate-generation queries of a
:class:`~repro.core.candidate_engine.engine.CandidateEngine` — "which task
positions may this worker be assigned?", "does the worker have any
candidate at all?", "what are the worker's best-``k`` assignable tasks
under this scoring rule?" — over the engine's struct-of-arrays task
snapshot.  Everything that is *state* (the flat coordinate arrays, the
CSR-packed grid, the accuracy model, the eligibility threshold) lives on
the engine; a backend is stateless between calls and only decides *how*
the arrays are traversed.

The conformance bar matches the flow kernel's
(:mod:`repro.flow.backends.base`): **every backend must produce identical
results**, down to ordering.  Concretely:

* :meth:`CandidateBackend.eligible_positions` with ``ordered=True``
  returns positions ascending by task id for grid-mode engines and
  posting order for scan-mode engines — exactly the pre-engine
  ``CandidateFinder`` iteration orders;
* every query filters **tombstoned positions** (the engine's ``alive``
  mask; see :meth:`~repro.core.candidate_engine.engine.CandidateEngine.retire_tasks`)
  out of its candidate pool *before* the accuracy evaluation, and
  grid-mode pools are the CSR cells **plus the spill range**
  ``[engine.spill_start, engine.num_tasks)`` of positions appended
  since the last grid rebuild;
* the eligibility decision is pinned to the scalar expression
  ``Acc(w, t) >= min_accuracy - 1e-12`` with ``Acc`` evaluated by the
  pure-python :meth:`~repro.core.candidate_engine.engine.CandidateEngine.scalar_accuracy`
  path.  A vectorized backend may evaluate accuracies its own way **only
  outside the decision band** (:data:`DECISION_BAND` around the
  threshold, far wider than any accumulated float divergence); inside the
  band it must re-check sequentially with the scalar path;
* :meth:`CandidateBackend.topk` returns positions in the exact pop order
  of a :class:`~repro.structures.topk.TopKHeap` fed the *scalar* scores
  in candidate order (largest score first; ties favour the
  earlier-pushed, i.e. lower-id, task).  A vectorized backend may use its
  own score evaluations to *preselect* a superset — any candidate within
  :data:`TOPK_SCORE_MARGIN` of its approximate k-th best score must
  survive the cut — and then rescore that superset with the scalar path.

``docs/candidates.md`` derives why the band/margin constants are safe.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.candidate_engine.engine import CandidateEngine
    from repro.core.worker import Worker

#: The slack applied to the eligibility threshold, shared with
#: ``CandidateFinder.is_eligible`` (the decision is
#: ``accuracy >= min_accuracy - ELIGIBILITY_EPS``).
ELIGIBILITY_EPS = 1e-12

#: Half-width of the accuracy interval around the eligibility threshold in
#: which a vectorized backend must fall back to the scalar evaluation.
#: Vectorized and scalar sigmoid evaluations agree to ~1e-14 absolute
#: (accuracies live in [0, 1]); outside +-1e-9 their decisions provably
#: coincide, inside it the scalar path is authoritative.
DECISION_BAND = 1e-9

#: Score margin for vectorized top-k preselection: every candidate whose
#: approximate score is within this of the approximate k-th best must be
#: kept for the scalar rescoring pass.  Scores are ``Acc*`` values (or
#: remaining-need caps of similar magnitude), approximated to ~1e-14
#: absolute, so 1e-9 keeps every candidate the scalar heap could retain.
TOPK_SCORE_MARGIN = 1e-9

#: Scoring rules :meth:`CandidateBackend.topk` understands, matching the
#: three online greedy rules of the paper's Algorithms 2-3:
#: ``Acc*`` (LAF), ``min(Acc*, need)`` (LGF), ``need`` (LRF).
TOPK_MODES = ("acc_star", "gain", "need")


class CandidateBackendUnavailableError(RuntimeError):
    """An explicitly named candidate backend cannot run in this environment.

    Raised by :func:`repro.core.candidate_engine.resolve_candidate_backend`
    when a backend is registered but its optional dependency (numpy) is
    missing.  Auto selection never raises this — it falls back to the
    pure-python backend.
    """


class CandidateBackend(ABC):
    """One implementation of the candidate-generation queries.

    Subclasses register an instance with
    :func:`repro.core.candidate_engine.register_candidate_backend`; callers
    name backends (``backend="numpy"``, the ``REPRO_CANDIDATES_BACKEND``
    environment variable, or the ``candidates=`` solver-spec parameter) and
    :func:`~repro.core.candidate_engine.resolve_candidate_backend` hands
    out the shared instance.  Backends hold no per-engine state.
    """

    #: Registry name (what ``candidates=`` strings refer to).
    name: str = ""

    def is_available(self) -> bool:
        """Whether the backend can run in this environment.

        The default assumes no optional dependencies; the numpy backend
        overrides this.  Auto selection skips unavailable backends, while
        naming one explicitly raises
        :class:`CandidateBackendUnavailableError`.
        """
        return True

    # ----------------------------------------------------- state containers
    # Solvers keep per-task state (completed flags, remaining-need values)
    # in containers the backend can consume without conversion: plain lists
    # for the scalar backend, numpy arrays for the vectorized one.  Both
    # support the same element get/set syntax, so solver code is identical.

    def bool_array(self, size: int) -> Sequence[bool]:
        """A mutable all-``False`` per-position flag container."""
        return [False] * size

    def float_array(self, size: int, fill: float) -> Sequence[float]:
        """A mutable per-position float container, initialised to ``fill``."""
        return [fill] * size

    def grow_bool_array(self, array: Sequence[bool], size: int) -> Sequence[bool]:
        """``array`` extended with ``False`` entries up to ``size``.

        Positions are append-only (``CandidateEngine.add_tasks``), so
        growing a per-position container is a copy-and-extend; the slice
        assignment works for both list and ndarray layouts.
        """
        grown = self.bool_array(size)
        grown[: len(array)] = array
        return grown

    def grow_float_array(
        self, array: Sequence[float], size: int, fill: float
    ) -> Sequence[float]:
        """``array`` extended with ``fill`` entries up to ``size``."""
        grown = self.float_array(size, fill)
        grown[: len(array)] = array
        return grown

    # ------------------------------------------------------------- queries

    @abstractmethod
    def eligible_positions(
        self,
        engine: "CandidateEngine",
        worker: "Worker",
        allowed: Optional[Sequence[bool]] = None,
        ordered: bool = True,
    ) -> Sequence[int]:
        """Task positions the worker may be assigned.

        ``allowed`` optionally restricts the result by a per-position flag
        container (built with
        :meth:`~repro.core.candidate_engine.engine.CandidateEngine.make_allowed_mask`)
        *before* the accuracy check.  ``ordered=True`` returns the oracle
        iteration order (ascending position in grid mode, instance order in
        scan modes); ``ordered=False`` may return any order — callers that
        only count or test membership use it to skip the sort.
        """

    @abstractmethod
    def has_candidates(self, engine: "CandidateEngine", worker: "Worker") -> bool:
        """Whether at least one task is assignable to the worker."""

    @abstractmethod
    def topk(
        self,
        engine: "CandidateEngine",
        worker: "Worker",
        k: int,
        mode: str = "acc_star",
        completed: Optional[Sequence[bool]] = None,
        need: Optional[Sequence[float]] = None,
    ) -> List[int]:
        """The worker's best-``k`` assignable task positions, in pop order.

        ``mode`` picks the score (see :data:`TOPK_MODES`); ``completed``
        excludes finished tasks before scoring; ``need`` supplies the
        per-position remaining need ``delta - S[t]`` for the ``gain`` and
        ``need`` modes.  The returned order is the assignment order:
        largest scalar score first, ties broken towards the lower-id task.
        """

    def count_eligible(self, engine: "CandidateEngine") -> Sequence[int]:
        """Per-position eligible-worker counts over the whole instance.

        Used by ``candidate_count_per_task``: the unordered per-worker pool
        is enough, so no backend should pay for sorting here.
        """
        counts = [0] * engine.num_tasks
        for worker in engine.instance.workers:
            for position in self.eligible_positions(
                engine, worker, allowed=None, ordered=False
            ):
                counts[position] += 1
        return counts
