"""Crowd workers (Definition 2).

A worker ``w = <o_w, l_w, p_w, K>`` is the ``o_w``-th person to check in, at
location ``l_w``, with historical accuracy ``p_w`` and a capacity of at most
``K`` tasks per check-in.  Workers below the platform's minimum historical
accuracy (66% in the paper) are treated as spam and filtered out before an
instance is built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.quality_threshold import MIN_WORKER_ACCURACY
from repro.geo.point import Point


@dataclass(frozen=True, slots=True)
class Worker:
    """A crowd worker checking in at a location.

    Attributes
    ----------
    index:
        Arrival order ``o_w`` (1-based, matching the paper).  The latency of
        an arrangement is the largest index among the workers it uses.
    location:
        Check-in location ``l_w``.
    accuracy:
        Historical accuracy ``p_w`` in ``[MIN_WORKER_ACCURACY, 1]``.
    capacity:
        Maximum number of distinct tasks the worker will answer, ``K``.
    arrival_time:
        Optional wall-clock timestamp of the check-in (seconds).  Used only
        by the check-in data generator and reporting; the algorithms order
        workers by ``index``.
    metadata:
        Optional free-form attributes (home city, user id, ...).
    """

    index: int
    location: Point
    accuracy: float
    capacity: int
    arrival_time: float = 0.0
    # Excluded from equality/hashing, as for Task.metadata.
    metadata: Mapping[str, object] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError("worker index (arrival order) must be >= 1")
        if not 0.0 < self.accuracy <= 1.0:
            raise ValueError("historical accuracy must be in (0, 1]")
        if self.accuracy < MIN_WORKER_ACCURACY - 1e-12:
            raise ValueError(
                f"historical accuracy {self.accuracy:.3f} below the spam threshold "
                f"{MIN_WORKER_ACCURACY:.2f}; filter such workers before building an "
                "instance"
            )
        if self.capacity < 1:
            raise ValueError("capacity K must be >= 1")

    def distance_to(self, location: Point) -> float:
        """Euclidean distance from the worker's check-in to ``location``."""
        return self.location.distance_to(location)

    @classmethod
    def at(
        cls,
        index: int,
        x: float,
        y: float,
        accuracy: float,
        capacity: int,
        **kwargs: object,
    ) -> "Worker":
        """Convenience constructor from raw coordinates."""
        return cls(
            index=index,
            location=Point(float(x), float(y)),
            accuracy=accuracy,
            capacity=capacity,
            **kwargs,  # type: ignore[arg-type]
        )
