"""Tests for the Base-off and Random baselines."""

import pytest

from repro.algorithms.baselines import BaseOffSolver, RandomOnlineSolver
from repro.core.accuracy import TabularAccuracy
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point


class TestBaseOff:
    def test_completes_and_respects_constraints(self, small_synthetic_instance):
        result = BaseOffSolver().solve(small_synthetic_instance)
        assert result.completed
        assert result.arrangement.constraint_violations(
            small_synthetic_instance.workers_by_index()) == []

    def test_prioritises_scarce_tasks(self):
        """The task that only the first worker can perform must be served first."""
        table = {
            (1, 0): 0.95, (1, 1): 0.95,      # worker 1 can do both tasks
            (2, 1): 0.95,                    # later workers can only do task 1
            (3, 1): 0.95,
            (4, 1): 0.95,
            (5, 1): 0.95,
        }
        tasks = [Task.at(0, 0, 0), Task.at(1, 1, 0)]
        workers = [Worker.at(i, 0, 0, accuracy=0.9, capacity=1) for i in range(1, 6)]
        instance = LTCInstance(tasks=tasks, workers=workers, error_rate=0.67,
                               accuracy_model=TabularAccuracy(table, default=0.5))
        # delta = 2 ln(1/0.67) ~= 0.80, so one 0.95-accurate answer (Acc* =
        # 0.81) completes a task.  Worker 1 is the only worker that can ever
        # serve task 0, so scarcity must route worker 1 to task 0 even though
        # task 1 is equally accurate for it.
        result = BaseOffSolver().solve(instance)
        first_assignment = result.arrangement.assignments[0]
        assert first_assignment.worker_index == 1
        assert first_assignment.task_id == 0
        assert result.completed

    def test_offline_knowledge_is_fixed_at_start(self, small_synthetic_instance):
        """Two runs over the same instance give identical results (deterministic)."""
        first = BaseOffSolver().solve(small_synthetic_instance)
        second = BaseOffSolver().solve(small_synthetic_instance)
        assert first.max_latency == second.max_latency
        assert first.num_assignments == second.num_assignments

    def test_is_offline(self):
        assert not BaseOffSolver().is_online


class TestRandom:
    def test_completes_synthetic_instance(self, small_synthetic_instance):
        result = RandomOnlineSolver(seed=5).solve(small_synthetic_instance)
        assert result.completed
        assert result.arrangement.constraint_violations(
            small_synthetic_instance.workers_by_index()) == []

    def test_deterministic_given_seed(self, small_synthetic_instance):
        first = RandomOnlineSolver(seed=9).solve(small_synthetic_instance)
        second = RandomOnlineSolver(seed=9).solve(small_synthetic_instance)
        assert first.max_latency == second.max_latency

    def test_different_seeds_can_differ(self, small_synthetic_instance):
        latencies = {
            RandomOnlineSolver(seed=seed).solve(small_synthetic_instance).max_latency
            for seed in range(6)
        }
        # Not a hard guarantee, but over six seeds the naive baseline should
        # not be perfectly stable on a contended instance.
        assert len(latencies) >= 1

    def test_naive_variant_may_waste_capacity_on_completed_tasks(self, tiny_instance):
        """The paper's Random is naive: it does not check completion state."""
        naive = RandomOnlineSolver(seed=1, skip_completed=False).solve(tiny_instance)
        smart = RandomOnlineSolver(seed=1, skip_completed=True).solve(tiny_instance)
        assert naive.completed and smart.completed
        assert smart.max_latency <= naive.max_latency

    def test_observe_before_start_raises(self, tiny_instance):
        solver = RandomOnlineSolver()
        with pytest.raises(RuntimeError):
            solver.observe(tiny_instance.worker(1))

    def test_skip_completed_variant_only_assigns_open_tasks(self, tiny_instance):
        solver = RandomOnlineSolver(seed=0, skip_completed=True)
        solver.start(tiny_instance)
        for worker in tiny_instance.workers:
            before_complete = set(
                task_id for task_id in (0, 1)
                if solver.arrangement.is_task_complete(task_id)
            )
            assignments = solver.observe(worker)
            for assignment in assignments:
                assert assignment.task_id not in before_complete
            if solver.is_complete():
                break
