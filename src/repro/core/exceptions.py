"""Exceptions for the LTC core."""


class LTCError(Exception):
    """Base class for all LTC-specific errors."""


class ConstraintViolation(LTCError):
    """An arrangement violates one of the LTC constraints."""


class CapacityExceeded(ConstraintViolation):
    """A worker was assigned more tasks than their capacity ``K``."""


class DuplicateAssignment(ConstraintViolation):
    """The same (worker, task) pair was assigned twice.

    The paper's capacity constraint counts distinct tasks per worker; a worker
    answering the same binary question twice adds no independent evidence, so
    duplicate assignments are rejected outright.
    """


class InfeasibleInstanceError(LTCError):
    """The available workers cannot complete every task.

    The paper assumes "all tasks can reach the tolerable error rate"
    (Sec. II-A); solvers raise this error when that assumption does not hold
    for the instance they were given instead of silently returning a partial
    arrangement.
    """
