"""Successive Shortest Path Algorithm (SSPA) for minimum-cost flow.

The paper solves each MCF-LTC batch with SSPA because it copes with
real-valued arc costs and many-to-many matchings (Sec. III).  This module
implements the textbook algorithm:

1. Compute initial node potentials with Bellman–Ford (the reduction's
   worker->task arcs carry negative costs, so Dijkstra cannot be used
   directly on the original costs).
2. Repeatedly find a shortest source->sink path in the residual network using
   Dijkstra over *reduced* costs (Johnson potentials), push as much flow as
   the path allows, and update the potentials.
3. Stop when the sink is unreachable or the requested amount of flow has been
   routed.

Because every augmenting path found this way is a minimum-cost path, the
resulting flow is a minimum-cost flow for the amount routed.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.flow.exceptions import InfeasibleFlowError, NegativeCycleError
from repro.flow.network import Edge, FlowNetwork

Node = Hashable

_INF = math.inf


@dataclass(slots=True)
class FlowResult:
    """Outcome of a min-cost-flow computation.

    Attributes
    ----------
    flow_value:
        Total units of flow routed from source to sink.
    total_cost:
        Sum of ``cost * flow`` over the forward edges.
    edge_flows:
        Mapping from ``(tail, head)`` to the flow routed on that forward
        edge.  Parallel edges are aggregated.
    augmentations:
        Number of augmenting paths used (useful for complexity diagnostics).
    """

    flow_value: int
    total_cost: float
    edge_flows: Dict[Tuple[Node, Node], int] = field(default_factory=dict)
    augmentations: int = 0

    def flow_on(self, tail: Node, head: Node) -> int:
        """Flow routed on the edge ``tail -> head`` (0 when absent)."""
        return self.edge_flows.get((tail, head), 0)


def _bellman_ford_potentials(network: FlowNetwork, source: Node) -> Dict[Node, float]:
    """Shortest-path distances from ``source`` usable as initial potentials.

    Runs over residual-capacity edges only.  Unreachable nodes keep an
    infinite potential, which effectively removes them from later Dijkstra
    passes.  Raises :class:`NegativeCycleError` if a negative cycle is
    reachable from the source.
    """
    distance: Dict[Node, float] = {node: _INF for node in network.nodes}
    distance[source] = 0.0
    nodes = network.nodes
    for iteration in range(len(nodes)):
        changed = False
        for node in nodes:
            d_node = distance[node]
            if d_node == _INF:
                continue
            for edge in network.edges_from(node):
                if edge.residual_capacity <= 0:
                    continue
                candidate = d_node + edge.cost
                if candidate < distance[edge.head] - 1e-12:
                    distance[edge.head] = candidate
                    changed = True
        if not changed:
            break
    else:
        # The loop ran |V| full iterations and still relaxed an edge.
        raise NegativeCycleError("negative-cost cycle reachable from the source")
    return distance


def _dijkstra_reduced(
    network: FlowNetwork,
    source: Node,
    sink: Node,
    potentials: Dict[Node, float],
) -> Tuple[Dict[Node, float], Dict[Node, Edge]]:
    """Shortest paths from ``source`` under reduced costs.

    Returns ``(distances, predecessor_edge)`` where distances are measured in
    reduced costs.  Nodes whose potential is infinite (unreachable in the
    original graph) are skipped.
    """
    distance: Dict[Node, float] = {source: 0.0}
    predecessor: Dict[Node, Edge] = {}
    visited: set[Node] = set()
    heap: List[Tuple[float, int, Node]] = [(0.0, 0, source)]
    counter = 1
    while heap:
        dist, _, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == sink:
            break
        node_potential = potentials.get(node, _INF)
        if node_potential == _INF:
            continue
        for edge in network.edges_from(node):
            if edge.residual_capacity <= 0:
                continue
            head_potential = potentials.get(edge.head, _INF)
            if head_potential == _INF:
                continue
            reduced = edge.cost + node_potential - head_potential
            # Floating-point noise can push a reduced cost slightly below 0.
            if reduced < 0:
                reduced = 0.0
            candidate = dist + reduced
            if candidate < distance.get(edge.head, _INF) - 1e-15:
                distance[edge.head] = candidate
                predecessor[edge.head] = edge
                heapq.heappush(heap, (candidate, counter, edge.head))
                counter += 1
    return distance, predecessor


def successive_shortest_paths(
    network: FlowNetwork,
    source: Node,
    sink: Node,
    max_flow: Optional[int] = None,
    require_max_flow: bool = False,
) -> FlowResult:
    """Compute a minimum-cost flow from ``source`` to ``sink``.

    Parameters
    ----------
    network:
        The flow network.  Flow already present on the edges is kept and the
        computation continues from it.
    source, sink:
        Endpoints of the flow.
    max_flow:
        Route at most this many units.  ``None`` routes as much flow as the
        network allows (a min-cost max-flow).
    require_max_flow:
        When true and ``max_flow`` is given, raise
        :class:`InfeasibleFlowError` if fewer units can be routed.

    Returns
    -------
    FlowResult
        The amount routed, its total cost and the per-edge flows.
    """
    if source not in network or sink not in network:
        raise ValueError("source and sink must be nodes of the network")
    if max_flow is not None and max_flow < 0:
        raise ValueError("max_flow must be non-negative")

    potentials = _bellman_ford_potentials(network, source)
    routed = 0
    augmentations = 0
    target = math.inf if max_flow is None else max_flow

    while routed < target:
        distance, predecessor = _dijkstra_reduced(network, source, sink, potentials)
        if sink not in distance:
            break

        # Update potentials so the next iteration's reduced costs stay
        # non-negative.  Nodes that were not reached (or whose tentative
        # distance exceeds the sink's) are advanced by the sink distance —
        # the standard trick that keeps reduced costs consistent when
        # Dijkstra terminates early at the sink.
        sink_distance = distance[sink]
        for node, node_potential in potentials.items():
            if node_potential == _INF:
                continue
            potentials[node] = node_potential + min(
                distance.get(node, sink_distance), sink_distance
            )

        # Find the bottleneck along the path sink -> source.
        bottleneck = target - routed
        node = sink
        while node != source:
            edge = predecessor[node]
            bottleneck = min(bottleneck, edge.residual_capacity)
            node = edge.tail
        bottleneck = int(bottleneck)
        if bottleneck <= 0:
            break

        # Push the flow.
        node = sink
        while node != source:
            edge = predecessor[node]
            edge.push(bottleneck)
            node = edge.tail

        routed += bottleneck
        augmentations += 1

    if require_max_flow and max_flow is not None and routed < max_flow:
        raise InfeasibleFlowError(
            f"only {routed} of the requested {max_flow} units could be routed"
        )

    edge_flows: Dict[Tuple[Node, Node], int] = {}
    for edge in network.forward_edges():
        if edge.flow > 0:
            key = (edge.tail, edge.head)
            edge_flows[key] = edge_flows.get(key, 0) + edge.flow

    return FlowResult(
        flow_value=routed,
        total_cost=network.total_cost(),
        edge_flows=edge_flows,
        augmentations=augmentations,
    )


def min_cost_flow(
    network: FlowNetwork, source: Node, sink: Node, amount: int
) -> FlowResult:
    """Route exactly ``amount`` units at minimum cost or raise.

    Convenience wrapper over :func:`successive_shortest_paths` with
    ``require_max_flow=True``.
    """
    return successive_shortest_paths(
        network, source, sink, max_flow=amount, require_max_flow=True
    )
