"""Tests for the solver registry."""

import pytest

from repro.algorithms.base import OfflineSolver, SolveResult
from repro.algorithms.registry import (
    DEFAULT_SOLVER_NAMES,
    available_solvers,
    get_solver,
    register_solver,
)


class TestRegistry:
    def test_paper_algorithms_are_registered(self):
        for name in DEFAULT_SOLVER_NAMES:
            solver = get_solver(name)
            assert solver.name == name

    def test_default_names_match_the_paper_figure_legend(self):
        assert DEFAULT_SOLVER_NAMES == ["Base-off", "MCF-LTC", "Random", "LAF", "AAM"]

    def test_extra_solvers_available(self):
        names = available_solvers()
        assert "Exact" in names
        assert "LGF-only" in names and "LRF-only" in names

    def test_get_solver_returns_fresh_instances(self):
        assert get_solver("LAF") is not get_solver("LAF")

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError) as excinfo:
            get_solver("does-not-exist")
        assert "known solvers" in str(excinfo.value)

    def test_unknown_name_suggests_the_closest_registered_name(self):
        with pytest.raises(KeyError) as excinfo:
            get_solver("MCF-LTD")
        message = str(excinfo.value)
        assert "did you mean 'MCF-LTC'?" in message
        assert "known solvers" in message

    def test_get_solver_accepts_spec_strings(self):
        solver = get_solver("MCF-LTC?batch_multiplier=2.0")
        assert solver.name == "MCF-LTC"
        assert solver.batch_multiplier == 2.0

    def test_entries_declare_parameters_and_capabilities(self):
        from repro.algorithms.registry import solver_entry

        mcf = solver_entry("MCF-LTC")
        assert "batch_multiplier" in mcf.parameters
        assert mcf.capabilities.supports_batch
        assert not mcf.capabilities.online

        aam = solver_entry("AAM")
        assert aam.capabilities.online
        assert not aam.capabilities.supports_batch

        random_entry = solver_entry("Random")
        assert random_entry.capabilities.randomized
        assert solver_entry("Exact").capabilities.exact

        described = mcf.describe()
        assert described["name"] == "MCF-LTC"
        assert "supports_batch" in described["capabilities"]

    def test_registering_spec_reserved_names_is_rejected(self):
        from repro.algorithms.baselines import BaseOffSolver

        for bad in ("My?Solver", "a&b", "a=b", "", "padded ", " padded"):
            with pytest.raises(ValueError):
                register_solver(bad, BaseOffSolver, overwrite=True)

    def test_register_custom_solver_and_overwrite_protection(self):
        class DummySolver(OfflineSolver):
            name = "Dummy-test-solver"

            def solve(self, instance):  # pragma: no cover - never called
                raise NotImplementedError

        register_solver("Dummy-test-solver", DummySolver, overwrite=True)
        assert "Dummy-test-solver" in available_solvers()
        with pytest.raises(ValueError):
            register_solver("Dummy-test-solver", DummySolver)
        # Clean up so repeated test runs in the same session stay consistent.
        register_solver("Dummy-test-solver", DummySolver, overwrite=True)

    def test_online_flags(self):
        assert get_solver("LAF").is_online
        assert get_solver("AAM").is_online
        assert get_solver("Random").is_online
        assert not get_solver("MCF-LTC").is_online
        assert not get_solver("Base-off").is_online
