"""The sharded dispatch runtime: one dispatcher per geographic shard.

:class:`ShardedDispatcher` scales the single-process
:class:`~repro.service.LTCDispatcher` by partitioning both campaigns and
worker traffic with a :class:`~repro.service.sharding.ShardPlan`:

* every campaign is pinned to one shard (the grid cell containing its
  reach box, or the overflow shard — see ``plan.py``);
* every arriving worker is routed to the geo shard covering its check-in
  location, plus the overflow shard whenever it has open sessions;
* each shard runs its own :class:`~repro.service.LTCDispatcher` behind a
  :class:`~repro.service.sharding.BoundedArrivalQueue`, drained either
  inline (the ``"serial"`` executor — deterministic, single-threaded) or
  by a dedicated thread per shard (the ``"thread"`` executor).

**Exactness.**  Because an eligible worker necessarily lies inside the
campaign's reach box, and the reach box lies inside the campaign's cell,
the shard covering the worker's location is the only geo shard that could
route it — so per-session routed sub-streams are *identical* to what the
single-process dispatcher would deliver, in the same per-session order
(each session lives on exactly one shard, whose queue is FIFO).  With a
lossless queue policy the final per-session arrangements are therefore
byte-identical to a single-process run, under both executors; the
differential suite enforces this.  Shedding policies (``drop-oldest`` /
``reject``) trade that guarantee for bounded lag under overload.

**Scaling.**  The single-process dispatcher pays one eligibility probe per
open session per arrival.  Sharding cuts that to the sessions of one shard
(plus overflow), so routing work per arrival drops by roughly the shard
count even single-threaded — that is the honest speedup the benchmark
measures with the ``"serial"`` executor; the ``"thread"`` executor adds
pipeline concurrency across shards on top.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.algorithms.base import Solver, SolveResult
from repro.algorithms.spec import SolverSpecLike
from repro.core.arrangement import Assignment
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.bbox import BoundingBox
from repro.service.dispatcher import (
    DuplicateSessionError,
    LTCDispatcher,
    SessionStatus,
    UnknownSessionError,
)
from repro.service.metrics import DispatcherMetrics
from repro.service.sharding.plan import ShardPlan, tasks_reach_bounds
from repro.service.sharding.queueing import BoundedArrivalQueue

#: The accepted executor names.
EXECUTORS = ("serial", "thread")


class ShardAffinityError(ValueError):
    """A campaign (or mid-stream task batch) does not fit its shard's cell."""


@dataclass(frozen=True)
class ShardStatus:
    """One shard's state as reported by :meth:`ShardedDispatcher.shard_status`."""

    shard_id: int
    #: The grid cell this shard covers; ``None`` for the overflow shard.
    cell: Optional[BoundingBox]
    session_ids: List[str]
    metrics: DispatcherMetrics
    queue_depth: int
    arrivals_accepted: int
    arrivals_shed: int
    arrivals_processed: int

    @property
    def is_overflow(self) -> bool:
        return self.cell is None


@dataclass
class _ShardRuntime:
    """One shard's dispatcher, queue, lock and (optional) drain thread."""

    shard_id: int
    dispatcher: LTCDispatcher
    queue: BoundedArrivalQueue
    #: Serialises dispatcher access between the drain loop and control-plane
    #: calls (submit/poll/close) arriving from other threads.
    lock: threading.Lock = field(default_factory=threading.Lock)
    thread: Optional[threading.Thread] = None
    #: Per-arrival routing latencies (seconds), recorded when enabled.
    latencies: List[float] = field(default_factory=list)
    error: Optional[BaseException] = None


class ShardedDispatcher:
    """Serves many campaigns from one worker stream across geographic shards.

    Parameters
    ----------
    plan:
        The :class:`~repro.service.sharding.ShardPlan` partitioning the
        region.  Every shard in the plan (geo cells + overflow) gets its
        own :class:`~repro.service.LTCDispatcher`.
    default_solver / candidates / keep_streams / clock:
        Forwarded to every per-shard dispatcher (see
        :class:`~repro.service.LTCDispatcher`); the clock is shared so
        per-shard busy-time metrics are comparable.
    executor:
        ``"serial"`` processes each arrival inline during
        :meth:`feed_worker` (deterministic; the exact-merge configuration),
        ``"thread"`` drains each shard's queue on its own thread.
    queue_capacity / queue_policy:
        Bound and backpressure policy of every shard's arrival queue (see
        :class:`~repro.service.sharding.BoundedArrivalQueue`).  Only the
        lossless ``"block"`` policy preserves byte-identity with a
        single-process dispatcher.
    autostart:
        Start the runtime on construction.  Pass ``False`` to enqueue
        traffic before any processing happens — tests use this to fill
        queues past capacity and trigger shed policies deterministically.
    record_latencies:
        Record one routing latency sample per processed arrival per shard
        (for p50/p99 reporting in the load harness).  Off by default to
        keep memory flat.
    """

    def __init__(
        self,
        plan: ShardPlan,
        default_solver: SolverSpecLike = "AAM",
        executor: str = "serial",
        queue_capacity: int = 1024,
        queue_policy: str = "block",
        keep_streams: bool = False,
        candidates: Optional[str] = None,
        clock: Optional[Callable[[], float]] = None,
        autostart: bool = True,
        record_latencies: bool = False,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of "
                f"{', '.join(EXECUTORS)}"
            )
        self._plan = plan
        self._executor = executor
        self._clock: Callable[[], float] = (
            clock if clock is not None else time.perf_counter
        )
        self._record_latencies = record_latencies
        self._shards: Dict[int, _ShardRuntime] = {
            shard_id: _ShardRuntime(
                shard_id=shard_id,
                dispatcher=LTCDispatcher(
                    default_solver=default_solver,
                    keep_streams=keep_streams,
                    candidates=candidates,
                    clock=self._clock,
                ),
                queue=BoundedArrivalQueue(queue_capacity, queue_policy),
            )
            for shard_id in plan.shard_ids
        }
        self._shard_of_session: Dict[str, int] = {}
        self._auto_id = 0
        self._arrivals_offered = 0
        self._control = threading.Lock()
        self._started = False
        self._stopped = False
        if autostart:
            self.start()

    # ------------------------------------------------------------ lifecycle

    @property
    def plan(self) -> ShardPlan:
        return self._plan

    @property
    def executor(self) -> str:
        return self._executor

    @property
    def started(self) -> bool:
        return self._started

    def start(self) -> None:
        """Start processing queued arrivals (idempotent).

        Under the ``"thread"`` executor this launches one drain thread per
        shard; under ``"serial"`` it drains any pre-queued backlog inline
        and marks the runtime live (subsequent :meth:`feed_worker` calls
        process inline).
        """
        if self._stopped:
            raise RuntimeError("a stopped ShardedDispatcher cannot be restarted")
        if self._started:
            return
        self._started = True
        if self._executor == "thread":
            for runtime in self._shards.values():
                thread = threading.Thread(
                    target=self._drain_loop,
                    args=(runtime,),
                    name=f"shard-{runtime.shard_id}",
                    daemon=True,
                )
                runtime.thread = thread
                thread.start()
        else:
            for runtime in self._shards.values():
                self._drain_inline(runtime)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until every accepted arrival has been processed.

        Under ``"serial"`` any backlog is processed inline first.  Returns
        whether the queues fully drained within ``timeout`` (always
        ``True`` for serial).  Re-raises the first error a shard loop hit.
        """
        if not self._started:
            raise RuntimeError("start() the ShardedDispatcher before drain()")
        if self._executor == "serial":
            for runtime in self._shards.values():
                self._drain_inline(runtime)
        drained = all(
            runtime.queue.join(timeout=timeout)
            for runtime in self._shards.values()
        )
        self._reraise_shard_errors()
        return drained

    def stop(self, drain: bool = True) -> None:
        """Stop the runtime: optionally drain, close queues, join threads.

        Idempotent.  After ``stop()`` the control plane (poll/close/result)
        keeps working, but further arrivals are refused.
        """
        if self._stopped:
            return
        if drain and self._started:
            self.drain()
        self._stopped = True
        for runtime in self._shards.values():
            runtime.queue.close()
        if self._executor == "thread" and self._started:
            for runtime in self._shards.values():
                if runtime.thread is not None:
                    runtime.thread.join()
        self._reraise_shard_errors()

    def _reraise_shard_errors(self) -> None:
        for runtime in self._shards.values():
            if runtime.error is not None:
                error, runtime.error = runtime.error, None
                raise error

    # ------------------------------------------------------------- sessions

    def submit_instance(
        self,
        instance: LTCInstance,
        solver: Union[SolverSpecLike, Solver, None] = None,
        session_id: Optional[str] = None,
        shard_id: Optional[int] = None,
    ) -> str:
        """Open a session for ``instance`` on its shard; return the id.

        The shard is chosen by the plan's reach-box containment rule
        (:meth:`~repro.service.sharding.ShardPlan.shard_for_instance`)
        unless ``shard_id`` overrides it — an override naming a geo shard
        is validated against the campaign's reach box
        (:class:`ShardAffinityError` if it does not fit that cell), the
        overflow shard accepts anything.  Session ids are unique across
        the *whole* runtime, not per shard.
        """
        with self._control:
            if session_id is None:
                self._auto_id += 1
                session_id = f"session-{self._auto_id}"
            if session_id in self._shard_of_session:
                raise DuplicateSessionError(
                    f"session id {session_id!r} is already in use"
                )
            if shard_id is None:
                shard_id = self._plan.shard_for_instance(instance)
            else:
                if shard_id not in self._shards:
                    raise ValueError(
                        f"shard id {shard_id} is not in the plan "
                        f"(0..{self._plan.overflow_shard})"
                    )
                cell = self._plan.cell(shard_id)
                if cell is not None:
                    reach = tasks_reach_bounds(instance)
                    if reach is None or not self._box_within(reach, cell):
                        raise ShardAffinityError(
                            f"campaign reach box does not fit shard {shard_id}'s "
                            "cell; pin it to the overflow shard instead"
                        )
            runtime = self._shards[shard_id]
            with runtime.lock:
                runtime.dispatcher.submit_instance(
                    instance, solver=solver, session_id=session_id
                )
            self._shard_of_session[session_id] = shard_id
            return session_id

    def submit_tasks(self, session_id: str, tasks: Sequence[Task]) -> str:
        """Post additional tasks to an open session mid-stream.

        For a session pinned to a geo shard the new tasks' reach box must
        still fit the shard's cell — sessions are never migrated live;
        :class:`ShardAffinityError` otherwise, with the dispatcher state
        untouched.  Overflow-shard sessions accept any tasks.
        """
        runtime = self._runtime_for(session_id)
        tasks = list(tasks)
        cell = self._plan.cell(runtime.shard_id)
        if cell is not None and tasks:
            with runtime.lock:
                instance = runtime.dispatcher.instance_of(session_id)
            reach = tasks_reach_bounds(instance, tasks)
            if reach is None or not self._box_within(reach, cell):
                raise ShardAffinityError(
                    f"mid-stream tasks for session {session_id!r} reach outside "
                    f"shard {runtime.shard_id}'s cell; sessions are pinned — "
                    "open a new campaign (or use the overflow shard) instead"
                )
        with runtime.lock:
            return runtime.dispatcher.submit_tasks(session_id, tasks)

    def expire_tasks(self, session_id: str, task_ids: Sequence[int]) -> List[int]:
        """Expire overdue tasks in an open session (the TTL sweep)."""
        runtime = self._runtime_for(session_id)
        with runtime.lock:
            return runtime.dispatcher.expire_tasks(session_id, task_ids)

    @property
    def session_ids(self) -> List[str]:
        """Ids of all open sessions, in submission order across shards."""
        return list(self._shard_of_session)

    def shard_of(self, session_id: str) -> int:
        """The shard a session is pinned to."""
        return self._runtime_for(session_id).shard_id

    @property
    def all_complete(self) -> bool:
        """Whether every open session has completed (vacuously true if none)."""
        return all(
            runtime.dispatcher.all_complete for runtime in self._shards.values()
        )

    # ------------------------------------------------------------ streaming

    def feed_worker(self, worker: Worker) -> Optional[Dict[str, List[Assignment]]]:
        """Route one arrival to its geo shard (and overflow, if populated).

        Under the ``"serial"`` executor (started) the arrival is processed
        inline and the merged per-session deliveries are returned, exactly
        like :meth:`LTCDispatcher.feed_worker`.  Under ``"thread"`` — or
        before :meth:`start` — the arrival is only enqueued and ``None``
        is returned; results surface through :meth:`poll` /
        :meth:`close` after :meth:`drain`.
        """
        if self._stopped:
            raise RuntimeError("the ShardedDispatcher is stopped")
        self._arrivals_offered += 1
        targets = [self._shards[self._plan.shard_of_point(worker.location)]]
        overflow = self._shards[self._plan.overflow_shard]
        if overflow.dispatcher.session_ids and overflow is not targets[0]:
            targets.append(overflow)
        for runtime in targets:
            runtime.queue.put(worker)
        if self._executor == "serial" and self._started:
            deliveries: Dict[str, List[Assignment]] = {}
            for runtime in targets:
                deliveries.update(self._drain_inline(runtime))
            return deliveries
        return None

    def feed_stream(self, workers, stop_when_all_complete: bool = False) -> int:
        """Feed a whole merged stream; return how many arrivals were offered.

        Early stop on ``all_complete`` is off by default: under the
        threaded executor completion lags the queues, so checking it
        per-arrival is racy; enable it only for serial runs that mirror
        :meth:`LTCDispatcher.feed_stream` semantics.
        """
        offered = 0
        for worker in workers:
            if stop_when_all_complete and self.all_complete:
                break
            self.feed_worker(worker)
            offered += 1
        return offered

    @property
    def arrivals_offered(self) -> int:
        """Arrivals offered to :meth:`feed_worker` (before any fan-out).

        The honest denominator for aggregate rates: a worker fanned out to
        its geo shard *and* the overflow shard counts once here but twice
        in the aggregate ``workers_fed``.
        """
        return self._arrivals_offered

    # ----------------------------------------------------------- inspection

    def poll(self) -> Dict[str, SessionStatus]:
        """Progress snapshots of every open session, across all shards."""
        statuses: Dict[str, SessionStatus] = {}
        for runtime in self._shards.values():
            with runtime.lock:
                statuses.update(runtime.dispatcher.poll())
        return statuses

    def shard_status(self) -> List[ShardStatus]:
        """Per-shard state: sessions, metrics, queue depth and shed counts."""
        statuses: List[ShardStatus] = []
        for shard_id, runtime in sorted(self._shards.items()):
            with runtime.lock:
                metrics = DispatcherMetrics.merged([runtime.dispatcher.metrics])
                session_ids = runtime.dispatcher.session_ids
            statuses.append(
                ShardStatus(
                    shard_id=shard_id,
                    cell=self._plan.cell(shard_id),
                    session_ids=session_ids,
                    metrics=metrics,
                    queue_depth=runtime.queue.size,
                    arrivals_accepted=runtime.queue.accepted,
                    arrivals_shed=runtime.queue.shed,
                    arrivals_processed=runtime.queue.processed,
                )
            )
        return statuses

    @property
    def metrics(self) -> DispatcherMetrics:
        """Aggregate roll-up of every shard's counters (a fresh object).

        Counters sum across shards; note ``workers_fed`` counts per-shard
        deliveries, so divide by :attr:`arrivals_offered` (not
        ``workers_fed``) for rates over offered traffic whenever the
        overflow shard is populated.
        """
        parts = []
        for runtime in self._shards.values():
            with runtime.lock:
                parts.append(DispatcherMetrics.merged([runtime.dispatcher.metrics]))
        return DispatcherMetrics.merged(parts)

    @property
    def shed_total(self) -> int:
        """Arrivals lost to backpressure across all shard queues."""
        return sum(runtime.queue.shed for runtime in self._shards.values())

    def routing_latencies(self) -> Dict[int, List[float]]:
        """Per-shard routing latency samples (``record_latencies=True`` only)."""
        if not self._record_latencies:
            raise RuntimeError(
                "latency samples are not recorded; build the ShardedDispatcher "
                "with record_latencies=True"
            )
        return {
            shard_id: list(runtime.latencies)
            for shard_id, runtime in sorted(self._shards.items())
        }

    def routed_stream(self, session_id: str) -> List[Worker]:
        """A session's re-indexed sub-stream (``keep_streams=True`` only)."""
        runtime = self._runtime_for(session_id)
        with runtime.lock:
            return runtime.dispatcher.routed_stream(session_id)

    # -------------------------------------------------------------- closing

    def close(self, session_id: str) -> SolveResult:
        """Finalise one session, remove it, and return its solve result."""
        runtime = self._runtime_for(session_id)
        with runtime.lock:
            result = runtime.dispatcher.close(session_id)
        with self._control:
            del self._shard_of_session[session_id]
        return result

    def close_all(self) -> Dict[str, SolveResult]:
        """Finalise every open session, in submission order across shards."""
        return {
            session_id: self.close(session_id)
            for session_id in list(self._shard_of_session)
        }

    # ------------------------------------------------------------ internals

    def _runtime_for(self, session_id: str) -> _ShardRuntime:
        try:
            shard_id = self._shard_of_session[session_id]
        except KeyError:
            known = ", ".join(self._shard_of_session) or "<none>"
            raise UnknownSessionError(
                f"unknown session {session_id!r}; open sessions: {known}"
            ) from None
        return self._shards[shard_id]

    @staticmethod
    def _box_within(inner: BoundingBox, outer: BoundingBox) -> bool:
        return (
            outer.min_x <= inner.min_x
            and outer.min_y <= inner.min_y
            and inner.max_x <= outer.max_x
            and inner.max_y <= outer.max_y
        )

    def _process(self, runtime: _ShardRuntime, worker: Worker):
        started = self._clock()
        with runtime.lock:
            deliveries = runtime.dispatcher.feed_worker(worker)
        if self._record_latencies:
            runtime.latencies.append(self._clock() - started)
        return deliveries

    def _drain_inline(self, runtime: _ShardRuntime) -> Dict[str, List[Assignment]]:
        """Process a shard's queued backlog on the calling thread."""
        deliveries: Dict[str, List[Assignment]] = {}
        while True:
            worker = runtime.queue.get(timeout=0.0)
            if worker is None:
                return deliveries
            try:
                deliveries.update(self._process(runtime, worker))
            finally:
                runtime.queue.task_done()

    def _drain_loop(self, runtime: _ShardRuntime) -> None:
        """The per-shard thread body: drain until the queue closes."""
        while True:
            worker = runtime.queue.get()
            if worker is None:
                return
            try:
                self._process(runtime, worker)
            except BaseException as exc:  # noqa: BLE001 - surfaced via drain/stop
                if runtime.error is None:
                    runtime.error = exc
            finally:
                runtime.queue.task_done()
