"""Average And Max (AAM) — Algorithm 3.

AAM is the paper's hybrid online greedy with a 7.738 competitive ratio.  For
each arriving worker it compares two quantities over the uncompleted tasks:

* ``avg`` — the remaining ``Acc*`` work divided by the capacity ``K``
  (a proxy for the *average* number of extra workers needed), and
* ``maxRemain`` — the largest remaining ``Acc*`` of any single task
  (a proxy for the *bottleneck* task).

While ``avg >= maxRemain`` the sheer number of tasks is the bottleneck and
AAM uses the **Largest Gain First (LGF)** strategy, scoring a candidate task
by ``min(Acc*(w, t), delta - S[t])`` so that highly accurate workers are not
wasted on tasks that only need a small top-up.  Once ``avg < maxRemain`` the
hardest tasks dominate the completion time and AAM switches to **Largest
Remaining First (LRF)**, scoring tasks by ``delta - S[t]``.

Both quantities are maintained *incrementally* as assignments land — a
compensated running sum plus a lazy-deletion max-heap of per-task needs —
instead of rebuilding the remaining list over all tasks on every arrival
(the pre-engine O(W*T) scan).  Completed tasks are excluded by retiring
them through the :class:`~repro.core.candidates.CandidateFinder` facade
(the engine's tombstone mask) instead of a per-solver completed-flag
container, and AAM is **dynamic**: :meth:`AAMSolver.add_tasks` posts
tasks mid-stream, folding their needs into the running statistics and
appending them to the live snapshot.  ``maxRemain`` is exact (same float set as
the naive scan); the running sum can differ from the naive left-to-right
sum by accumulated rounding ulps, so whenever ``avg`` lands inside a
small band around ``maxRemain`` — the only place an ulp could flip the
LGF/LRF switch — the legacy sum is recomputed verbatim and decides.
Arrangements therefore stay byte-identical to the pre-engine loop,
knife-edges included.  Candidate scoring itself runs on the candidate
engine's batched ``topk`` path.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import OnlineSolver
from repro.core.arrangement import Arrangement, Assignment
from repro.core.candidate_engine import validate_candidate_backend_name
from repro.core.candidates import CandidateFinder
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker


class AAMSolver(OnlineSolver):
    """Average And Max online solver (paper Algorithm 3).

    Parameters
    ----------
    use_spatial_index:
        Restrict candidate queries to the grid index under the sigmoid
        accuracy model; disabling forces the exhaustive scan.
    candidates:
        Candidate-engine backend name (``"python"``, ``"numpy"``,
        ``"auto"``); ``None`` defers to ``REPRO_CANDIDATES_BACKEND`` /
        auto-detection.  Reachable from spec strings as
        ``"AAM?candidates=numpy"``.
    """

    name = "AAM"
    supports_dynamic_tasks = True
    supports_task_expiry = True

    def __init__(
        self, use_spatial_index: bool = True, candidates: Optional[str] = None
    ) -> None:
        validate_candidate_backend_name(candidates)
        self._use_spatial_index = use_spatial_index
        self._candidates_backend = candidates
        self._instance: Optional[LTCInstance] = None
        self._arrangement: Optional[Arrangement] = None
        self._candidates: Optional[CandidateFinder] = None
        self._need: Optional[Sequence[float]] = None
        self._uncompleted_count = 0
        self._remaining_sum = 0.0
        self._sum_compensation = 0.0
        self._abs_update_total = 0.0
        self._need_heap: List[Tuple[float, int]] = []
        self._lgf_rounds = 0
        self._lrf_rounds = 0

    # --------------------------------------------------------------- protocol

    def start(self, instance: LTCInstance) -> None:
        self._instance = instance
        self._arrangement = instance.new_arrangement()
        self._candidates = CandidateFinder(
            instance,
            use_spatial_index=self._use_spatial_index,
            backend=self._candidates_backend,
        )
        engine = self._candidates.engine
        delta = self._arrangement.delta
        self._need = engine.float_array(delta)
        self._uncompleted_count = instance.num_tasks
        # Seed the running sum with the same left-to-right addition order
        # the naive scan uses, so the two start bit-identical.
        total = 0.0
        for _ in range(instance.num_tasks):
            total += delta
        self._remaining_sum = total
        self._sum_compensation = 0.0
        self._abs_update_total = total
        # Lazy-deletion max-heap of (-need, position); stale entries are
        # skipped at query time by comparing against the live need array.
        # (heapify is a no-op for this all-equal seeding but keeps the
        # invariant independent of how the seed values are chosen.)
        self._need_heap = [(-delta, position) for position in range(instance.num_tasks)]
        heapq.heapify(self._need_heap)
        self._lgf_rounds = 0
        self._lrf_rounds = 0

    @property
    def arrangement(self) -> Arrangement:
        if self._arrangement is None:
            raise RuntimeError("start() must be called before reading the arrangement")
        return self._arrangement

    # ------------------------------------------------- incremental remaining

    def _add_to_sum(self, value: float) -> None:
        """Kahan-compensated update of the running remaining-``Acc*`` sum.

        ``_abs_update_total`` accumulates the magnitude of everything ever
        folded in; both this sum's and the naive scan's rounding errors
        are bounded by small multiples of ``eps`` times that magnitude,
        which is what the knife-edge band in :meth:`observe` scales with.
        """
        self._abs_update_total += abs(value)
        adjusted = value - self._sum_compensation
        total = self._remaining_sum + adjusted
        self._sum_compensation = (total - self._remaining_sum) - adjusted
        self._remaining_sum = total

    def _note_assignment(self, task_id: int) -> None:
        """Fold one just-landed assignment into the incremental stats.

        Completion retires the task through the candidate facade — the
        engine's tombstone mask takes it out of every later query — and
        removes its need from the running sum; an incomplete assignment
        refreshes the need value and re-keys the lazy max-heap.
        """
        arrangement = self._arrangement
        candidates = self._candidates
        position = candidates.engine.position_of[task_id]
        old_need = float(self._need[position])
        if arrangement.is_task_complete(task_id):
            candidates.retire_tasks((task_id,))
            self._uncompleted_count -= 1
            self._add_to_sum(-old_need)
        else:
            new_need = arrangement.delta - arrangement.accumulated_of(task_id)
            self._add_to_sum(new_need - old_need)
            self._need[position] = new_need
            heapq.heappush(self._need_heap, (-new_need, position))

    def _current_max_remaining(self) -> float:
        """Largest remaining need among uncompleted tasks (exact).

        Pops heap entries that are stale — their task retired (i.e.
        completed), or their recorded need no longer matches the live
        array (a newer entry for the same task sits deeper).  Amortised
        O(log) per assignment.
        """
        heap = self._need_heap
        alive, need = self._candidates.engine.alive, self._need
        while heap:
            negated, position = heap[0]
            if alive[position] and float(need[position]) == -negated:
                return -negated
            heapq.heappop(heap)
        raise RuntimeError("no uncompleted task remains")  # pragma: no cover

    # ------------------------------------------------------- dynamic tasks

    def add_tasks(self, tasks: Sequence[Task]) -> None:
        """Post additional tasks mid-stream (the dynamic-arrival path).

        Extends the instance/arrangement/snapshot in place and folds each
        new task's full ``delta`` need into the incremental statistics
        (running remaining sum, need max-heap, uncompleted count), so the
        LGF/LRF switch sees the enlarged task set on the next arrival.
        """
        if self._instance is None or self._arrangement is None or self._candidates is None:
            raise RuntimeError("start() must be called before add_tasks()")
        tasks = list(tasks)
        self._instance.add_tasks(tasks)
        self._arrangement.add_tasks(tasks)
        self._candidates.add_tasks(tasks)
        engine = self._candidates.engine
        delta = self._arrangement.delta
        self._need = engine.grow_float_array(self._need, delta)
        for task in tasks:
            position = engine.position_of[task.task_id]
            self._add_to_sum(delta)
            heapq.heappush(self._need_heap, (-delta, position))
        self._uncompleted_count += len(tasks)

    def expire_tasks(self, task_ids: Sequence[int]) -> List[int]:
        """Abandon overdue tasks and unwind them from the running statistics.

        Each expired task leaves the arrangement's open set (abandoned, no
        further assignments) and the candidate snapshot (tombstoned), and
        its remaining need is subtracted from the incremental
        remaining-``Acc*`` sum and uncompleted count — the same bookkeeping
        a completion performs, so ``avg``/``maxRemain`` keep describing
        exactly the live open tasks.  Stale heap entries for the expired
        positions are skipped lazily by the ``alive`` check in
        :meth:`_current_max_remaining`.  Returns the ids actually expired
        (completed and already-expired ids are skipped).
        """
        if self._instance is None or self._arrangement is None or self._candidates is None:
            raise RuntimeError("start() must be called before expire_tasks()")
        arrangement = self._arrangement
        engine = self._candidates.engine
        position_of = engine.position_of
        expired: List[int] = []
        for task_id in task_ids:
            if task_id not in position_of:
                raise KeyError(f"task id {task_id} is not in the snapshot")
            if arrangement.is_task_abandoned(task_id):
                continue
            if arrangement.is_task_complete(task_id):
                continue
            expired.append(task_id)
        if expired:
            arrangement.abandon_tasks(expired)
            self._candidates.retire_tasks(expired)
            for task_id in expired:
                position = position_of[task_id]
                self._add_to_sum(-float(self._need[position]))
                self._uncompleted_count -= 1
        return expired

    # ---------------------------------------------------------------- observe

    def observe(self, worker: Worker) -> List[Assignment]:
        """Assign up to K tasks to ``worker`` using the LGF/LRF hybrid rule."""
        if self._instance is None or self._arrangement is None or self._candidates is None:
            raise RuntimeError("start() must be called before observe()")
        arrangement = self._arrangement
        instance = self._instance

        # "Average" work left per capacity unit vs. the single worst task.
        if self._uncompleted_count == 0:
            return []
        avg = self._remaining_sum / instance.capacity
        max_remain = self._current_max_remaining()
        # Knife-edge guard: the incremental sum can differ from the naive
        # left-to-right sum by accumulated rounding, which is exactly
        # enough to flip the strategy switch when avg and maxRemain
        # collide (e.g. |T| == K at the first arrival).  Inside the band
        # the legacy sum is recomputed verbatim — same iteration order,
        # same association — so the decision is bit-for-bit the
        # pre-engine one.  Both sums' errors are bounded by small
        # multiples of eps times the total folded-in magnitude (the naive
        # scan's additionally by eps times the uncompleted-task count), so
        # the band scales with ``_abs_update_total`` (divided by K, like
        # the averages) and with the live task count; outside it the
        # branch is free.
        band = max(1e-9, 1e-15 * self._uncompleted_count) * max(
            1.0, abs(avg), self._abs_update_total / instance.capacity
        )
        if abs(avg - max_remain) <= band:
            # Expired (abandoned) tasks are excluded exactly like completed
            # ones: the incremental sum dropped their need at expiry.
            avg = sum(
                arrangement.remaining_of(task.task_id)
                for task in instance.tasks
                if not arrangement.is_task_complete(task.task_id)
                and not arrangement.is_task_abandoned(task.task_id)
            ) / instance.capacity
        use_lgf = avg >= max_remain
        if use_lgf:
            self._lgf_rounds += 1
        else:
            self._lrf_rounds += 1

        picks = self._candidates.engine.topk(
            worker,
            worker.capacity,
            "gain" if use_lgf else "need",
            None,
            self._need,
        )
        assignments: List[Assignment] = []
        for task in picks:
            assignments.append(arrangement.assign(worker, task))
            self._note_assignment(task.task_id)
        return assignments

    def diagnostics(self) -> Dict[str, float]:
        return {
            "lgf_rounds": float(self._lgf_rounds),
            "lrf_rounds": float(self._lrf_rounds),
        }


class LGFOnlySolver(AAMSolver):
    """Ablation variant of AAM that always uses the Largest Gain First rule.

    Not part of the paper's algorithm set; used by the ablation benchmark to
    quantify how much the LGF/LRF switch contributes.
    """

    name = "LGF-only"

    def observe(self, worker: Worker) -> List[Assignment]:
        arrangement = self.arrangement
        candidates = self._candidates
        assert candidates is not None
        self._lgf_rounds += 1

        picks = candidates.engine.topk(
            worker, worker.capacity, "gain", None, self._need
        )
        assignments = []
        for task in picks:
            assignments.append(arrangement.assign(worker, task))
            self._note_assignment(task.task_id)
        return assignments


class LRFOnlySolver(AAMSolver):
    """Ablation variant of AAM that always uses the Largest Remaining First rule."""

    name = "LRF-only"

    def observe(self, worker: Worker) -> List[Assignment]:
        arrangement = self.arrangement
        candidates = self._candidates
        assert candidates is not None
        self._lrf_rounds += 1

        picks = candidates.engine.topk(
            worker, worker.capacity, "need", None, self._need
        )
        assignments = []
        for task in picks:
            assignments.append(arrangement.assign(worker, task))
            self._note_assignment(task.task_id)
        return assignments
