"""Shared fixtures for the LTC reproduction test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accuracy import ConstantAccuracy, SigmoidDistanceAccuracy
from repro.core.examples import running_example_instance
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_instance
from repro.geo.point import Point


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def running_example() -> LTCInstance:
    """The paper's Tables I/II running example (3 tasks, 8 workers, eps=0.2)."""
    return running_example_instance()


@pytest.fixture
def tiny_instance() -> LTCInstance:
    """A 2-task / 6-worker instance with constant accuracy 0.9 (Acc* = 0.64).

    delta = 2*ln(1/0.2) ~= 3.22, so each task needs ceil(3.22 / 0.64) = 6
    assignments worth of work in total across both tasks; with K = 2 the
    instance is comfortably feasible.
    """
    tasks = [Task.at(0, 0.0, 0.0), Task.at(1, 5.0, 0.0)]
    workers = [
        Worker.at(index, float(index), 1.0, accuracy=0.9, capacity=2)
        for index in range(1, 7)
    ]
    return LTCInstance(
        tasks=tasks,
        workers=workers,
        error_rate=0.2,
        accuracy_model=ConstantAccuracy(0.9),
        name="tiny constant-accuracy instance",
    )


@pytest.fixture(scope="session")
def small_synthetic_instance() -> LTCInstance:
    """A small but realistic synthetic instance shared across tests.

    Session-scoped because generation plus repeated solving would otherwise
    dominate the suite's runtime; tests must not mutate it.
    """
    config = SyntheticConfig(
        num_tasks=40,
        num_workers=700,
        capacity=6,
        error_rate=0.14,
        grid_size=130.0,
        seed=101,
        name="test synthetic",
    )
    return generate_synthetic_instance(config)


@pytest.fixture
def sigmoid_model() -> SigmoidDistanceAccuracy:
    """The paper's accuracy model with the default d_max = 30."""
    return SigmoidDistanceAccuracy(d_max=30.0)


def make_worker(index: int, x: float, y: float, accuracy: float = 0.9,
                capacity: int = 2) -> Worker:
    """Helper used by several test modules."""
    return Worker(index=index, location=Point(x, y), accuracy=accuracy,
                  capacity=capacity)


def make_task(task_id: int, x: float, y: float) -> Task:
    """Helper used by several test modules."""
    return Task(task_id=task_id, location=Point(x, y))
