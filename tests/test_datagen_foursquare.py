"""Tests for the Foursquare-like check-in generator (Table V substitution)."""

import pytest

from repro.core.candidates import CandidateFinder
from repro.datagen.foursquare import (
    NEW_YORK,
    TOKYO,
    CheckinCityConfig,
    generate_checkin_instance,
)
from repro.geo.hull import convex_hull, point_in_convex_polygon


def small_city(**overrides):
    defaults = dict(
        city="Testville", num_tasks=24, num_workers=900, capacity=6,
        error_rate=0.14, region_size=400.0, seed=3,
    )
    defaults.update(overrides)
    return CheckinCityConfig(**defaults)


class TestConfig:
    def test_table_v_cardinalities(self):
        assert NEW_YORK.num_tasks == 3717
        assert NEW_YORK.num_workers == 227428
        assert TOKYO.num_tasks == 9317
        assert TOKYO.num_workers == 573703
        assert NEW_YORK.capacity == TOKYO.capacity == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            small_city(num_tasks=0)
        with pytest.raises(ValueError):
            small_city(error_rate=0.0)
        with pytest.raises(ValueError):
            small_city(hotspot_spread=0.0)

    def test_resolved_hotspots_derived_from_tasks(self):
        config = small_city(num_tasks=60, capacity=6)
        assert config.resolved_num_hotspots() == 5
        assert small_city(num_hotspots=11).resolved_num_hotspots() == 11

    def test_scaled_preserves_ratio_and_shrinks_region(self):
        scaled = NEW_YORK.scaled(0.01)
        assert scaled.num_tasks == 37
        assert scaled.num_workers == 2274
        assert scaled.region_size < NEW_YORK.region_size
        with pytest.raises(ValueError):
            NEW_YORK.scaled(0.0)
        with pytest.raises(ValueError):
            NEW_YORK.scaled(1.5)


class TestGeneratedStream:
    def test_cardinalities(self):
        config = small_city()
        instance = generate_checkin_instance(config)
        assert instance.num_tasks == config.num_tasks
        assert instance.num_workers == config.num_workers

    def test_arrival_times_are_chronological(self):
        instance = generate_checkin_instance(small_city())
        times = [worker.arrival_time for worker in instance.workers]
        assert times == sorted(times)

    def test_workers_inside_region(self):
        config = small_city()
        instance = generate_checkin_instance(config)
        for worker in instance.workers:
            assert 0 <= worker.location.x <= config.region_size
            assert 0 <= worker.location.y <= config.region_size

    def test_tasks_lie_inside_the_checkin_hull(self):
        config = small_city()
        instance = generate_checkin_instance(config)
        hull = convex_hull([w.location for w in instance.workers])
        inside = sum(
            1 for task in instance.tasks if point_in_convex_polygon(task.location, hull)
        )
        # Allow a small number of fallback placements on the hull border.
        assert inside >= int(0.9 * instance.num_tasks)

    def test_deterministic_given_seed(self):
        first = generate_checkin_instance(small_city(seed=5))
        second = generate_checkin_instance(small_city(seed=5))
        assert [t.location for t in first.tasks] == [t.location for t in second.tasks]
        assert [w.location for w in first.workers] == [w.location for w in second.workers]

    def test_tasks_have_eligible_workers(self):
        config = small_city()
        instance = generate_checkin_instance(config)
        finder = CandidateFinder(instance)
        counts = finder.candidate_count_per_task()
        assert min(counts.values()) >= 1

    def test_activity_is_skewed_across_hotspots(self):
        """The most popular neighbourhood should see far more check-ins."""
        config = small_city(num_workers=2000)
        instance = generate_checkin_instance(config)
        by_hotspot: dict[int, int] = {}
        for worker in instance.workers:
            hotspot = worker.metadata["hotspot"]
            by_hotspot[hotspot] = by_hotspot.get(hotspot, 0) + 1
        counts = sorted(by_hotspot.values(), reverse=True)
        assert counts[0] >= 3 * counts[-1]

    def test_city_metadata_recorded(self):
        instance = generate_checkin_instance(small_city())
        assert instance.tasks[0].metadata["city"] == "Testville"
        assert instance.name == "checkins-testville"
