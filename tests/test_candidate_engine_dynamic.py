"""The dynamic candidate snapshot: appends, tombstones, spill, rebuilds.

The engine's incremental layer must be invisible at the query surface:
after any interleaving of ``add_tasks`` / ``retire_tasks`` calls, every
query of every backend must answer exactly like a from-scratch
:class:`~repro.core.candidates_legacy.LegacyCandidateFinder` built over
the currently-alive tasks in posting order.  The hypothesis suite below
drives randomized insert/complete/expire interleavings through both
backends (and the forced vector path) against that rebuild-from-scratch
oracle; the unit tests pin the machinery itself — position stability,
epoch counters, spill thresholds, tombstone idempotence, the
out-of-order-id sort switch, and the numpy mirror sync.
"""

import contextlib
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.candidate_engine import CandidateEngine, NumpyCandidateBackend
from repro.core.candidate_engine import engine as engine_module
from repro.core.candidates import CandidateFinder
from repro.core.candidates_legacy import LegacyCandidateFinder
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point
from repro.structures.topk import TopKHeap

NUMPY_AVAILABLE = NumpyCandidateBackend().is_available()

BACKENDS = ["python"] + (["numpy"] if NUMPY_AVAILABLE else [])


@contextlib.contextmanager
def forced_vector_path():
    """Drop the numpy backend's adaptive cutover to 1 for the duration."""
    from repro.core.candidate_engine import numpy_backend as nb

    previous = nb.VECTOR_MIN_BLOCK
    nb.VECTOR_MIN_BLOCK = 1
    try:
        yield
    finally:
        nb.VECTOR_MIN_BLOCK = previous


def make_instance(num_tasks=8, num_workers=10, box=100.0, seed=0, first_id=0):
    rng = random.Random(seed)
    tasks = [
        Task(task_id=first_id + i,
             location=Point(rng.uniform(0, box), rng.uniform(0, box)))
        for i in range(num_tasks)
    ]
    workers = [
        Worker(index=i + 1,
               location=Point(rng.uniform(0, box), rng.uniform(0, box)),
               accuracy=rng.uniform(0.7, 1.0), capacity=3)
        for i in range(num_workers)
    ]
    return LTCInstance(tasks=tasks, workers=workers, error_rate=0.2)


def fresh_tasks(count, box, rng, used_ids):
    """New tasks at random locations with ids not yet posted."""
    batch = []
    while len(batch) < count:
        task_id = rng.randrange(100_000)
        if task_id in used_ids:
            continue
        used_ids.add(task_id)
        batch.append(
            Task(task_id=task_id,
                 location=Point(rng.uniform(0, box), rng.uniform(0, box)))
        )
    return batch


class TestDynamicMachinery:
    def test_positions_are_append_only_and_stable(self):
        instance = make_instance()
        engine = CandidateEngine(instance, backend="python")
        before = dict(engine.position_of)
        engine.add_tasks([Task.at(500, 1.0, 1.0), Task.at(501, 2.0, 2.0)])
        engine.retire_tasks([instance.tasks[0].task_id])
        for task_id, position in before.items():
            assert engine.position_of[task_id] == position
        assert engine.position_of[500] == len(before)
        assert engine.position_of[501] == len(before) + 1
        assert engine.num_tasks == len(before) + 2

    def test_epoch_counters_track_mutations(self):
        engine = CandidateEngine(make_instance(), backend="python")
        epoch = engine.epoch
        engine.add_tasks([Task.at(500, 1.0, 1.0)])
        assert engine.epoch == epoch + 1
        engine.retire_tasks([500])
        assert engine.epoch == epoch + 2
        # Re-retiring is a no-op and does not bump the epoch.
        engine.retire_tasks([500])
        assert engine.epoch == epoch + 2

    def test_duplicate_and_unknown_ids_raise(self):
        instance = make_instance()
        engine = CandidateEngine(instance, backend="python")
        existing = instance.tasks[0].task_id
        with pytest.raises(ValueError, match="already in the snapshot"):
            engine.add_tasks([Task.at(existing, 0.0, 0.0)])
        with pytest.raises(ValueError, match="already in the snapshot"):
            engine.add_tasks([Task.at(700, 0.0, 0.0), Task.at(700, 1.0, 1.0)])
        with pytest.raises(KeyError, match="not in the snapshot"):
            engine.retire_tasks([999_999])
        # A retired id stays reserved: positions are never reused.
        engine.retire_tasks([existing])
        with pytest.raises(ValueError, match="already in the snapshot"):
            engine.add_tasks([Task.at(existing, 0.0, 0.0)])

    def test_spill_threshold_triggers_grid_rebuild(self, monkeypatch):
        monkeypatch.setattr(engine_module, "SPILL_REBUILD_MIN", 4)
        engine = CandidateEngine(make_instance(num_tasks=6), backend="python")
        assert engine.mode == "grid"
        assert engine.rebuild_count == 0
        spill_before = engine.spill_start
        engine.add_tasks([Task.at(500 + i, 1.0, 1.0) for i in range(3)])
        # Below the threshold: the appends stay in the spill range.
        assert engine.rebuild_count == 0
        assert engine.spill_start == spill_before
        assert engine.num_tasks - engine.spill_start == 3
        engine.add_tasks([Task.at(600 + i, 2.0, 2.0) for i in range(3)])
        # Crossing it merges the spill into the CSR cells.
        assert engine.rebuild_count == 1
        assert engine.spill_start == engine.num_tasks

    def test_spill_threshold_is_capped_absolutely(self, monkeypatch):
        """On large grids the fractional threshold alone would let every
        query scan a spill of ~25% of the snapshot; the absolute cap
        bounds it."""
        monkeypatch.setattr(engine_module, "SPILL_REBUILD_MIN", 1)
        monkeypatch.setattr(engine_module, "SPILL_REBUILD_MAX", 5)
        engine = CandidateEngine(make_instance(num_tasks=100), backend="python")
        engine.add_tasks([Task.at(1_000 + i, 1.0, 1.0) for i in range(6)])
        # fraction * 100 = 25 would not have triggered yet; the cap did.
        assert engine.rebuild_count == 1
        assert engine.spill_start == engine.num_tasks

    def test_rebuild_sweeps_tombstones_out_of_the_grid(self):
        instance = make_instance(num_tasks=10)
        engine = CandidateEngine(instance, backend="python")
        assert len(engine.cell_positions) == 10
        engine.retire_tasks([task.task_id for task in instance.tasks[:4]])
        # Lazy: tombstones stay in the cells until a rebuild...
        assert len(engine.cell_positions) == 10
        engine.rebuild_index()
        # ...which drops them (only alive positions are packed).
        assert len(engine.cell_positions) == 6
        assert all(engine.alive[p] for p in engine.cell_positions)

    def test_rebuild_index_is_a_noop_off_grid(self):
        engine = CandidateEngine(
            make_instance(), use_spatial_index=False, backend="python"
        )
        assert engine.mode == "scan"
        grid_epoch = engine.grid_epoch
        engine.rebuild_index()
        assert engine.grid_epoch == grid_epoch

    def test_out_of_order_ids_flip_the_sort_key(self):
        instance = make_instance(first_id=100)
        engine = CandidateEngine(instance, backend="python")
        assert engine.positions_id_ordered
        engine.add_tasks([Task.at(7, 1.0, 1.0)])  # id below every existing one
        assert not engine.positions_id_ordered
        worker = Worker.at(1, 1.0, 1.0, accuracy=0.95, capacity=3)
        got = [t.task_id for t in engine.eligible_tasks(worker)]
        assert got == sorted(got)

    def test_grow_containers_preserve_prefix(self):
        for backend in BACKENDS:
            engine = CandidateEngine(make_instance(), backend=backend)
            flags = engine.bool_array()
            values = engine.float_array(1.0)
            flags[1] = True
            values[2] = 9.5
            engine.add_tasks([Task.at(500, 1.0, 1.0), Task.at(501, 2.0, 2.0)])
            flags = engine.grow_bool_array(flags)
            values = engine.grow_float_array(values, 3.25)
            assert len(flags) == engine.num_tasks == len(values)
            assert bool(flags[1]) and not bool(flags[0])
            assert float(values[2]) == 9.5
            assert float(values[engine.num_tasks - 1]) == 3.25

    def test_all_tasks_retired_leaves_empty_queries(self):
        for backend in BACKENDS:
            instance = make_instance(num_tasks=4)
            engine = CandidateEngine(instance, min_accuracy=0.0, backend=backend)
            worker = instance.workers[0]
            assert engine.eligible_tasks(worker)
            engine.retire_tasks([task.task_id for task in instance.tasks])
            assert engine.eligible_tasks(worker) == []
            assert not engine.has_candidates(worker)
            assert engine.topk_acc_star(worker, 3) == []
            # A rebuild over the empty alive set must also survive.
            engine.rebuild_index()
            assert engine.eligible_tasks(worker) == []

    @pytest.mark.skipif(not NUMPY_AVAILABLE, reason="numpy not installed")
    def test_numpy_mirrors_sync_incrementally(self):
        import numpy as np

        instance = make_instance()
        engine = CandidateEngine(instance, backend="numpy")
        mirrors = engine.numpy_mirrors(np)
        engine.add_tasks([Task.at(500, 3.0, 4.0)])
        engine.retire_tasks([instance.tasks[0].task_id])
        synced = engine.numpy_mirrors(np)
        assert synced is mirrors  # one cached mirror object, synced in place
        assert len(synced.xs) == engine.num_tasks
        assert synced.task_ids[engine.position_of[500]] == 500
        assert not synced.alive[engine.position_of[instance.tasks[0].task_id]]
        assert bool(synced.alive[engine.position_of[500]])


@st.composite
def interleavings(draw):
    """A base instance plus a random insert/retire/query interleaving."""
    rng = draw(st.randoms(use_true_random=False))
    num_tasks = draw(st.integers(min_value=2, max_value=12))
    num_workers = draw(st.integers(min_value=2, max_value=10))
    box = draw(st.sampled_from([60.0, 150.0]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    instance = make_instance(num_tasks, num_workers, box, seed,
                             first_id=draw(st.sampled_from([0, 5_000])))
    steps = []
    used_ids = {task.task_id for task in instance.tasks}
    for _ in range(draw(st.integers(min_value=3, max_value=12))):
        kind = rng.random()
        if kind < 0.45:
            steps.append(("add", fresh_tasks(rng.randint(1, 4), box, rng, used_ids)))
        else:
            steps.append(("retire", rng.random()))
    return instance, steps, box


class TestDynamicDifferential:
    """Randomized interleavings vs the rebuild-from-scratch legacy oracle."""

    @staticmethod
    def _check_against_oracle(engines, posted, alive_ids, workers,
                              use_spatial_index, min_accuracy):
        alive_tasks = [task for task in posted if task.task_id in alive_ids]
        oracle = None
        if alive_tasks:
            oracle_instance = LTCInstance(
                tasks=alive_tasks, workers=workers, error_rate=0.2,
            )
            oracle = LegacyCandidateFinder(
                oracle_instance, min_accuracy=min_accuracy,
                use_spatial_index=use_spatial_index,
            )
        for worker in workers:
            expected = (
                [task.task_id for task in oracle.candidates(worker)]
                if oracle is not None else []
            )
            heap: TopKHeap = TopKHeap(2)
            if oracle is not None:
                for task in oracle.candidates(worker):
                    heap.push(oracle_instance.acc_star(worker, task), task)
            expected_top = [task.task_id for _, task in heap.pop_all()]
            for engine in engines:
                name = engine.backend.name
                got = [task.task_id for task in engine.eligible_tasks(worker)]
                assert got == expected, name
                assert engine.has_candidates(worker) == bool(expected), name
                got_top = [
                    task.task_id for task in engine.topk_acc_star(worker, 2)
                ]
                assert got_top == expected_top, name

    @given(data=interleavings(), use_spatial_index=st.booleans())
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.large_base_example])
    def test_backends_match_rebuild_from_scratch(self, data, use_spatial_index):
        instance, steps, box = data
        min_accuracy = instance.min_assignable_accuracy
        engines = [
            CandidateEngine(
                instance, use_spatial_index=use_spatial_index, backend=backend
            )
            for backend in BACKENDS
        ]
        posted = list(instance.tasks)
        alive_ids = {task.task_id for task in instance.tasks}
        rng = random.Random(4242)
        with forced_vector_path():
            for kind, payload in steps:
                if kind == "add":
                    for engine in engines:
                        engine.add_tasks(payload)
                    posted.extend(payload)
                    alive_ids.update(task.task_id for task in payload)
                elif alive_ids:
                    count = max(1, int(payload * len(alive_ids)) // 2)
                    victims = rng.sample(sorted(alive_ids), count)
                    for engine in engines:
                        engine.retire_tasks(victims)
                    alive_ids.difference_update(victims)
                self._check_against_oracle(
                    engines, posted, alive_ids, instance.workers,
                    use_spatial_index, min_accuracy,
                )

    @given(data=interleavings())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.large_base_example])
    def test_forced_rebuilds_change_nothing(self, data):
        """Same interleaving, with the grid rebuilt after every mutation."""
        instance, steps, box = data
        engines = [
            CandidateEngine(instance, backend=backend) for backend in BACKENDS
        ]
        eager = [CandidateEngine(instance, backend=b) for b in BACKENDS]
        posted = list(instance.tasks)
        alive_ids = {task.task_id for task in instance.tasks}
        rng = random.Random(99)
        for kind, payload in steps:
            if kind == "add":
                for engine in engines + eager:
                    engine.add_tasks(payload)
                posted.extend(payload)
                alive_ids.update(task.task_id for task in payload)
            elif alive_ids:
                count = max(1, int(payload * len(alive_ids)) // 2)
                victims = rng.sample(sorted(alive_ids), count)
                for engine in engines + eager:
                    engine.retire_tasks(victims)
                alive_ids.difference_update(victims)
            for engine in eager:
                engine.rebuild_index()
            for worker in instance.workers[:4]:
                for lazy, rebuilt in zip(engines, eager):
                    assert (
                        [t.task_id for t in lazy.eligible_tasks(worker)]
                        == [t.task_id for t in rebuilt.eligible_tasks(worker)]
                    )


class TestFinderFacadeDynamics:
    def test_facade_add_and_retire_delegate(self):
        instance = make_instance()
        finder = CandidateFinder(instance, backend="python")
        worker = Worker.at(1, 50.0, 50.0, accuracy=0.99, capacity=3)
        finder.add_tasks([Task.at(900, 50.0, 50.0)])
        assert 900 in {task.task_id for task in finder.candidates(worker)}
        finder.retire_tasks([900])
        assert 900 not in {task.task_id for task in finder.candidates(worker)}
        # eligible_pairs and counts see the same open set.
        pairs = {t.task_id for _, t in finder.eligible_pairs([worker])}
        assert 900 not in pairs
        assert finder.candidate_count_per_task()[900] == 0
