"""Workload generators.

Two generators mirror the paper's evaluation data:

* :mod:`repro.datagen.synthetic` — the synthetic setting of Table IV:
  tasks and workers uniformly placed on a square grid, historical accuracy
  drawn from a normal or uniform distribution, a shared capacity ``K`` and a
  shared tolerable error rate.
* :mod:`repro.datagen.foursquare` — a Foursquare-like check-in stream in the
  spirit of Table V (New York / Tokyo): clustered hotspots, chronologically
  ordered check-ins, POI tasks constrained to the convex hull of the
  check-ins.  It substitutes the real dataset, which cannot be shipped; see
  DESIGN.md section 4 for the substitution rationale.

Every generator is deterministic given a seed.
"""

from repro.datagen.distributions import (
    AccuracyDistribution,
    NormalAccuracy,
    UniformAccuracy,
)
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_instance
from repro.datagen.foursquare import (
    CheckinCityConfig,
    NEW_YORK,
    TOKYO,
    generate_checkin_instance,
)

__all__ = [
    "AccuracyDistribution",
    "NormalAccuracy",
    "UniformAccuracy",
    "SyntheticConfig",
    "generate_synthetic_instance",
    "CheckinCityConfig",
    "NEW_YORK",
    "TOKYO",
    "generate_checkin_instance",
]
