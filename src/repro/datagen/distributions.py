"""Historical-accuracy distributions (Table IV).

The paper draws worker historical accuracies either from a normal
distribution (mu in 0.82..0.90, sigma = 0.05) or from a uniform distribution
with the same mean.  Samples are clipped to the valid range
``[MIN_WORKER_ACCURACY, 1]`` because workers below the spam threshold are
filtered out by the platform before assignment.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.quality_threshold import MIN_WORKER_ACCURACY


class AccuracyDistribution(abc.ABC):
    """Samples historical accuracies for generated workers."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` accuracies in ``[MIN_WORKER_ACCURACY, 1]``."""

    @staticmethod
    def _clip(values: np.ndarray) -> np.ndarray:
        return np.clip(values, MIN_WORKER_ACCURACY, 1.0)


@dataclass(frozen=True)
class NormalAccuracy(AccuracyDistribution):
    """Normal(mu, sigma) accuracies, clipped to the valid range."""

    mean: float = 0.86
    stddev: float = 0.05

    def __post_init__(self) -> None:
        if not MIN_WORKER_ACCURACY <= self.mean <= 1.0:
            raise ValueError(
                f"mean must be in [{MIN_WORKER_ACCURACY}, 1], got {self.mean}"
            )
        if self.stddev <= 0:
            raise ValueError("stddev must be positive")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self._clip(rng.normal(self.mean, self.stddev, size=size))


@dataclass(frozen=True)
class UniformAccuracy(AccuracyDistribution):
    """Uniform accuracies with a given mean.

    The paper specifies uniform distributions only by their mean; we use the
    symmetric interval ``[mean - half_width, mean + half_width]`` (clipped),
    defaulting to the same spread as the normal setting (half_width = 0.08,
    roughly +/- 1.6 sigma).
    """

    mean: float = 0.86
    half_width: float = 0.08

    def __post_init__(self) -> None:
        if not MIN_WORKER_ACCURACY <= self.mean <= 1.0:
            raise ValueError(
                f"mean must be in [{MIN_WORKER_ACCURACY}, 1], got {self.mean}"
            )
        if self.half_width <= 0:
            raise ValueError("half_width must be positive")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        low = self.mean - self.half_width
        high = self.mean + self.half_width
        return self._clip(rng.uniform(low, high, size=size))
