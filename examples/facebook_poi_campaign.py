#!/usr/bin/env python
"""The paper's running example: a Facebook-style POI information campaign.

Reproduces Fig. 1 / Tables I-II of the paper: three questions about nearby
POIs (Think Cafe, Yee Shun Restaurant, SOGO Hong Kong), eight users checking
in one after another, every user willing to answer at most two questions, and
a tolerable error rate of 0.2.  The script runs each algorithm from the
paper, prints the arrangement it produces and compares the latencies with the
values discussed in Examples 2-4.

Run with::

    python examples/facebook_poi_campaign.py
"""

from __future__ import annotations

from repro import get_solver
from repro.core.examples import (
    EXAMPLE_TASK_NAMES,
    EXPECTED_LATENCIES,
    PAPER_REPORTED_LATENCIES,
    running_example_instance,
)
from repro.quality.hoeffding import empirical_error_rate


def describe_arrangement(result) -> None:
    """Print which worker answers which question."""
    by_task: dict[int, list[int]] = {}
    for assignment in result.arrangement:
        by_task.setdefault(assignment.task_id, []).append(assignment.worker_index)
    for task_id in sorted(by_task):
        workers = ", ".join(f"w{index}" for index in sorted(by_task[task_id]))
        accumulated = result.arrangement.accumulated_of(task_id)
        print(f"    {EXAMPLE_TASK_NAMES[task_id]:22s} <- {workers}  "
              f"(accumulated Acc* = {accumulated:.2f})")


def main() -> None:
    instance = running_example_instance()
    print("The running example instance:")
    print(f"  {instance.num_tasks} tasks, {instance.num_workers} workers, "
          f"K = {instance.capacity}, epsilon = {instance.error_rate}, "
          f"delta = {instance.delta:.2f}\n")

    for name in ("MCF-LTC", "LAF", "AAM", "Base-off", "Random", "Exact"):
        result = get_solver(name).solve(instance)
        print(f"{name}: latency = {result.max_latency} "
              f"(completed: {result.completed})")
        describe_arrangement(result)
        error = empirical_error_rate(instance, result.arrangement, trials=200, seed=7)
        print(f"    simulated voting error: {error:.3f} "
              f"(tolerable {instance.error_rate})\n")

    print("Paper-reported latencies (Examples 2-4):", PAPER_REPORTED_LATENCIES)
    print("Latencies this implementation reproduces:", EXPECTED_LATENCIES)
    print("\nWhy MCF-LTC and AAM differ from the prose of Examples 2 and 4 is")
    print("documented in EXPERIMENTS.md ('Running example'): the prose deviates")
    print("from the paper's own Table I / pseudo-code in both cases.")


if __name__ == "__main__":
    main()
