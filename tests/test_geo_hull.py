"""Tests for repro.geo.hull."""

import pytest
from hypothesis import given, strategies as st

from repro.geo.hull import convex_hull, point_in_convex_polygon
from repro.geo.point import Point


class TestConvexHull:
    def test_square_hull(self):
        points = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1), Point(0.5, 0.5)]
        hull = convex_hull(points)
        assert len(hull) == 4
        assert set(hull) == {Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)}

    def test_collinear_points_reduce_to_segment_endpoints(self):
        points = [Point(0, 0), Point(1, 1), Point(2, 2), Point(3, 3)]
        hull = convex_hull(points)
        # Degenerate hull: monotone chain keeps the two extreme points.
        assert Point(0, 0) in hull and Point(3, 3) in hull
        assert len(hull) <= 2

    def test_duplicates_are_ignored(self):
        points = [Point(0, 0), Point(0, 0), Point(1, 0), Point(0, 1)]
        assert len(convex_hull(points)) == 3

    def test_single_and_two_point_inputs(self):
        assert convex_hull([Point(1, 1)]) == [Point(1, 1)]
        assert set(convex_hull([Point(0, 0), Point(2, 3)])) == {Point(0, 0), Point(2, 3)}

    def test_accepts_raw_tuples(self):
        hull = convex_hull([(0, 0), (2, 0), (1, 3)])
        assert len(hull) == 3


class TestPointInPolygon:
    def test_interior_and_exterior(self):
        hull = convex_hull([Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4)])
        assert point_in_convex_polygon(Point(2, 2), hull)
        assert point_in_convex_polygon(Point(0, 0), hull)      # vertex
        assert point_in_convex_polygon(Point(2, 0), hull)      # edge
        assert not point_in_convex_polygon(Point(5, 2), hull)
        assert not point_in_convex_polygon(Point(-0.1, 2), hull)

    def test_degenerate_polygons(self):
        assert not point_in_convex_polygon(Point(0, 0), [])
        assert point_in_convex_polygon(Point(1, 1), [Point(1, 1)])
        assert not point_in_convex_polygon(Point(1, 2), [Point(1, 1)])
        segment = [Point(0, 0), Point(2, 2)]
        assert point_in_convex_polygon(Point(1, 1), segment)
        assert not point_in_convex_polygon(Point(1, 0), segment)


coords = st.floats(min_value=-1000, max_value=1000, allow_nan=False)
point_lists = st.lists(st.tuples(coords, coords), min_size=3, max_size=40)


class TestHullProperties:
    @given(point_lists)
    def test_all_input_points_inside_hull(self, raw_points):
        points = [Point(x, y) for x, y in raw_points]
        hull = convex_hull(points)
        if len(hull) < 3:
            return  # degenerate configurations are covered elsewhere
        for p in points:
            assert point_in_convex_polygon(p, hull)

    @given(point_lists)
    def test_hull_vertices_are_input_points(self, raw_points):
        points = {Point(x, y) for x, y in raw_points}
        hull = convex_hull(points)
        assert set(hull) <= points

    @given(point_lists)
    def test_hull_is_idempotent(self, raw_points):
        points = [Point(x, y) for x, y in raw_points]
        hull = convex_hull(points)
        assert set(convex_hull(hull)) == set(hull)
