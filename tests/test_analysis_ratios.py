"""Tests for empirical approximation/competitive ratio measurement."""

import pytest

from repro.analysis.ratios import (
    PROVEN_FACTORS,
    RatioReport,
    empirical_ratio_to_lower_bound,
    empirical_ratios_vs_exact,
)
from repro.algorithms.laf import LAFSolver


class TestRatiosVsExact:
    @pytest.fixture(scope="class")
    def reports(self):
        return empirical_ratios_vs_exact(num_instances=12, seed=5)

    def test_reports_cover_requested_algorithms(self, reports):
        assert set(reports) == {"MCF-LTC", "LAF", "AAM"}

    def test_most_instances_are_solved(self, reports):
        for report in reports.values():
            assert report.instances_solved >= 8

    def test_ratios_are_at_least_one(self, reports):
        for report in reports.values():
            if report.ratios.count:
                assert report.ratios.minimum >= 1.0 - 1e-9

    def test_observed_ratios_respect_the_proven_factors(self, reports):
        for name, report in reports.items():
            assert report.within_proven_factor(), (
                f"{name}: worst ratio {report.worst_ratio} exceeds "
                f"{PROVEN_FACTORS[name]}"
            )

    def test_mean_and_worst_are_consistent(self, reports):
        for report in reports.values():
            if report.ratios.count:
                assert report.mean_ratio <= report.worst_ratio + 1e-9


class TestRatioToLowerBound:
    def test_lower_bound_ratio_on_synthetic_instance(self, small_synthetic_instance):
        report = empirical_ratio_to_lower_bound("AAM", [small_synthetic_instance])
        assert report.instances_solved == 1
        assert report.mean_ratio >= 1.0

    def test_accepts_solver_instances(self, small_synthetic_instance):
        report = empirical_ratio_to_lower_bound(LAFSolver(), [small_synthetic_instance])
        assert report.algorithm == "LAF"
        assert report.instances_solved == 1

    def test_incomplete_runs_are_counted_as_skipped(self, tiny_instance):
        starving = tiny_instance.subset_of_workers(1)
        report = empirical_ratio_to_lower_bound("LAF", [starving])
        assert report.instances_skipped == 1
        assert report.instances_solved == 0


class TestRatioReport:
    def test_empty_report_behaviour(self):
        report = RatioReport(algorithm="LAF")
        assert report.within_proven_factor()
        assert report.instances_solved == 0

    def test_unknown_algorithm_has_no_factor_check(self):
        report = RatioReport(algorithm="SomethingElse")
        report.ratios.add(100.0)
        assert report.within_proven_factor()
