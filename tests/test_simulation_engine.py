"""Tests for the arrival-by-arrival online simulation engine."""

import pytest

from repro.algorithms.aam import AAMSolver
from repro.algorithms.baselines import BaseOffSolver
from repro.algorithms.laf import LAFSolver
from repro.core.stream import WorkerStream
from repro.simulation.engine import OnlineSimulation


class TestOnlineSimulation:
    def test_rejects_offline_solvers(self):
        with pytest.raises(TypeError):
            OnlineSimulation(BaseOffSolver())

    def test_event_log_matches_solver_result(self, tiny_instance):
        outcome = OnlineSimulation(LAFSolver()).run(tiny_instance)
        assert outcome.result.completed
        assert outcome.workers_arrived == outcome.result.workers_observed
        assert outcome.events[-1].tasks_remaining == 0
        # The last arrival that completed the instance carries a completion.
        assert outcome.events[-1].newly_completed_tasks

    def test_simulation_and_plain_solve_agree(self, small_synthetic_instance):
        simulated = OnlineSimulation(AAMSolver()).run(small_synthetic_instance)
        solved = AAMSolver().solve(small_synthetic_instance)
        assert simulated.result.max_latency == solved.max_latency
        assert simulated.result.num_assignments == solved.num_assignments

    def test_completion_arrival_recorded_per_task(self, tiny_instance):
        outcome = OnlineSimulation(LAFSolver()).run(tiny_instance)
        completions = outcome.completion_arrival_by_task
        assert set(completions) == {task.task_id for task in tiny_instance.tasks}
        assert max(completions.values()) == outcome.result.max_latency

    def test_workers_skipped_counts_unused_arrivals(self, small_synthetic_instance):
        outcome = OnlineSimulation(LAFSolver()).run(small_synthetic_instance)
        used = sum(1 for event in outcome.events if event.was_used)
        assert used + outcome.workers_skipped == outcome.workers_arrived

    def test_run_entire_stream_when_not_stopping_at_completion(self, tiny_instance):
        outcome = OnlineSimulation(LAFSolver()).run(
            tiny_instance, stop_when_complete=False
        )
        assert outcome.workers_arrived == tiny_instance.num_workers

    def test_custom_stream_is_respected(self, tiny_instance):
        stream = WorkerStream(tiny_instance.workers[:3])
        outcome = OnlineSimulation(LAFSolver()).run(tiny_instance, stream=stream)
        assert outcome.workers_arrived <= 3
