"""Tests for repro.algorithms.bounds (Theorem 2 and McNaughton's rule)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.bounds import (
    bounds_for_error_rate,
    instance_bounds,
    latency_lower_bound,
    latency_upper_bound,
    mcnaughton_latency,
    mcnaughton_schedule,
)


class TestBoundFormulas:
    def test_lower_bound_formula(self):
        assert latency_lower_bound(100, 4.0, 8) == pytest.approx(50.0)

    def test_upper_bound_formula_with_default_floor(self):
        expected = 10 * 100 * 4.0 / 8 + 100 / 8 + 1
        assert latency_upper_bound(100, 4.0, 8) == pytest.approx(expected)

    def test_upper_bound_with_custom_floor(self):
        assert latency_upper_bound(10, 3.0, 2, min_acc_star=0.5) == pytest.approx(
            2 * 10 * 3.0 / 2 + 10 / 2 + 1
        )

    def test_lower_bound_never_exceeds_upper_bound(self):
        for num_tasks in (1, 10, 100):
            for delta in (1.0, 3.2, 5.6):
                for capacity in (1, 4, 8):
                    assert latency_lower_bound(num_tasks, delta, capacity) <= \
                        latency_upper_bound(num_tasks, delta, capacity)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            latency_lower_bound(0, 1.0, 1)
        with pytest.raises(ValueError):
            latency_lower_bound(1, 0.0, 1)
        with pytest.raises(ValueError):
            latency_lower_bound(1, 1.0, 0)
        with pytest.raises(ValueError):
            latency_upper_bound(1, 1.0, 1, min_acc_star=0.0)

    def test_instance_bounds(self, tiny_instance):
        lower, upper = instance_bounds(tiny_instance)
        expected_lower = tiny_instance.num_tasks * tiny_instance.delta / tiny_instance.capacity
        assert lower == pytest.approx(expected_lower)
        assert upper > lower

    def test_bounds_for_error_rate(self):
        lower, upper = bounds_for_error_rate(10, 0.2, 2)
        assert lower == pytest.approx(10 * 2 * math.log(5) / 2)
        assert upper > lower


class TestMcNaughton:
    def test_latency_formula_example(self):
        # 3 tasks, delta = 3.22, capacity 2, Acc* = 0.85 -> 4 copies per task,
        # 12 assignments over capacity 2 -> 6 workers.
        assert mcnaughton_latency(3, 3.22, 2, 0.85) == 6

    def test_single_task_needs_per_task_copies(self):
        assert mcnaughton_latency(1, 3.0, 4, 0.5) == 6

    def test_invalid_acc_star_rejected(self):
        with pytest.raises(ValueError):
            mcnaughton_latency(1, 1.0, 1, 0.0)

    def test_schedule_is_feasible_and_tight(self):
        num_tasks, delta, capacity, acc_star = 5, 3.2, 3, 0.6
        schedule = mcnaughton_schedule(num_tasks, delta, capacity, acc_star)
        per_task = math.ceil(delta / acc_star)
        assert len(schedule) == mcnaughton_latency(num_tasks, delta, capacity, acc_star)
        # Capacity and no-repeat constraints.
        for tasks in schedule.values():
            assert len(tasks) <= capacity
            assert len(set(tasks)) == len(tasks)
        # Every task is served exactly per_task times.
        counts = {task_id: 0 for task_id in range(num_tasks)}
        for tasks in schedule.values():
            for task_id in tasks:
                counts[task_id] += 1
        assert all(count == per_task for count in counts.values())

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=12),
        st.floats(min_value=0.5, max_value=6.0),
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.1, max_value=1.0),
    )
    def test_schedule_property(self, num_tasks, delta, capacity, acc_star):
        schedule = mcnaughton_schedule(num_tasks, delta, capacity, acc_star)
        per_task = math.ceil(delta / acc_star)
        counts = {task_id: 0 for task_id in range(num_tasks)}
        for worker_index, tasks in schedule.items():
            assert 1 <= worker_index <= len(schedule)
            assert len(tasks) <= capacity
            assert len(set(tasks)) == len(tasks)
            for task_id in tasks:
                counts[task_id] += 1
        assert all(count == per_task for count in counts.values())
        assert len(schedule) == mcnaughton_latency(num_tasks, delta, capacity, acc_star)

    def test_lower_bound_is_consistent_with_perfect_workers(self):
        """With Acc* = 1 the McNaughton latency is within rounding of the bound."""
        for num_tasks, delta, capacity in [(10, 3.2, 4), (7, 5.6, 3), (50, 4.0, 6)]:
            exact = mcnaughton_latency(num_tasks, delta, capacity, 1.0)
            lower = latency_lower_bound(num_tasks, delta, capacity)
            assert exact >= lower - 1e-9
            # Rounding (ceil of delta and of the division) costs at most a
            # factor ~2 at these sizes.
            assert exact <= 2 * lower + capacity + 1
