"""Experiment definitions: one per figure column of the paper.

The paper's hardware (a 40-core Xeon running C++) and cardinalities
(|W| = 40 000-573 703) are far beyond what a pure-Python reproduction can
sweep in minutes, so every definition carries a ``scale`` factor applied to
the task/worker counts while the *worker density per eligibility disk* is
preserved by shrinking the region side with ``sqrt(scale)``.  The relative
behaviour of the algorithms — the content of the paper's claims — is
unaffected; EXPERIMENTS.md records the measured shapes next to the paper's.

``scale=1.0`` reproduces the paper's full-size settings (slow in Python but
supported).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.algorithms.registry import DEFAULT_SOLVER_NAMES
from repro.algorithms.spec import SolverSpec
from repro.core.instance import LTCInstance
from repro.datagen.distributions import NormalAccuracy, UniformAccuracy
from repro.datagen.foursquare import NEW_YORK, TOKYO, CheckinCityConfig, generate_checkin_instance
from repro.datagen.rng import derive_seed
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_instance
from repro.simulation.runner import ExperimentRunner, InstanceFactory

# --------------------------------------------------------------------- paper
# Table IV: the synthetic dataset settings (defaults in bold in the paper).

PAPER_TASK_SWEEP = [1000, 2000, 3000, 4000, 5000]
PAPER_DEFAULT_TASKS = 3000
PAPER_DEFAULT_WORKERS = 40000
PAPER_CAPACITY_SWEEP = [4, 5, 6, 7, 8]
PAPER_DEFAULT_CAPACITY = 6
PAPER_ACCURACY_SWEEP = [0.82, 0.84, 0.86, 0.88, 0.90]
PAPER_DEFAULT_ACCURACY_MEAN = 0.86
PAPER_ACCURACY_SIGMA = 0.05
PAPER_ERROR_SWEEP = [0.06, 0.10, 0.14, 0.18, 0.22]
PAPER_DEFAULT_ERROR = 0.14
PAPER_SCALABILITY_TASKS = [10000, 20000, 30000, 40000, 50000, 100000]
PAPER_SCALABILITY_WORKERS = 400000
PAPER_GRID_SIZE = 1000.0
PAPER_D_MAX = 30.0


@dataclass
class ExperimentDefinition:
    """A runnable description of one figure column.

    ``build_runner`` binds everything into an
    :class:`~repro.simulation.runner.ExperimentRunner`; ``scale`` and
    ``repetitions`` can be overridden at that point without touching the
    definition.
    """

    experiment_id: str
    figure_panels: str
    description: str
    sweep_parameter: str
    sweep_values: Sequence[float]
    make_instance: Callable[["ExperimentDefinition", float, int, float], LTCInstance]
    algorithms: Sequence[str] = field(default_factory=lambda: list(DEFAULT_SOLVER_NAMES))
    default_scale: float = 0.05
    default_repetitions: int = 2
    seed: int = 2018
    #: Optional per-sweep solver specs, for sweeps that vary a *solver*
    #: parameter rather than an instance parameter (the batch ablation maps
    #: each sweep value to "MCF-LTC?batch_multiplier=<value>").  When the
    #: caller overrides ``algorithms``, requested bare names still pick up
    #: the sweep's parameters; specs with explicit parameters win.
    sweep_algorithms: Optional[Callable[[float], Sequence[str]]] = None

    def _algorithms_for_sweep(
        self, algorithms: Optional[Sequence[str]]
    ) -> Optional[Callable[[float], Sequence[str]]]:
        """The per-sweep spec mapping the runner should use, if any.

        With no ``algorithms`` override the definition's mapping applies
        directly.  With an override, a requested bare name is replaced by
        the sweep's parameterized spec of the same name (so
        ``--algorithms MCF-LTC`` on the batch ablation still sweeps the
        multiplier), while requested specs with explicit parameters, and
        names the mapping does not produce, run as requested.
        """
        if self.sweep_algorithms is None:
            return None
        if algorithms is None:
            return self.sweep_algorithms
        requested = [SolverSpec.coerce(item) for item in algorithms]
        base = self.sweep_algorithms

        def mapped(sweep_value: float) -> Sequence[object]:
            swept = {}
            for item in base(sweep_value):
                spec = SolverSpec.coerce(item[1] if isinstance(item, tuple) else item)
                swept[spec.name] = spec
            # Swept replacements are plain specs (the runner labels them by
            # name); pinned or unmapped requests keep their full label.
            return [
                str(swept[spec.name])
                if spec.name in swept and not spec.params
                else (str(spec), str(spec))
                for spec in requested
            ]

        return mapped

    def instance_factory(self, scale: float) -> InstanceFactory:
        """An :class:`InstanceFactory` bound to this definition and ``scale``."""

        def factory(sweep_value: float, repetition: int) -> LTCInstance:
            return self.make_instance(self, sweep_value, repetition, scale)

        return factory

    def build_runner(
        self,
        scale: Optional[float] = None,
        repetitions: Optional[int] = None,
        algorithms: Optional[Sequence[str]] = None,
        sweep_values: Optional[Sequence[float]] = None,
        track_memory: bool = True,
        progress: Optional[Callable[[str], None]] = None,
    ) -> ExperimentRunner:
        """Create the runner for this experiment."""
        scale = self.default_scale if scale is None else scale
        repetitions = self.default_repetitions if repetitions is None else repetitions
        algorithms_for_sweep = self._algorithms_for_sweep(algorithms)
        algorithms = list(self.algorithms if algorithms is None else algorithms)
        sweep_values = list(self.sweep_values if sweep_values is None else sweep_values)
        return ExperimentRunner(
            experiment_id=self.experiment_id,
            sweep_parameter=self.sweep_parameter,
            sweep_values=sweep_values,
            instance_factory=self.instance_factory(scale),
            algorithms=algorithms,
            repetitions=repetitions,
            track_memory=track_memory,
            progress=progress,
            algorithms_for_sweep=algorithms_for_sweep,
        )


# ----------------------------------------------------------------- synthetic


def _scaled_counts(num_tasks: float, num_workers: float, scale: float) -> tuple[int, int, float]:
    """Scale task/worker counts and the grid side preserving worker density."""
    tasks = max(3, int(round(num_tasks * scale)))
    workers = max(20, int(round(num_workers * scale)))
    side = PAPER_GRID_SIZE * math.sqrt(scale)
    # Never let the region collapse below a few eligibility radii.
    side = max(side, 3.0 * PAPER_D_MAX)
    return tasks, workers, side


#: Feasibility floor used by the error-rate sweeps.  It corresponds to the
#: strictest error rate in the sweep (0.06) so that the generated task/worker
#: placement is identical across the sweep and only the quality threshold
#: varies — exactly how the paper reuses one dataset for its epsilon panels.
_EPSILON_SWEEP_MIN_ELIGIBLE = int(math.ceil(2.0 * math.log(1.0 / 0.06) / 0.3))


def _synthetic_instance(
    definition: ExperimentDefinition,
    sweep_value: float,
    repetition: int,
    scale: float,
    *,
    num_tasks: Optional[float] = None,
    num_workers: Optional[float] = None,
    capacity: int = PAPER_DEFAULT_CAPACITY,
    error_rate: float = PAPER_DEFAULT_ERROR,
    accuracy=None,
    min_eligible_workers: Optional[int] = None,
) -> LTCInstance:
    """Shared synthetic-instance builder used by the Fig. 3 / Fig. 4 sweeps."""
    num_tasks = PAPER_DEFAULT_TASKS if num_tasks is None else num_tasks
    num_workers = PAPER_DEFAULT_WORKERS if num_workers is None else num_workers
    tasks, workers, side = _scaled_counts(num_tasks, num_workers, scale)
    config = SyntheticConfig(
        num_tasks=tasks,
        num_workers=workers,
        capacity=capacity,
        error_rate=error_rate,
        accuracy_distribution=accuracy or NormalAccuracy(PAPER_DEFAULT_ACCURACY_MEAN, PAPER_ACCURACY_SIGMA),
        grid_size=side,
        d_max=PAPER_D_MAX,
        seed=derive_seed(definition.seed, definition.experiment_id, sweep_value, repetition),
        min_eligible_workers=min_eligible_workers,
        name=f"{definition.experiment_id}[{definition.sweep_parameter}={sweep_value}]",
    )
    return generate_synthetic_instance(config)


def _make_fig3_tasks(definition, sweep_value, repetition, scale):
    return _synthetic_instance(
        definition, sweep_value, repetition, scale, num_tasks=sweep_value
    )


def _make_fig3_capacity(definition, sweep_value, repetition, scale):
    return _synthetic_instance(
        definition, sweep_value, repetition, scale, capacity=int(sweep_value)
    )


def _make_fig3_accuracy_normal(definition, sweep_value, repetition, scale):
    return _synthetic_instance(
        definition, sweep_value, repetition, scale,
        accuracy=NormalAccuracy(mean=float(sweep_value), stddev=PAPER_ACCURACY_SIGMA),
    )


def _make_fig3_accuracy_uniform(definition, sweep_value, repetition, scale):
    return _synthetic_instance(
        definition, sweep_value, repetition, scale,
        accuracy=UniformAccuracy(mean=float(sweep_value)),
    )


def _make_fig4_epsilon(definition, sweep_value, repetition, scale):
    return _synthetic_instance(
        definition, sweep_value, repetition, scale,
        error_rate=float(sweep_value),
        min_eligible_workers=_EPSILON_SWEEP_MIN_ELIGIBLE,
    )


def _make_fig4_scalability(definition, sweep_value, repetition, scale):
    return _synthetic_instance(
        definition, sweep_value, repetition, scale,
        num_tasks=sweep_value,
        num_workers=PAPER_SCALABILITY_WORKERS,
    )


# ----------------------------------------------------------------- check-ins


def _checkin_instance(
    definition: ExperimentDefinition,
    city: CheckinCityConfig,
    sweep_value: float,
    repetition: int,
    scale: float,
) -> LTCInstance:
    config = city.scaled(scale)
    config = replace(
        config,
        error_rate=float(sweep_value),
        min_eligible_workers=_EPSILON_SWEEP_MIN_ELIGIBLE,
        # The same city dataset is reused across the epsilon sweep (the seed
        # ignores the sweep value), as in the paper's real-data experiments.
        seed=derive_seed(definition.seed, definition.experiment_id, repetition),
    )
    return generate_checkin_instance(config)


def _make_fig4_newyork(definition, sweep_value, repetition, scale):
    return _checkin_instance(definition, NEW_YORK, sweep_value, repetition, scale)


def _make_fig4_tokyo(definition, sweep_value, repetition, scale):
    return _checkin_instance(definition, TOKYO, sweep_value, repetition, scale)


# ----------------------------------------------------------------- ablations


def _make_ablation_batch(definition, sweep_value, repetition, scale):
    # The sweep value is the batch multiplier; the instance itself uses the
    # default synthetic setting.  ``sweep_algorithms`` below maps the sweep
    # value onto the MCF-LTC solver spec.
    return _synthetic_instance(definition, sweep_value, repetition, scale)


def _ablation_batch_algorithms(sweep_value: float) -> List[str]:
    """MCF-LTC built with the sweep value as its batch multiplier."""
    return [f"MCF-LTC?batch_multiplier={float(sweep_value)}"]


def _make_ablation_aam(definition, sweep_value, repetition, scale):
    return _synthetic_instance(
        definition, sweep_value, repetition, scale, num_tasks=sweep_value
    )


# ------------------------------------------------------------------ registry

EXPERIMENTS: Dict[str, ExperimentDefinition] = {}


def _register(definition: ExperimentDefinition) -> ExperimentDefinition:
    EXPERIMENTS[definition.experiment_id] = definition
    return definition


FIG3_TASKS = _register(ExperimentDefinition(
    experiment_id="fig3_tasks",
    figure_panels="Fig. 3a / 3e / 3i",
    description="Effect of the number of tasks |T| (synthetic, defaults of Table IV).",
    sweep_parameter="|T|",
    sweep_values=PAPER_TASK_SWEEP,
    make_instance=_make_fig3_tasks,
))

FIG3_CAPACITY = _register(ExperimentDefinition(
    experiment_id="fig3_capacity",
    figure_panels="Fig. 3b / 3f / 3j",
    description="Effect of the worker capacity K (synthetic).",
    sweep_parameter="K",
    sweep_values=PAPER_CAPACITY_SWEEP,
    make_instance=_make_fig3_capacity,
))

FIG3_ACCURACY_NORMAL = _register(ExperimentDefinition(
    experiment_id="fig3_accuracy_normal",
    figure_panels="Fig. 3c / 3g / 3k",
    description="Effect of the historical-accuracy mean (normal distribution).",
    sweep_parameter="mu",
    sweep_values=PAPER_ACCURACY_SWEEP,
    make_instance=_make_fig3_accuracy_normal,
))

FIG3_ACCURACY_UNIFORM = _register(ExperimentDefinition(
    experiment_id="fig3_accuracy_uniform",
    figure_panels="Fig. 3d / 3h / 3l",
    description="Effect of the historical-accuracy mean (uniform distribution).",
    sweep_parameter="mean",
    sweep_values=PAPER_ACCURACY_SWEEP,
    make_instance=_make_fig3_accuracy_uniform,
))

FIG4_EPSILON = _register(ExperimentDefinition(
    experiment_id="fig4_epsilon",
    figure_panels="Fig. 4a / 4e / 4i",
    description="Effect of the tolerable error rate epsilon (synthetic).",
    sweep_parameter="epsilon",
    sweep_values=PAPER_ERROR_SWEEP,
    make_instance=_make_fig4_epsilon,
))

FIG4_SCALABILITY = _register(ExperimentDefinition(
    experiment_id="fig4_scalability",
    figure_panels="Fig. 4b / 4f / 4j",
    description="Scalability with very large task sets (|W| = 400k in the paper).",
    sweep_parameter="|T|",
    sweep_values=PAPER_SCALABILITY_TASKS,
    make_instance=_make_fig4_scalability,
    default_scale=0.001,
    default_repetitions=1,
))

FIG4_NEWYORK = _register(ExperimentDefinition(
    experiment_id="fig4_newyork",
    figure_panels="Fig. 4c / 4g / 4k",
    description="Foursquare-like New York check-in stream, varying epsilon.",
    sweep_parameter="epsilon",
    sweep_values=PAPER_ERROR_SWEEP,
    make_instance=_make_fig4_newyork,
    default_scale=0.03,
    default_repetitions=1,
))

FIG4_TOKYO = _register(ExperimentDefinition(
    experiment_id="fig4_tokyo",
    figure_panels="Fig. 4d / 4h / 4l",
    description="Foursquare-like Tokyo check-in stream, varying epsilon.",
    sweep_parameter="epsilon",
    sweep_values=PAPER_ERROR_SWEEP,
    make_instance=_make_fig4_tokyo,
    default_scale=0.015,
    default_repetitions=1,
))

ABLATION_BATCH = _register(ExperimentDefinition(
    experiment_id="ablation_batch_size",
    figure_panels="Sec. V-B1 discussion",
    description="MCF-LTC batch-size multiplier ablation (batch effect on latency).",
    sweep_parameter="batch_multiplier",
    sweep_values=[0.5, 1.0, 2.0, 4.0],
    make_instance=_make_ablation_batch,
    algorithms=["MCF-LTC"],
    sweep_algorithms=_ablation_batch_algorithms,
))

ABLATION_AAM = _register(ExperimentDefinition(
    experiment_id="ablation_aam_switch",
    figure_panels="Sec. IV-B design choice",
    description="AAM vs its single-strategy variants (LGF-only, LRF-only).",
    sweep_parameter="|T|",
    sweep_values=[1000, 3000, 5000],
    make_instance=_make_ablation_aam,
    algorithms=["AAM", "LGF-only", "LRF-only", "LAF"],
))


def get_experiment(experiment_id: str) -> ExperimentDefinition:
    """Look an experiment definition up by id."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known experiments: {known}"
        ) from None


def list_experiments() -> List[str]:
    """All experiment ids, sorted."""
    return sorted(EXPERIMENTS)
