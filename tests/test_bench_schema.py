"""Every committed benchmark report must follow the shared schema.

``benchmarks/_common.py`` defines one report shape for every
``BENCH_*.json`` (benchmark name, config, sections with timings and
speedups-vs-named-baseline, headline speedups, environment block,
exactness fingerprint); the consolidated ``BENCH_all.json`` and the
committed smoke baseline add per-suite ``fingerprints``/``config.suites``
and ``<suite>.<section>`` namespacing.  These tests run
``_common.validate_report`` over every report checked into the repo so a
hand-edited or stale-schema report fails CI before the regression gate
ever reads it.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import _common  # noqa: E402

SUITE_REPORTS = sorted(
    path for path in REPO_ROOT.glob("BENCH_*.json")
    if path.name != "BENCH_all.json"
)
CONSOLIDATED_REPORTS = [
    REPO_ROOT / "BENCH_all.json",
    _common.SMOKE_BASELINE,
]


def test_expected_reports_are_committed():
    names = {path.name for path in SUITE_REPORTS}
    assert {
        "BENCH_flow_kernel.json",
        "BENCH_candidates.json",
        "BENCH_dynamic_sessions.json",
        "BENCH_dispatch_scale.json",
    } <= names
    for path in CONSOLIDATED_REPORTS:
        assert path.is_file(), f"missing committed report {path}"


@pytest.mark.parametrize(
    "path", SUITE_REPORTS, ids=lambda path: path.name
)
def test_suite_report_matches_schema(path):
    report = json.loads(path.read_text())
    problems = _common.validate_report(report)
    assert not problems, f"{path.name}: {problems}"


@pytest.mark.parametrize(
    "path", CONSOLIDATED_REPORTS, ids=lambda path: path.name
)
def test_consolidated_report_matches_schema(path):
    report = json.loads(path.read_text())
    problems = _common.validate_report(report, consolidated=True)
    assert not problems, f"{path.name}: {problems}"


def test_suite_reports_name_registered_suites():
    """Each committed per-suite report belongs to a registered suite."""
    import bench_all  # noqa: F401  (importing registers every suite)

    registered = set(_common.registered_suites())
    for path in SUITE_REPORTS:
        report = json.loads(path.read_text())
        assert report["benchmark"] in registered, (
            f"{path.name} names unregistered suite {report['benchmark']!r}"
        )
        assert path.name == f"BENCH_{report['benchmark']}.json"


def test_consolidated_covers_every_registered_suite():
    import bench_all  # noqa: F401

    registered = set(_common.registered_suites())
    for path in CONSOLIDATED_REPORTS:
        report = json.loads(path.read_text())
        assert set(report["fingerprints"]) == registered, path.name
        assert set(report["config"]["suites"]) == registered, path.name
        suites_with_sections = {
            name.split(".", 1)[0] for name in report["sections"]
        }
        assert suites_with_sections == registered, path.name


def test_validate_report_rejects_broken_reports():
    """The validator itself catches the failure modes it exists for."""
    good = json.loads((REPO_ROOT / "BENCH_flow_kernel.json").read_text())
    assert _common.validate_report(good) == []

    assert _common.validate_report([]) != []

    missing_env = dict(good)
    missing_env.pop("environment")
    assert any("environment" in p
               for p in _common.validate_report(missing_env))

    bad_mode = dict(good, mode="quick")
    assert any("mode" in p for p in _common.validate_report(bad_mode))

    bad_section = json.loads(json.dumps(good))
    first = next(iter(bad_section["sections"].values()))
    first.pop("speedups")
    assert any("speedups" in p
               for p in _common.validate_report(bad_section))

    # A consolidated report must namespace sections and carry per-suite
    # fingerprints; a single-suite report fails the consolidated check.
    assert _common.validate_report(good, consolidated=True) != []
