"""Tests for repro.quality.answers (simulated worker answers)."""

import numpy as np
import pytest

from repro.core.accuracy import ConstantAccuracy
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point
from repro.quality.answers import AnswerSimulator, simulate_answers


def constant_instance(accuracy=0.9, true_answer=1):
    tasks = [Task(task_id=0, location=Point(0, 0), true_answer=true_answer)]
    workers = [
        Worker(index=i, location=Point(0, 0), accuracy=0.9, capacity=1)
        for i in range(1, 4)
    ]
    return LTCInstance(
        tasks=tasks, workers=workers, error_rate=0.2,
        accuracy_model=ConstantAccuracy(accuracy),
    )


class TestAnswerSimulator:
    def test_perfect_accuracy_always_returns_truth(self):
        instance = constant_instance(accuracy=1.0, true_answer=-1)
        simulator = AnswerSimulator(instance.accuracy_model, np.random.default_rng(0))
        for _ in range(20):
            assert simulator.answer(instance.worker(1), instance.task(0)) == -1

    def test_zero_accuracy_always_returns_opposite(self):
        instance = constant_instance(accuracy=0.0, true_answer=1)
        simulator = AnswerSimulator(instance.accuracy_model, np.random.default_rng(0))
        for _ in range(20):
            assert simulator.answer(instance.worker(1), instance.task(0)) == -1

    def test_empirical_rate_close_to_accuracy(self):
        instance = constant_instance(accuracy=0.8)
        simulator = AnswerSimulator(instance.accuracy_model, np.random.default_rng(7))
        draws = [
            simulator.answer(instance.worker(1), instance.task(0)) for _ in range(4000)
        ]
        observed = sum(1 for d in draws if d == 1) / len(draws)
        assert observed == pytest.approx(0.8, abs=0.03)


class TestSimulateAnswers:
    def test_one_answer_per_assignment(self):
        instance = constant_instance()
        arrangement = instance.new_arrangement()
        arrangement.assign(instance.worker(1), instance.task(0))
        arrangement.assign(instance.worker(2), instance.task(0))
        answers = simulate_answers(instance, arrangement, np.random.default_rng(0))
        assert len(answers[0]) == 2
        worker_indices = {entry[0] for entry in answers[0]}
        assert worker_indices == {1, 2}

    def test_unassigned_tasks_have_no_answers(self):
        instance = constant_instance()
        arrangement = instance.new_arrangement()
        answers = simulate_answers(instance, arrangement, np.random.default_rng(0))
        assert answers[0] == []

    def test_answers_carry_pair_accuracy(self):
        instance = constant_instance(accuracy=0.75)
        arrangement = instance.new_arrangement()
        arrangement.assign(instance.worker(1), instance.task(0))
        answers = simulate_answers(instance, arrangement, np.random.default_rng(0))
        assert answers[0][0][2] == pytest.approx(0.75)
