"""Shared plumbing for the microbenchmark suites.

Every suite under ``benchmarks/`` used to carry its own copy of the same
scaffolding: interleaved repeat timing, median/speedup math, argparse
boilerplate, environment capture, and JSON report writing — each with a
slightly different output schema.  This module centralises all of it:

* **Timing** — :func:`run_interleaved` repeats every implementation in an
  interleaved order (so background drift hits all of them equally, the
  convention every suite already followed), :func:`median_ms` /
  :func:`ratio` produce the reported numbers.
* **Suite registry** — each benchmark module registers a
  :class:`BenchSuite` (name, argparse configuration, smoke overrides and
  a ``run`` callable returning a :class:`SuiteResult`);
  ``benchmarks/bench_all.py`` discovers suites through
  :func:`registered_suites` / :func:`select_suites`, with did-you-mean
  errors for unknown names.
* **Shared report schema** — :func:`build_report` assembles the one
  schema every ``BENCH_*.json`` now follows (``benchmark`` /
  ``description`` / ``mode`` / ``config`` / ``environment`` /
  ``sections`` / ``headline_speedups`` / ``fingerprint``) and
  :func:`validate_report` checks a report (per-suite or consolidated)
  against it — ``tests/test_bench_schema.py`` runs that over every
  committed report.
* **Regression gate** — :func:`compare_reports` is the ratio-based
  comparator behind ``bench_all.py --check``: every speedup recorded in
  the baseline must be reproduced within a configurable noise fraction,
  missing sections are errors, and exactness fingerprints must match
  bit-for-bit whenever the configs match.

Sections come in two shapes.  A **timed** section names its baseline
implementation and carries ``timings_ms`` (median wall-milliseconds per
implementation) plus ``speedups`` (``"<impl>_vs_<baseline>"`` ratio
keys); an **observational** section (shed rates, TTL trade-offs — things
with no faster/slower axis) carries a ``metrics`` dict instead and is
exempt from the ratio gate.
"""

from __future__ import annotations

import argparse
import difflib
import hashlib
import json
import math
import os
import platform
import statistics
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = Path(__file__).resolve().parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINE_DIR = BENCH_DIR / "baselines"

#: Committed baseline the smoke-mode regression gate compares against.
SMOKE_BASELINE = BASELINE_DIR / "all_smoke.json"
#: Committed full-run consolidated report (also the full-mode gate baseline).
FULL_REPORT = REPO_ROOT / "BENCH_all.json"

SCHEMA_VERSION = 1

#: Default allowed regression fraction: a recorded speedup may shrink to
#: ``baseline * (1 - DEFAULT_NOISE)`` before the gate trips.  Smoke-sized
#: workloads on shared CI runners are noisy, so the default is generous —
#: it still catches the ~2x cliffs a broken fast path produces, while
#: per-section overrides can tighten sections known to be stable.
DEFAULT_NOISE = 0.45

MODES = ("full", "smoke")


# --------------------------------------------------------------- timing

def run_interleaved(runners: Mapping[str, Callable[[], object]],
                    repeats: int):
    """Time every runner ``repeats`` times, interleaving implementations.

    Returns ``(times, outputs)``: per-runner lists of wall-seconds and the
    last output of each runner (the exactness witness).  Interleaving —
    one pass over all runners per repeat, rather than all repeats of one
    runner — spreads slow background drift (GC, other processes) across
    every implementation equally.
    """
    times: Dict[str, List[float]] = {name: [] for name in runners}
    outputs: Dict[str, object] = {}
    for _ in range(repeats):
        for name, runner in runners.items():
            start = time.perf_counter()
            outputs[name] = runner()
            times[name].append(time.perf_counter() - start)
    return times, outputs


def median_s(samples: Sequence[float]) -> float:
    return statistics.median(samples)


def median_ms(samples: Sequence[float]) -> float:
    return round(statistics.median(samples) * 1000, 3)


def ratio(baseline_s: float, other_s: float) -> float:
    """``baseline / other`` rounded for reporting (inf-safe)."""
    return round(baseline_s / other_s, 2) if other_s > 0 else float("inf")


# --------------------------------------------------- environment metadata

def git_sha() -> Optional[str]:
    """Short SHA of HEAD, or ``None`` outside a usable git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def numpy_version() -> Optional[str]:
    try:
        import numpy
    except ImportError:
        return None
    return numpy.__version__


def environment_metadata() -> dict:
    """The environment block every report carries (schema-required)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version(),
        "git_sha": git_sha(),
    }


# ----------------------------------------------------------- fingerprints

def fingerprint(payload: object) -> str:
    """Deterministic digest of a suite's exactness witnesses.

    The payload must be JSON-serialisable and deterministic for a fixed
    config (include flow values, assignment digests, counters; exclude
    timings and anything thread-timing-dependent).  Configs are seeded,
    so the digest is reproducible across machines — the regression gate
    compares it bit-for-bit whenever baseline and fresh configs match.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def digest(obj: object) -> str:
    """Short digest of an arbitrary (repr-stable) object, for payloads."""
    return hashlib.sha256(repr(obj).encode("utf-8")).hexdigest()[:16]


# -------------------------------------------------------- suite registry

@dataclass(frozen=True)
class SuiteResult:
    """What a suite's ``run`` callable returns (everything but metadata)."""

    config: dict
    sections: dict
    headline_speedups: dict
    fingerprint_payload: object


@dataclass(frozen=True)
class BenchSuite:
    """One registered benchmark suite.

    ``add_arguments`` installs the suite's workload knobs on an argparse
    parser (never ``--output``/``--smoke``, which the CLI wrappers own);
    ``smoke_overrides`` maps argument dests to the small CI-sized values;
    ``run`` executes the suite for a parsed namespace and returns a
    :class:`SuiteResult`.
    """

    name: str
    description: str
    default_output: Path
    add_arguments: Callable[[argparse.ArgumentParser], None]
    run: Callable[[argparse.Namespace], SuiteResult]
    smoke_overrides: Dict[str, object] = field(default_factory=dict)


_REGISTRY: Dict[str, BenchSuite] = {}


class UnknownSuiteError(KeyError):
    """Raised for suite names nobody registered (carries a hint)."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return self.args[0]


def register_suite(suite: BenchSuite) -> BenchSuite:
    _REGISTRY[suite.name] = suite
    return suite


def registered_suites() -> Dict[str, BenchSuite]:
    return dict(_REGISTRY)


def get_suite(name: str) -> BenchSuite:
    try:
        return _REGISTRY[name]
    except KeyError:
        message = (
            f"unknown benchmark suite {name!r}; registered suites: "
            f"{', '.join(sorted(_REGISTRY)) or '(none)'}"
        )
        close = difflib.get_close_matches(name, _REGISTRY, n=1)
        if close:
            message += f" — did you mean {close[0]!r}?"
        raise UnknownSuiteError(message) from None


def select_suites(only: Optional[Sequence[str]] = None) -> List[BenchSuite]:
    """All registered suites, or the named subset (in the named order)."""
    if only is None:
        return list(_REGISTRY.values())
    return [get_suite(name) for name in only]


def suite_namespace(suite: BenchSuite, *, smoke: bool = False,
                    repeats: Optional[int] = None) -> argparse.Namespace:
    """The suite's default argument namespace, as the orchestrator runs it."""
    parser = argparse.ArgumentParser(add_help=False)
    suite.add_arguments(parser)
    namespace = parser.parse_args([])
    if smoke:
        for dest, value in suite.smoke_overrides.items():
            setattr(namespace, dest, value)
    if repeats is not None and hasattr(namespace, "repeats"):
        namespace.repeats = repeats
    return namespace


# ------------------------------------------------------ report assembly

def build_report(suite: BenchSuite, result: SuiteResult, mode: str) -> dict:
    """One per-suite report in the shared schema."""
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": suite.name,
        "description": suite.description,
        "mode": mode,
        "config": result.config,
        "environment": environment_metadata(),
        "sections": result.sections,
        "headline_speedups": result.headline_speedups,
        "fingerprint": fingerprint(result.fingerprint_payload),
    }


def write_report(path: Path, report: dict) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=1) + "\n")


def load_report(path: Path) -> dict:
    return json.loads(Path(path).read_text())


def suite_main(suite: BenchSuite, argv=None) -> int:
    """The thin CLI shared by every standalone suite script."""
    summary = suite.description.splitlines()[0]
    parser = argparse.ArgumentParser(description=summary)
    parser.add_argument("--output", type=Path, default=None,
                        help=f"where to write the JSON report (default: "
                             f"{suite.default_output} for full runs, "
                             f"benchmarks/results/{suite.name}_smoke.json "
                             f"for --smoke)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the small CI-sized configuration")
    suite.add_arguments(parser)
    args = parser.parse_args(argv)
    if args.smoke:
        for dest, value in suite.smoke_overrides.items():
            # Respect explicitly passed values; smoke only fills defaults.
            if getattr(args, dest) == parser.get_default(dest):
                setattr(args, dest, value)
    output = args.output
    if output is None:
        output = (RESULTS_DIR / f"{suite.name}_smoke.json" if args.smoke
                  else suite.default_output)
    result = suite.run(args)
    report = build_report(suite, result, mode="smoke" if args.smoke else "full")
    write_report(output, report)
    print(f"wrote {output}")
    return 0


# ----------------------------------------------------- schema validation

_ENVIRONMENT_KEYS = ("python", "platform", "cpu_count", "numpy", "git_sha")


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_report(report: object, *, consolidated: bool = False) -> List[str]:
    """Check a report against the shared schema; returns problem strings.

    ``consolidated=True`` validates the ``bench_all`` shape (per-suite
    ``fingerprints``/``config['suites']`` and ``suite.section`` keys)
    instead of the single-suite shape.
    """
    problems: List[str] = []
    if not isinstance(report, dict):
        return [f"report must be a JSON object, got {type(report).__name__}"]

    def expect(key, kind, required=True):
        value = report.get(key)
        if value is None:
            if required:
                problems.append(f"missing required key {key!r}")
            return None
        if not isinstance(value, kind):
            problems.append(
                f"{key!r} must be {getattr(kind, '__name__', kind)}, "
                f"got {type(value).__name__}"
            )
            return None
        return value

    if report.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version must be {SCHEMA_VERSION}, "
            f"got {report.get('schema_version')!r}"
        )
    name = expect("benchmark", str)
    if name == "":
        problems.append("'benchmark' must be non-empty")
    expect("description", str)
    if report.get("mode") not in MODES:
        problems.append(f"'mode' must be one of {MODES}, got {report.get('mode')!r}")
    config = expect("config", dict)
    if consolidated and config is not None:
        suites = config.get("suites")
        if not isinstance(suites, dict) or not suites:
            problems.append("consolidated 'config' must carry a non-empty "
                            "'suites' dict of per-suite configs")

    environment = expect("environment", dict)
    if environment is not None:
        for key in _ENVIRONMENT_KEYS:
            if key not in environment:
                problems.append(f"'environment' is missing {key!r}")

    sections = expect("sections", dict)
    if sections is not None:
        if not sections:
            problems.append("'sections' must be non-empty")
        for section_name, section in sections.items():
            if not isinstance(section, dict):
                problems.append(f"section {section_name!r} must be an object")
                continue
            timed = "baseline" in section or "timings_ms" in section
            if timed:
                baseline = section.get("baseline")
                timings = section.get("timings_ms")
                speedups = section.get("speedups")
                if not isinstance(baseline, str):
                    problems.append(f"section {section_name!r}: timed sections "
                                    "need a 'baseline' implementation name")
                if not isinstance(timings, dict) or not timings:
                    problems.append(f"section {section_name!r}: timed sections "
                                    "need a non-empty 'timings_ms' dict")
                else:
                    if isinstance(baseline, str) and baseline not in timings:
                        problems.append(
                            f"section {section_name!r}: baseline "
                            f"{baseline!r} has no entry in 'timings_ms'"
                        )
                    bad = [k for k, v in timings.items() if not _is_number(v)]
                    if bad:
                        problems.append(f"section {section_name!r}: non-numeric "
                                        f"timings for {bad}")
                if not isinstance(speedups, dict) or not speedups:
                    problems.append(f"section {section_name!r}: timed sections "
                                    "need a non-empty 'speedups' dict")
                else:
                    bad = [k for k, v in speedups.items() if not _is_number(v)]
                    if bad:
                        problems.append(f"section {section_name!r}: non-numeric "
                                        f"speedups for {bad}")
            elif not isinstance(section.get("metrics"), dict):
                problems.append(
                    f"section {section_name!r} is neither timed (baseline + "
                    "timings_ms + speedups) nor observational (metrics)"
                )
            if consolidated and "." not in section_name:
                problems.append(f"consolidated section {section_name!r} must "
                                "be namespaced as '<suite>.<section>'")

    headline = expect("headline_speedups", dict)
    if headline is not None:
        if not headline:
            problems.append("'headline_speedups' must be non-empty")
        bad = [k for k, v in headline.items() if not _is_number(v)]
        if bad:
            problems.append(f"non-numeric headline speedups for {bad}")

    if consolidated:
        fingerprints = expect("fingerprints", dict)
        if fingerprints is not None:
            bad = [k for k, v in fingerprints.items()
                   if not (isinstance(v, str) and v.startswith("sha256:"))]
            if bad:
                problems.append(f"malformed fingerprints for suites {bad}")
            if config is not None and isinstance(config.get("suites"), dict):
                missing = sorted(set(config["suites"]) - set(fingerprints))
                if missing:
                    problems.append(f"suites {missing} have configs but no "
                                    "fingerprint")
    else:
        fp = expect("fingerprint", str)
        if fp is not None and not fp.startswith("sha256:"):
            problems.append("'fingerprint' must be a 'sha256:' digest")

    return problems


# ------------------------------------------------------- regression gate

@dataclass
class Comparison:
    """Outcome of :func:`compare_reports` (``ok`` iff no problems)."""

    problems: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems


def _suite_configs(report: dict) -> Dict[str, object]:
    """Per-suite configs of a report (consolidated or single-suite)."""
    config = report.get("config") or {}
    if isinstance(config.get("suites"), dict):
        return dict(config["suites"])
    return {report.get("benchmark", ""): config}


def _suite_fingerprints(report: dict) -> Dict[str, str]:
    if isinstance(report.get("fingerprints"), dict):
        return dict(report["fingerprints"])
    if isinstance(report.get("fingerprint"), str):
        return {report.get("benchmark", ""): report["fingerprint"]}
    return {}


def parse_noise_overrides(pairs: Iterable[str]) -> Dict[str, float]:
    """Parse ``SECTION[=.KEY]=FRACTION`` strings from the command line."""
    overrides: Dict[str, float] = {}
    for pair in pairs:
        target, sep, value = pair.partition("=")
        if not sep or not target:
            raise ValueError(
                f"noise override {pair!r} must look like "
                "'section=0.3' or 'section.speedup_key=0.3'"
            )
        fraction = float(value)
        if not 0.0 <= fraction < 1.0:
            raise ValueError(f"noise override {pair!r}: fraction must be "
                             "in [0, 1)")
        overrides[target] = fraction
    return overrides


def compare_reports(baseline: dict, fresh: dict, *,
                    noise: float = DEFAULT_NOISE,
                    overrides: Optional[Mapping[str, float]] = None,
                    check_fingerprints: bool = True) -> Comparison:
    """The ratio-based regression gate behind ``bench_all.py --check``.

    For every section the baseline report recorded, the fresh report must
    contain that section, and every recorded speedup must satisfy::

        fresh >= baseline_value * (1 - threshold)

    where ``threshold`` is, most-specific-first: an override keyed
    ``"<section>.<speedup_key>"``, an override keyed ``"<section>"``, or
    the global ``noise`` fraction.  Improvements and within-noise drift
    pass; non-finite baseline entries cannot gate and are skipped.
    Exactness fingerprints are compared bit-for-bit for every suite whose
    config matches between the two reports (suites re-run with different
    workloads legitimately produce different outputs and are skipped with
    a note).
    """
    overrides = dict(overrides or {})
    result = Comparison()
    base_sections = baseline.get("sections") or {}
    fresh_sections = fresh.get("sections") or {}
    for section_name, base_section in base_sections.items():
        fresh_section = fresh_sections.get(section_name)
        if fresh_section is None:
            result.problems.append(
                f"section {section_name!r} is missing from the fresh report"
            )
            continue
        base_speedups = base_section.get("speedups") or {}
        fresh_speedups = fresh_section.get("speedups") or {}
        for key, base_value in base_speedups.items():
            if key not in fresh_speedups:
                result.problems.append(
                    f"{section_name}: speedup {key!r} is missing from the "
                    "fresh report"
                )
                continue
            if not _is_number(base_value) or not math.isfinite(base_value):
                result.notes.append(
                    f"{section_name}: {key} baseline is {base_value!r}; "
                    "cannot gate on it"
                )
                continue
            threshold = overrides.get(
                f"{section_name}.{key}", overrides.get(section_name, noise)
            )
            floor = base_value * (1.0 - threshold)
            fresh_value = fresh_speedups[key]
            result.checked += 1
            if _is_number(fresh_value) and math.isinf(fresh_value):
                result.notes.append(f"{section_name}: {key} improved to inf")
            elif not _is_number(fresh_value):
                result.problems.append(
                    f"{section_name}: {key} is non-numeric in the fresh "
                    f"report ({fresh_value!r})"
                )
            elif fresh_value < floor:
                result.problems.append(
                    f"{section_name}: {key} regressed "
                    f"{base_value:.2f}x -> {fresh_value:.2f}x "
                    f"(floor {floor:.2f}x at {threshold:.0%} noise)"
                )
            else:
                verb = ("improved" if fresh_value > base_value
                        else "within noise")
                result.notes.append(
                    f"{section_name}: {key} {base_value:.2f}x -> "
                    f"{fresh_value:.2f}x ({verb})"
                )

    if check_fingerprints:
        base_configs = _suite_configs(baseline)
        fresh_configs = _suite_configs(fresh)
        fresh_fps = _suite_fingerprints(fresh)
        for suite_name, base_fp in _suite_fingerprints(baseline).items():
            fresh_fp = fresh_fps.get(suite_name)
            if fresh_fp is None:
                result.problems.append(
                    f"{suite_name}: exactness fingerprint is missing from "
                    "the fresh report"
                )
            elif base_configs.get(suite_name) != fresh_configs.get(suite_name):
                result.notes.append(
                    f"{suite_name}: configs differ; fingerprint not compared"
                )
            elif fresh_fp != base_fp:
                result.problems.append(
                    f"{suite_name}: exactness fingerprint changed "
                    f"({base_fp} -> {fresh_fp}) under an identical config — "
                    "outputs drifted"
                )
            else:
                result.notes.append(f"{suite_name}: fingerprint matches")
    return result
