"""Tests for CSV/JSON export of experiment results."""

import csv
import json

import pytest

from repro.experiments.export import export_json, write_records_csv, write_series_csv
from repro.simulation.results import ExperimentRecord, ResultTable


@pytest.fixture
def demo_table():
    table = ResultTable("fig_demo", "|T|")
    for value in (10.0, 20.0):
        for algorithm, latency in (("LAF", 120.0), ("AAM", 100.0)):
            table.add(ExperimentRecord(
                experiment_id="fig_demo",
                sweep_parameter="|T|",
                sweep_value=value,
                algorithm=algorithm,
                repetition=0,
                max_latency=latency + value,
                completed=True,
                runtime_seconds=0.5,
                peak_memory_mb=3.25,
            ))
    return table


class TestCSVExport:
    def test_records_csv_round_trip(self, demo_table, tmp_path):
        path = write_records_csv(demo_table, tmp_path / "records.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4
        assert rows[0]["algorithm"] == "LAF"
        assert float(rows[0]["max_latency"]) == pytest.approx(130.0)

    def test_records_csv_rejects_empty_table(self, tmp_path):
        with pytest.raises(ValueError):
            write_records_csv(ResultTable("fig_demo", "|T|"), tmp_path / "empty.csv")

    def test_series_csv_contains_means_per_cell(self, demo_table, tmp_path):
        path = write_series_csv(demo_table, tmp_path / "series.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4  # 2 algorithms x 2 sweep values
        lookup = {(row["algorithm"], row["|T|"]): row for row in rows}
        assert float(lookup[("AAM", "10.0")]["max_latency"]) == pytest.approx(110.0)
        assert float(lookup[("LAF", "20.0")]["runtime_seconds"]) == pytest.approx(0.5)

    def test_directories_are_created(self, demo_table, tmp_path):
        nested = tmp_path / "deep" / "dir" / "out.csv"
        write_series_csv(demo_table, nested)
        assert nested.exists()


class TestJSONExport:
    def test_json_document_structure(self, demo_table, tmp_path):
        path = export_json(demo_table, tmp_path / "out.json")
        document = json.loads(path.read_text())
        assert document["experiment_id"] == "fig_demo"
        assert document["completion_rate"] == 1.0
        assert len(document["records"]) == 4
        series = document["series"]["max_latency"]
        assert series["AAM"] == [[10.0, 110.0], [20.0, 120.0]]

    def test_json_metrics_subset(self, demo_table, tmp_path):
        path = export_json(demo_table, tmp_path / "out.json", metrics=["max_latency"])
        document = json.loads(path.read_text())
        assert list(document["series"].keys()) == ["max_latency"]


class TestCLIExportFlags:
    def test_cli_writes_csv_and_json(self, tmp_path, capsys):
        from repro.experiments.cli import main

        csv_path = tmp_path / "series.csv"
        json_path = tmp_path / "out.json"
        exit_code = main([
            "fig3_tasks", "--scale", "0.004", "--repetitions", "1",
            "--algorithms", "LAF", "--no-memory", "--quiet",
            "--csv", str(csv_path),
            "--json", str(json_path),
        ])
        assert exit_code == 0
        assert csv_path.exists()
        assert json_path.exists()
        output = capsys.readouterr().out
        assert "wrote" in output
