"""Regenerates Fig. 4d/4h/4l of the paper: latency / runtime / memory vs the Tokyo check-in stream.

The benchmark times the full regeneration (workload generation plus all five
algorithms across the sweep) and writes the rendered series to
``benchmarks/results/fig4_tokyo.txt``.
"""

import pytest


@pytest.mark.benchmark(group="fig4_tokyo")
def test_regenerate_fig4_tokyo(benchmark, figure_runner):
    table = benchmark.pedantic(
        lambda: figure_runner("fig4_tokyo"), rounds=1, iterations=1
    )
    assert len(table) > 0
    assert table.completion_rate() == 1.0
