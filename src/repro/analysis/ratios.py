"""Empirical approximation / competitive ratios.

The paper proves worst-case factors (7.5 for MCF-LTC, 7.967 for LAF, 7.738
for AAM).  This module measures the ratios actually achieved:

* :func:`empirical_ratios_vs_exact` — on batches of tiny random instances
  where the exact optimum is computable, the ratio of each heuristic's
  latency to the optimum.
* :func:`empirical_ratio_to_lower_bound` — on arbitrary instances, the ratio
  to the Theorem 2 lower bound ``|T| * delta / K`` (an upper bound on the
  true ratio, since the bound is itself a lower bound on the optimum).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.algorithms.base import Solver
from repro.algorithms.bounds import latency_lower_bound
from repro.algorithms.exact import ExactSolver
from repro.algorithms.registry import get_solver
from repro.core.accuracy import TabularAccuracy
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.datagen.rng import generator_for
from repro.geo.point import Point
from repro.structures.stats import RunningStats

#: The worst-case factors proven in the paper, by registry name.
PROVEN_FACTORS: Dict[str, float] = {
    "MCF-LTC": 7.5,
    "LAF": 7.967,
    "AAM": 7.738,
}


@dataclass
class RatioReport:
    """Per-algorithm empirical ratio statistics."""

    algorithm: str
    ratios: RunningStats = field(default_factory=RunningStats)
    instances_solved: int = 0
    instances_skipped: int = 0

    @property
    def mean_ratio(self) -> float:
        """Mean observed ratio (1.0 means always optimal)."""
        return self.ratios.mean

    @property
    def worst_ratio(self) -> float:
        """Worst observed ratio."""
        return self.ratios.maximum if self.ratios.count else float("nan")

    def within_proven_factor(self) -> bool:
        """Whether every observed ratio respects the paper's proven factor."""
        factor = PROVEN_FACTORS.get(self.algorithm)
        if factor is None or not self.ratios.count:
            return True
        return self.worst_ratio <= factor + 1e-9


def _random_tiny_instance(seed: int, num_tasks: int, num_workers: int,
                          capacity: int, error_rate: float) -> LTCInstance:
    """A tiny random tabular instance (all pairs eligible)."""
    rng = generator_for(seed, "ratio-instances")
    table = {
        (worker_index, task_id): float(rng.uniform(0.8, 0.99))
        for worker_index in range(1, num_workers + 1)
        for task_id in range(num_tasks)
    }
    tasks = [Task(task_id=i, location=Point(float(i), 0.0)) for i in range(num_tasks)]
    workers = [
        Worker(index=i, location=Point(0.0, float(i)), accuracy=0.9, capacity=capacity)
        for i in range(1, num_workers + 1)
    ]
    return LTCInstance(tasks=tasks, workers=workers, error_rate=error_rate,
                       accuracy_model=TabularAccuracy(table))


def empirical_ratios_vs_exact(
    algorithms: Sequence[str] = ("MCF-LTC", "LAF", "AAM"),
    num_instances: int = 20,
    num_tasks: int = 2,
    num_workers: int = 10,
    capacity: int = 2,
    error_rate: float = 0.2,
    seed: int = 0,
) -> Dict[str, RatioReport]:
    """Measure latency ratios against the exact optimum on random instances.

    Instances the exact solver cannot complete (infeasible) are skipped and
    counted in ``instances_skipped``.  Keep the sizes tiny: the exact solver
    is exponential.
    """
    exact = ExactSolver()
    reports = {name: RatioReport(algorithm=name) for name in algorithms}

    for index in range(num_instances):
        instance = _random_tiny_instance(
            seed + index, num_tasks, num_workers, capacity, error_rate
        )
        optimum = exact.solve(instance)
        if not optimum.completed or optimum.max_latency == 0:
            for report in reports.values():
                report.instances_skipped += 1
            continue
        for name in algorithms:
            result = get_solver(name).solve(instance)
            report = reports[name]
            if not result.completed:
                report.instances_skipped += 1
                continue
            report.instances_solved += 1
            report.ratios.add(result.max_latency / optimum.max_latency)
    return reports


def empirical_ratio_to_lower_bound(
    solver: Solver | str,
    instances: Sequence[LTCInstance],
) -> RatioReport:
    """Latency ratio against the Theorem 2 lower bound on given instances.

    Because the bound understates the optimum, the reported ratios are upper
    bounds on the true approximation ratios.
    """
    if isinstance(solver, str):
        solver_name = solver
        make_solver = lambda: get_solver(solver_name)  # noqa: E731
    else:
        solver_name = solver.name
        make_solver = lambda: solver  # noqa: E731

    report = RatioReport(algorithm=solver_name)
    for instance in instances:
        result = make_solver().solve(instance)
        if not result.completed:
            report.instances_skipped += 1
            continue
        bound = latency_lower_bound(instance.num_tasks, instance.delta,
                                    instance.capacity)
        report.instances_solved += 1
        report.ratios.add(result.max_latency / max(bound, 1e-9))
    return report
