"""Core LTC problem definitions.

This package contains the direct translation of Section II of the paper:
micro tasks, crowd workers, the predicted-accuracy function, the Hoeffding
quality threshold delta = 2*ln(1/epsilon), arrangements with their three
constraints (invariable, capacity, error-rate) and the offline/online problem
instances.  The NP-hardness reduction gadget (Theorem 1) and the paper's
running example (Tables I/II) are also provided, mostly for the test-suite.

The incremental :class:`~repro.core.session.Session` protocol — the uniform
arrival-by-arrival surface every solver exposes through
:meth:`~repro.algorithms.base.Solver.open_session` — also lives here.
"""

from repro.core.task import Task
from repro.core.worker import Worker
from repro.core.accuracy import (
    AccuracyModel,
    SigmoidDistanceAccuracy,
    ConstantAccuracy,
    TabularAccuracy,
    acc_star,
)
from repro.core.quality_threshold import (
    quality_threshold,
    error_rate_for_threshold,
    MIN_WORKER_ACCURACY,
    MIN_ACC_STAR,
)
from repro.core.arrangement import Arrangement, Assignment
from repro.core.candidate_engine import CandidateEngine
from repro.core.candidates import CandidateFinder, sigmoid_eligibility_radius
from repro.core.instance import LTCInstance
from repro.core.session import Session, SessionSnapshot, SessionStateError
from repro.core.stream import WorkerStream
from repro.core.exceptions import (
    LTCError,
    ConstraintViolation,
    CapacityExceeded,
    DuplicateAssignment,
    InfeasibleInstanceError,
)

__all__ = [
    "Task",
    "Worker",
    "AccuracyModel",
    "SigmoidDistanceAccuracy",
    "ConstantAccuracy",
    "TabularAccuracy",
    "acc_star",
    "quality_threshold",
    "error_rate_for_threshold",
    "MIN_WORKER_ACCURACY",
    "MIN_ACC_STAR",
    "Arrangement",
    "Assignment",
    "CandidateEngine",
    "CandidateFinder",
    "sigmoid_eligibility_radius",
    "LTCInstance",
    "Session",
    "SessionSnapshot",
    "SessionStateError",
    "WorkerStream",
    "LTCError",
    "ConstraintViolation",
    "CapacityExceeded",
    "DuplicateAssignment",
    "InfeasibleInstanceError",
]
