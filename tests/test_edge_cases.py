"""Edge-case and failure-injection tests across the solver stack.

These cover the awkward inputs a production library must survive: instances
that cannot be completed, workers with no eligible tasks, single-task /
single-worker extremes, very strict and very loose error rates, and partial
worker streams.
"""

import math

import pytest

from repro.algorithms.registry import DEFAULT_SOLVER_NAMES, get_solver
from repro.core.accuracy import ConstantAccuracy, SigmoidDistanceAccuracy, TabularAccuracy
from repro.core.instance import LTCInstance
from repro.core.stream import WorkerStream
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point


def instance_with(tasks, workers, error_rate=0.2, model=None):
    return LTCInstance(
        tasks=tasks, workers=workers, error_rate=error_rate,
        accuracy_model=model or ConstantAccuracy(0.9),
    )


class TestInfeasibleInstances:
    @pytest.mark.parametrize("name", DEFAULT_SOLVER_NAMES)
    def test_solvers_report_incompletion_gracefully(self, name):
        """Not enough workers: solvers must end with completed=False, not hang."""
        tasks = [Task.at(i, float(i), 0.0) for i in range(4)]
        workers = [Worker.at(1, 0, 0, accuracy=0.9, capacity=2),
                   Worker.at(2, 0, 0, accuracy=0.9, capacity=2)]
        instance = instance_with(tasks, workers, error_rate=0.05)
        result = get_solver(name).solve(instance)
        assert not result.completed
        assert result.max_latency <= 2
        # Even partial arrangements must respect capacity and uniqueness.
        pairs = [a.as_tuple() for a in result.arrangement]
        assert len(pairs) == len(set(pairs))

    @pytest.mark.parametrize("name", ["LAF", "AAM", "Random"])
    def test_online_solvers_consume_the_whole_stream_when_incomplete(self, name):
        tasks = [Task.at(0, 0.0, 0.0)]
        workers = [Worker.at(i, 0, 0, accuracy=0.9, capacity=1) for i in (1, 2)]
        instance = instance_with(tasks, workers, error_rate=0.01)
        result = get_solver(name).solve(instance)
        assert not result.completed
        assert result.workers_observed == instance.num_workers


class TestWorkersWithNoEligibleTasks:
    @pytest.mark.parametrize("name", DEFAULT_SOLVER_NAMES)
    def test_far_away_workers_are_skipped(self, name):
        """Workers outside every task's eligibility radius get no assignment."""
        tasks = [Task.at(0, 0.0, 0.0)]
        workers = (
            [Worker.at(1, 500.0, 500.0, accuracy=0.9, capacity=3)]
            + [Worker.at(i, 0.0, 0.0, accuracy=0.9, capacity=3) for i in range(2, 8)]
        )
        instance = instance_with(tasks, workers, error_rate=0.2,
                                 model=SigmoidDistanceAccuracy(d_max=30.0))
        result = get_solver(name).solve(instance)
        assert result.completed
        assert all(a.worker_index != 1 for a in result.arrangement)


class TestExtremes:
    @pytest.mark.parametrize("name", DEFAULT_SOLVER_NAMES)
    def test_single_task_single_capable_worker(self, name):
        tasks = [Task.at(0, 0.0, 0.0)]
        workers = [Worker.at(1, 0.0, 0.0, accuracy=0.99, capacity=1)]
        # delta below Acc*(0.99) = 0.96: one answer suffices.
        instance = instance_with(tasks, workers, error_rate=0.62,
                                 model=ConstantAccuracy(0.99))
        result = get_solver(name).solve(instance)
        assert result.completed
        assert result.max_latency == 1

    @pytest.mark.parametrize("name", ["LAF", "AAM", "MCF-LTC"])
    def test_very_strict_error_rate(self, name):
        """epsilon = 0.01 -> delta ~= 9.2 needs ~11 good answers per task."""
        tasks = [Task.at(0, 0.0, 0.0)]
        workers = [Worker.at(i, 0, 0, accuracy=0.95, capacity=1) for i in range(1, 16)]
        instance = instance_with(tasks, workers, error_rate=0.01,
                                 model=ConstantAccuracy(0.95))
        result = get_solver(name).solve(instance)
        assert result.completed
        needed = math.ceil(instance.delta / (2 * 0.95 - 1) ** 2)
        assert result.max_latency == needed

    @pytest.mark.parametrize("name", DEFAULT_SOLVER_NAMES)
    def test_capacity_larger_than_task_count(self, name):
        tasks = [Task.at(i, float(i), 0.0) for i in range(2)]
        workers = [Worker.at(i, 0, 0, accuracy=0.95, capacity=10) for i in range(1, 8)]
        instance = instance_with(tasks, workers, error_rate=0.2,
                                 model=ConstantAccuracy(0.95))
        result = get_solver(name).solve(instance)
        assert result.completed
        for assignment_count in _loads(result).values():
            assert assignment_count <= 2  # never more tasks than exist

    @pytest.mark.parametrize("name", ["LAF", "AAM"])
    def test_heterogeneous_capacities(self, name):
        """Workers may have different capacities; each one's own limit binds."""
        table = {(w, t): 0.9 for w in range(1, 5) for t in range(3)}
        tasks = [Task.at(i, float(i), 0.0) for i in range(3)]
        workers = [
            Worker.at(1, 0, 0, accuracy=0.9, capacity=1),
            Worker.at(2, 0, 0, accuracy=0.9, capacity=3),
            Worker.at(3, 0, 0, accuracy=0.9, capacity=2),
            Worker.at(4, 0, 0, accuracy=0.9, capacity=3),
        ]
        instance = LTCInstance(tasks=tasks, workers=workers, error_rate=0.45,
                               accuracy_model=TabularAccuracy(table))
        result = get_solver(name).solve(instance)
        loads = _loads(result)
        for worker in workers:
            assert loads.get(worker.index, 0) <= worker.capacity


class TestPartialStreams:
    def test_online_solver_with_truncated_stream(self, small_synthetic_instance):
        solver = get_solver("AAM")
        stream = WorkerStream(small_synthetic_instance.workers[:50])
        result = solver.solve(small_synthetic_instance, stream=stream)
        assert result.workers_observed <= 50
        assert result.max_latency <= 50


def _loads(result):
    loads: dict[int, int] = {}
    for assignment in result.arrangement:
        loads[assignment.worker_index] = loads.get(assignment.worker_index, 0) + 1
    return loads
