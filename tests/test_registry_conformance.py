"""Registry-wide conformance suite.

Every registered solver — offline or online, builtin or ablation variant —
must round-trip its spec, honour the incremental Session protocol, and
produce the same arrangement whether run through ``solve()`` or driven
arrival by arrival through a session.
"""

import pytest

from repro.algorithms.registry import available_solvers, build_solver, solver_entry
from repro.algorithms.spec import SolverSpec
from repro.core.session import Session, SessionStateError
from repro.core.stream import WorkerStream
from repro.core.task import Task


def all_solver_names():
    # Exclude runtime registrations from other test modules (they may not be
    # constructible here); the builtin set is what the suite guarantees.
    builtin = {
        "MCF-LTC", "Base-off", "Random", "LAF", "AAM",
        "Exact", "LGF-only", "LRF-only",
    }
    return sorted(set(available_solvers()) & builtin)


@pytest.mark.parametrize("name", all_solver_names())
class TestRegistryConformance:
    def test_spec_round_trips(self, name):
        spec = SolverSpec(name)
        assert SolverSpec.parse(str(spec)) == spec
        assert build_solver(spec).name == name

    def test_entry_capabilities_match_solver(self, name):
        entry = solver_entry(name)
        solver = build_solver(name)
        assert entry.capabilities.online == solver.is_online

    def test_session_protocol(self, name, tiny_instance):
        session = build_solver(name).open_session(tiny_instance)
        assert isinstance(session, Session)
        assert session.algorithm == name
        assert not session.is_complete

        before = session.snapshot()
        assert before.workers_observed == 0
        assert before.num_assignments == 0
        assert before.tasks_total == tiny_instance.num_tasks

        result = session.drive(WorkerStream(tiny_instance.workers))
        after = session.snapshot()
        assert after.workers_observed == result.workers_observed
        assert after.num_assignments == result.num_assignments
        assert after.max_latency == result.max_latency
        assert after.complete == session.is_complete

        # Mid-stream submission is part of the protocol: dynamic solvers
        # absorb the task into their live snapshot (reopening completion),
        # everything else refuses with SessionStateError.
        solver = build_solver(name)
        if getattr(solver, "supports_dynamic_tasks", False):
            tasks_before = session.snapshot().tasks_total
            session.submit_tasks([Task.at(99, 0.0, 0.0)])
            assert session.snapshot().tasks_total == tasks_before + 1
            assert not session.is_complete
        else:
            with pytest.raises(SessionStateError):
                session.submit_tasks([Task.at(99, 0.0, 0.0)])

    def test_solve_and_session_drive_agree(self, name, tiny_instance):
        solved = build_solver(name).solve(tiny_instance)
        driven = build_solver(name).open_session(tiny_instance).drive(
            WorkerStream(tiny_instance.workers)
        )
        assert driven.algorithm == solved.algorithm == name
        assert driven.completed == solved.completed
        assert driven.max_latency == solved.max_latency
        assert (
            {a.as_tuple() for a in driven.arrangement}
            == {a.as_tuple() for a in solved.arrangement}
        )
