"""Bounded arrival queues with explicit backpressure policies.

Each shard of a :class:`~repro.service.sharding.ShardedDispatcher` owns one
:class:`BoundedArrivalQueue` between the router (the thread calling
``feed_worker``) and the shard's dispatch loop.  The queue is bounded on
purpose: a shard falling behind must surface that fact instead of growing
an unbounded backlog.  What happens at the bound is the *backpressure
policy*:

* ``"block"`` — the producer waits for space (lossless; the default);
* ``"drop-oldest"`` — the oldest queued arrival is evicted to admit the new
  one (bounded staleness; the evicted arrival is *shed*);
* ``"reject"`` — the new arrival is refused (bounded lag; the refused
  arrival is shed).

Shed arrivals are counted (``evicted`` / ``rejected`` / ``shed``), so a
load harness can report shed rate against offered traffic honestly.  Note
that any shedding breaks the byte-identity guarantee with a single-process
dispatcher — an exact run requires the lossless ``"block"`` policy (or a
queue that never fills).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Optional, Tuple

#: The accepted policy names, in documentation order.
BACKPRESSURE_POLICIES: Tuple[str, ...] = ("block", "drop-oldest", "reject")


class QueueClosedError(RuntimeError):
    """An arrival was offered to (or awaited from) a closed queue."""


class BoundedArrivalQueue:
    """A bounded FIFO with a selectable full-queue policy and shed counters.

    Thread-safe.  Producers call :meth:`put`; the consumer loop calls
    :meth:`get` / :meth:`task_done`; :meth:`join` waits until every accepted
    arrival has been fully processed; :meth:`close` wakes blocked producers
    and consumers and lets the consumer drain what remains.

    Counters (monotone, readable at any time):

    * ``accepted`` — arrivals admitted to the queue;
    * ``evicted`` — arrivals shed by ``drop-oldest`` to make room;
    * ``rejected`` — arrivals refused by ``reject``;
    * ``shed`` — ``evicted + rejected``;
    * ``processed`` — arrivals for which :meth:`task_done` was called.
    """

    def __init__(self, capacity: int, policy: str = "block") -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        if policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown backpressure policy {policy!r}; "
                f"expected one of {', '.join(BACKPRESSURE_POLICIES)}"
            )
        self._capacity = capacity
        self._policy = policy
        self._items: Deque[object] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._all_done = threading.Condition(self._lock)
        self._closed = False
        self._unfinished = 0
        self._accepted = 0
        self._evicted = 0
        self._rejected = 0
        self._processed = 0

    # ------------------------------------------------------------ properties

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def policy(self) -> str:
        return self._policy

    @property
    def size(self) -> int:
        """Arrivals currently queued (excludes the one being processed)."""
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def accepted(self) -> int:
        with self._lock:
            return self._accepted

    @property
    def evicted(self) -> int:
        with self._lock:
            return self._evicted

    @property
    def rejected(self) -> int:
        with self._lock:
            return self._rejected

    @property
    def shed(self) -> int:
        """Arrivals lost to backpressure (evicted + rejected)."""
        with self._lock:
            return self._evicted + self._rejected

    @property
    def processed(self) -> int:
        with self._lock:
            return self._processed

    # ------------------------------------------------------------- lifecycle

    def put(self, item: object) -> bool:
        """Offer one arrival; return whether it was admitted.

        Under ``"block"`` this waits for space (always returns ``True``
        unless the queue is closed while waiting, which raises).  Under
        ``"drop-oldest"`` a full queue evicts its head and admits the new
        arrival (returns ``True``; the eviction is counted).  Under
        ``"reject"`` a full queue refuses the arrival (returns ``False``).

        Raises :class:`QueueClosedError` if the queue is already closed.
        """
        with self._lock:
            if self._closed:
                raise QueueClosedError("queue is closed")
            if len(self._items) >= self._capacity:
                if self._policy == "reject":
                    self._rejected += 1
                    return False
                if self._policy == "drop-oldest":
                    self._items.popleft()
                    self._evicted += 1
                    # The evicted arrival will never reach task_done.
                    self._unfinished -= 1
                    if self._unfinished == 0:
                        self._all_done.notify_all()
                else:  # block
                    while len(self._items) >= self._capacity and not self._closed:
                        self._not_full.wait()
                    if self._closed:
                        raise QueueClosedError("queue closed while blocked")
            self._items.append(item)
            self._accepted += 1
            self._unfinished += 1
            self._not_empty.notify()
            return True

    def get(self, timeout: Optional[float] = None) -> Optional[object]:
        """Take the next arrival; ``None`` once the queue is closed and empty.

        Blocks while the queue is open and empty (up to ``timeout`` seconds
        if given; a timeout also returns ``None`` — callers distinguish the
        cases via :attr:`closed`).
        """
        with self._lock:
            while not self._items:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def task_done(self) -> None:
        """Mark one taken arrival as fully processed (for :meth:`join`)."""
        with self._lock:
            if self._unfinished <= 0:
                raise RuntimeError("task_done() called more times than items taken")
            self._unfinished -= 1
            self._processed += 1
            if self._unfinished == 0:
                self._all_done.notify_all()

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait until every accepted arrival was processed; return success."""
        with self._lock:
            if self._unfinished == 0:
                return True
            return self._all_done.wait_for(
                lambda: self._unfinished == 0, timeout=timeout
            )

    def flush(self) -> int:
        """Discard every queued arrival; return how many were dropped.

        The failure path for dead/quarantined shards: the dropped
        arrivals count as finished for :meth:`join` purposes (they will
        never reach :meth:`task_done`), so a runtime with a failed shard
        can still drain cleanly.  The caller owns the discard accounting;
        these drops are *not* added to the backpressure ``shed`` counters.
        """
        with self._lock:
            dropped = len(self._items)
            self._items.clear()
            self._unfinished -= dropped
            if self._unfinished == 0:
                self._all_done.notify_all()
            self._not_full.notify_all()
            return dropped

    def close(self) -> None:
        """Refuse further arrivals and wake everyone.

        Consumers drain the remaining items and then receive ``None``;
        producers blocked on a full queue raise :class:`QueueClosedError`.
        Idempotent.
        """
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
