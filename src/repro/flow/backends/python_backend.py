"""The pure-Python reference backend (the default when numpy is absent).

This is the SSPA inner loop exactly as the kernel refactor tuned it for
CPython: packed per-node ``(arc, head, cost)`` rows, a solver-local residual
array, *live* adjacency rows from which saturated arcs are removed (and
reopened twins inserted) only along each augmenting path, goal-directed
pruning against the sink's tentative distance, and a finalized-node skip
before any float arithmetic.  It has no dependencies beyond the standard
library and defines the bit-exact behaviour every other backend must match.
"""

from __future__ import annotations

import bisect
import heapq
import math
from typing import TYPE_CHECKING, List, Tuple

from repro.flow.backends.base import RELAX_EPS, KernelBackend

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.flow.kernel import ArcArena

_INF = math.inf


class PythonBackend(KernelBackend):
    """Successive shortest paths over the arena's packed adjacency rows."""

    name = "python"

    def run(
        self,
        graph: "ArcArena",
        source: int,
        sink: int,
        target: float,
        potentials: List[float],
    ) -> Tuple[int, int, List[float]]:
        n = graph.num_nodes
        pot = potentials
        head, cost, cap, flow = graph.head, graph.cost, graph.cap, graph.flow
        heappush, heappop = heapq.heappush, heapq.heappop
        insort = bisect.insort

        # Solver-local residual array: one index per touch instead of two
        # plus a subtraction.  ``flow`` is kept in lockstep so callers read
        # arc flows off the arena as usual.
        res = [cap[a] - flow[a] for a in range(len(cap))]

        # Live adjacency: per-node rows holding only arcs with residual
        # capacity, so Dijkstra never scans (or re-checks) saturated arcs.
        # Rows stay sorted by arc id — the same stable insertion order as
        # :meth:`ArcArena.packed_adjacency`, preserving deterministic
        # tie-breaking — and are patched only along each augmenting path as
        # pushes saturate forward arcs and open their residual twins.
        rows: List[List[Tuple[int, int, float]]] = [
            [entry for entry in row if res[entry[0]] > 0]
            for row in graph.packed_adjacency()
        ]

        routed = 0
        augmentations = 0

        while routed < target:
            # Dijkstra over reduced costs, early exit at the sink.
            dist = [_INF] * n
            pred = [-1] * n
            dist[source] = 0.0
            dist_sink = _INF
            done = bytearray(n)
            touched: List[int] = []
            heap: List[Tuple[float, int]] = [(0.0, source)]
            while heap:
                d, node = heappop(heap)
                if done[node]:
                    continue
                if node == sink:
                    break
                done[node] = 1
                # No infinite-potential guards in this loop: a scanned arc
                # has residual capacity and leaves a node the search
                # reached, and any such arc's head was already reachable
                # when the initial potentials were computed — so its
                # potential is finite.
                base = d + pot[node]
                for a, h, c in rows[node]:
                    # A finalized head can never improve: heap keys are
                    # monotone, so candidate >= d >= dist[h].  Skipping it
                    # saves the float arithmetic for every arc pointing
                    # back into the already-popped region.
                    if done[h]:
                        continue
                    # candidate = d + max(reduced cost, 0); the max()
                    # clamps floating-point noise that pushes a reduced
                    # cost below 0.
                    candidate = base + c - pot[h]
                    if candidate < d:
                        candidate = d
                    d_head = dist[h]
                    # Goal-directed pruning: a node whose tentative
                    # distance is not below the sink's would pop after the
                    # sink (heap ties resolve by node id and the sink's
                    # entry is already enqueued at dist[sink]), so it can
                    # never join the augmenting path, and the potential
                    # update clamps every distance at the sink's anyway.
                    # Skipping it here changes nothing in the output but
                    # avoids exploring the far side of the graph on every
                    # augmentation.
                    if candidate < d_head - RELAX_EPS and candidate < dist_sink:
                        if d_head == _INF:
                            touched.append(h)
                        dist[h] = candidate
                        pred[h] = a
                        if h == sink:
                            dist_sink = candidate
                        heappush(heap, (candidate, h))

            sink_dist = dist_sink
            if sink_dist == _INF:
                break

            # Advance potentials so the next round's reduced costs stay
            # non-negative.  Textbook SSPA adds ``min(dist[v], sink_dist)``
            # to every finite potential; since reduced costs only ever see
            # potential *differences*, the uniform ``+ sink_dist`` part
            # cancels and only nodes the search actually reached below the
            # sink need the relative update ``dist[v] - sink_dist`` —
            # O(region) instead of O(V) per augmentation.
            for v in touched:
                d_v = dist[v]
                if d_v < sink_dist:
                    pot[v] += d_v - sink_dist

            # Bottleneck along sink -> source, then push.
            bottleneck = target - routed
            v = sink
            while v != source:
                a = pred[v]
                r = res[a]
                if r < bottleneck:
                    bottleneck = r
                v = head[a ^ 1]
            bottleneck = int(bottleneck)
            if bottleneck <= 0:
                break
            v = sink
            while v != source:
                a = pred[v]
                twin = a ^ 1
                flow[a] += bottleneck
                flow[twin] -= bottleneck
                res[a] -= bottleneck
                if res[a] == 0:
                    rows[head[twin]].remove((a, head[a], cost[a]))
                if res[twin] == 0:
                    insort(rows[head[a]], (twin, head[twin], cost[twin]))
                res[twin] += bottleneck
                v = head[twin]

            routed += bottleneck
            augmentations += 1

        return routed, augmentations, pot
