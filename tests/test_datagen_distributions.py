"""Tests for repro.datagen.distributions."""

import numpy as np
import pytest

from repro.core.quality_threshold import MIN_WORKER_ACCURACY
from repro.datagen.distributions import NormalAccuracy, UniformAccuracy


class TestNormalAccuracy:
    def test_samples_are_clipped_to_valid_range(self):
        dist = NormalAccuracy(mean=0.70, stddev=0.2)
        samples = dist.sample(np.random.default_rng(0), 5000)
        assert samples.min() >= MIN_WORKER_ACCURACY
        assert samples.max() <= 1.0

    def test_mean_is_respected_when_far_from_bounds(self):
        dist = NormalAccuracy(mean=0.86, stddev=0.05)
        samples = dist.sample(np.random.default_rng(1), 20000)
        assert samples.mean() == pytest.approx(0.86, abs=0.01)

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            NormalAccuracy(mean=0.5)
        with pytest.raises(ValueError):
            NormalAccuracy(mean=0.9, stddev=0.0)

    def test_table_iv_means_are_valid(self):
        for mean in (0.82, 0.84, 0.86, 0.88, 0.90):
            NormalAccuracy(mean=mean, stddev=0.05)


class TestUniformAccuracy:
    def test_samples_within_interval(self):
        dist = UniformAccuracy(mean=0.86, half_width=0.08)
        samples = dist.sample(np.random.default_rng(2), 5000)
        assert samples.min() >= max(MIN_WORKER_ACCURACY, 0.86 - 0.08) - 1e-9
        assert samples.max() <= min(1.0, 0.86 + 0.08) + 1e-9

    def test_mean_matches_configuration(self):
        dist = UniformAccuracy(mean=0.84)
        samples = dist.sample(np.random.default_rng(3), 20000)
        assert samples.mean() == pytest.approx(0.84, abs=0.01)

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            UniformAccuracy(mean=0.3)
        with pytest.raises(ValueError):
            UniformAccuracy(mean=0.86, half_width=0.0)

    def test_clipping_near_one(self):
        dist = UniformAccuracy(mean=0.98, half_width=0.08)
        samples = dist.sample(np.random.default_rng(4), 1000)
        assert samples.max() <= 1.0
