#!/usr/bin/env python
"""Serving three concurrent LTC campaigns from one merged check-in stream.

A real spatial-crowdsourcing platform never solves one instance at a time:
campaigns in different neighbourhoods overlap, and every checking-in worker
belongs to whichever campaigns are nearby.  This scenario builds three
synthetic campaigns in three separate districts, merges their worker streams
into a single city-wide arrival sequence, and lets the
:class:`~repro.service.LTCDispatcher` route each arrival to the campaigns it
is eligible for — each served by its own solver through the uniform
:class:`~repro.core.session.Session` protocol.

The demo then verifies the service layer end to end: replaying each
campaign's routed sub-stream through a fresh standalone session must give
exactly the per-campaign max latency the dispatcher reported.  Finally
the same campaigns and the same stream run through a
:class:`~repro.service.ShardedDispatcher` — each district pinned to its
own geographic shard — and the per-campaign latencies must come out
identical, because sharding changes throughput, never arrangements.

Run with::

    python examples/dispatch_service.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import SyntheticConfig, generate_synthetic_instance
from repro.algorithms.registry import build_solver
from repro.core.instance import LTCInstance
from repro.geo.point import Point
from repro.service import LTCDispatcher, ShardPlan, ShardedDispatcher

#: (district name, location offset, solver spec) — one campaign per district.
#: Districts are far enough apart that eligibility (a proximity test under
#: the sigmoid accuracy model) partitions the merged stream geographically.
DISTRICTS = [
    ("downtown", (0.0, 0.0), "AAM"),
    ("harbour", (1000.0, 0.0), "LAF"),
    ("airport", (0.0, 1000.0), "AAM?use_spatial_index=false"),
]


def district_instance(name: str, offset: tuple[float, float], seed: int) -> LTCInstance:
    """A small campaign translated into its own district."""
    config = SyntheticConfig(
        num_tasks=10,
        num_workers=250,
        capacity=4,
        error_rate=0.14,
        grid_size=100.0,
        seed=seed,
        name=f"campaign {name}",
    )
    instance = generate_synthetic_instance(config)
    dx, dy = offset
    return LTCInstance(
        tasks=[
            replace(task, location=Point(task.location.x + dx, task.location.y + dy))
            for task in instance.tasks
        ],
        workers=[
            replace(w, location=Point(w.location.x + dx, w.location.y + dy))
            for w in instance.workers
        ],
        error_rate=instance.error_rate,
        accuracy_model=instance.accuracy_model,
        name=instance.name,
    )


def merged_city_stream(instances):
    """Interleave the campaigns' workers into one city-wide arrival order."""
    queues = [list(instance.workers) for instance in instances]
    merged = []
    while any(queues):
        for queue in queues:
            if queue:
                merged.append(replace(queue.pop(0), index=len(merged) + 1))
    return merged


def main() -> None:
    instances = {
        name: district_instance(name, offset, seed=2018 + position)
        for position, (name, offset, _) in enumerate(DISTRICTS)
    }
    dispatcher = LTCDispatcher(keep_streams=True)
    for name, _, spec in DISTRICTS:
        dispatcher.submit_instance(instances[name], solver=spec, session_id=name)

    stream = merged_city_stream(list(instances.values()))
    print(f"City stream: {len(stream)} merged check-ins across "
          f"{len(DISTRICTS)} concurrent campaigns\n")
    consumed = dispatcher.feed_stream(stream)

    print(f"{'campaign':10s} {'solver':28s} {'routed':>7s} {'latency':>8s} "
          f"{'tasks':>7s} {'done':>5s}")
    statuses = dispatcher.poll()
    for name, status in statuses.items():
        snapshot = status.snapshot
        print(f"{name:10s} {status.algorithm:28s} {status.workers_routed:7d} "
              f"{snapshot.max_latency:8d} "
              f"{snapshot.tasks_completed:3d}/{snapshot.tasks_total:<3d} "
              f"{str(snapshot.complete):>5s}")

    # Verify the serving layer: replaying each campaign's routed sub-stream
    # through a fresh standalone session must reproduce its latency exactly.
    print("\nPer-campaign check against standalone single-session runs:")
    for name, _, spec in DISTRICTS:
        partition = dispatcher.routed_stream(name)
        standalone = build_solver(spec).open_session(instances[name]).drive(partition)
        dispatched_latency = statuses[name].max_latency
        verdict = "OK" if standalone.max_latency == dispatched_latency else "MISMATCH"
        print(f"  {name:10s} dispatched={dispatched_latency:5d}  "
              f"standalone={standalone.max_latency:5d}  [{verdict}]")

    metrics = dispatcher.metrics
    print(f"\nAggregate service metrics after {consumed} arrivals:")
    for key, value in metrics.summary().items():
        print(f"  {key:22s} {value:12.3f}")

    results = dispatcher.close_all()
    completed = sum(result.completed for result in results.values())
    print(f"\nClosed {len(results)} sessions; {completed} campaigns completed.")
    print("Latency is measured in per-campaign arrivals, so concurrent")
    print("campaigns do not inflate each other's latency — the dispatcher")
    print("re-indexes every routed worker into its campaign's local order.")

    # --- Sharded serving: same campaigns, same stream, one dispatcher per
    # geographic shard.  Each district's reach box fits inside one cell of
    # a 2x2 plan, so each campaign is pinned to its own shard and the
    # per-campaign latencies must be identical to the single-process run.
    plan = ShardPlan.for_campaigns(instances.values(), cols=2)
    sharded = ShardedDispatcher(plan, executor="serial", queue_policy="block")
    for name, _, spec in DISTRICTS:
        sharded.submit_instance(instances[name], solver=spec, session_id=name)
    sharded.feed_stream(stream)
    sharded.drain()

    print(f"\nSharded rerun over a {plan.cols}x{plan.rows} plan "
          f"({plan.num_geo_shards} geo shards + overflow):")
    for status in sharded.shard_status():
        if not status.session_ids:
            continue
        if status.is_overflow:
            kind = "overflow"
        else:
            cell = status.cell
            kind = (f"cell x:[{cell.min_x:.0f}, {cell.max_x:.0f}] "
                    f"y:[{cell.min_y:.0f}, {cell.max_y:.0f}]")
        print(f"  shard {status.shard_id} ({kind}): "
              f"sessions={list(status.session_ids)} "
              f"arrivals={status.arrivals_processed} "
              f"shed={status.arrivals_shed}")
    sharded_statuses = sharded.poll()
    for name, _, _ in DISTRICTS:
        single = statuses[name].max_latency
        shard = sharded_statuses[name].max_latency
        verdict = "OK" if single == shard else "MISMATCH"
        print(f"  {name:10s} single-process={single:5d}  "
              f"sharded={shard:5d}  [{verdict}]")
    sharded.stop()
    sharded.close_all()
    print("Sharding is exact: pinned campaigns see the same routed")
    print("sub-stream a single dispatcher would deliver, in the same order.")


if __name__ == "__main__":
    main()
