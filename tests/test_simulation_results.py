"""Tests for experiment result records and aggregation."""

import pytest

from repro.simulation.results import ExperimentRecord, FIGURE_METRICS, ResultTable


def record(value, algorithm, repetition=0, latency=100.0, runtime=1.0, memory=10.0,
           experiment_id="exp", completed=True):
    return ExperimentRecord(
        experiment_id=experiment_id,
        sweep_parameter="|T|",
        sweep_value=value,
        algorithm=algorithm,
        repetition=repetition,
        max_latency=latency,
        completed=completed,
        runtime_seconds=runtime,
        peak_memory_mb=memory,
    )


class TestExperimentRecord:
    def test_metric_lookup(self):
        r = record(1.0, "LAF", latency=42.0, runtime=0.5, memory=7.0)
        assert r.metric("max_latency") == 42.0
        assert r.metric("runtime_seconds") == 0.5
        assert r.metric("peak_memory_mb") == 7.0
        assert r.metric("completed") == 1.0

    def test_metric_from_extra(self):
        r = ExperimentRecord(
            experiment_id="exp", sweep_parameter="|T|", sweep_value=1.0,
            algorithm="AAM", repetition=0, max_latency=1.0, completed=True,
            runtime_seconds=0.1, peak_memory_mb=1.0, extra={"batches": 3.0},
        )
        assert r.metric("batches") == 3.0
        with pytest.raises(KeyError):
            r.metric("nonexistent")

    def test_figure_metrics_tuple(self):
        assert FIGURE_METRICS == ("max_latency", "runtime_seconds", "peak_memory_mb")


class TestResultTable:
    def test_add_checks_experiment_id(self):
        table = ResultTable("exp", "|T|")
        with pytest.raises(ValueError):
            table.add(record(1.0, "LAF", experiment_id="other"))

    def test_algorithms_in_first_appearance_order(self):
        table = ResultTable("exp", "|T|")
        table.extend([record(1.0, "LAF"), record(1.0, "AAM"), record(2.0, "LAF")])
        assert table.algorithms() == ["LAF", "AAM"]
        assert table.sweep_values() == [1.0, 2.0]
        assert len(table) == 3

    def test_aggregate_and_mean_series(self):
        table = ResultTable("exp", "|T|")
        table.extend([
            record(1.0, "LAF", repetition=0, latency=100.0),
            record(1.0, "LAF", repetition=1, latency=200.0),
            record(2.0, "LAF", repetition=0, latency=300.0),
        ])
        aggregated = table.aggregate("max_latency")
        assert aggregated["LAF"][1.0].count == 2
        assert aggregated["LAF"][1.0].mean == pytest.approx(150.0)
        series = table.mean_series("max_latency")
        assert series["LAF"] == [(1.0, pytest.approx(150.0)), (2.0, pytest.approx(300.0))]

    def test_completion_rate(self):
        table = ResultTable("exp", "|T|")
        assert table.completion_rate() == 0.0
        table.extend([
            record(1.0, "LAF", completed=True),
            record(2.0, "LAF", completed=False),
        ])
        assert table.completion_rate() == pytest.approx(0.5)

    def test_to_rows(self):
        table = ResultTable("exp", "|T|")
        table.add(record(1.0, "AAM", latency=11.0))
        rows = table.to_rows()
        assert rows[0]["algorithm"] == "AAM"
        assert rows[0]["|T|"] == 1.0
        assert rows[0]["max_latency"] == 11.0
