"""Exact (exponential) solver for tiny offline LTC instances.

Offline LTC is NP-hard, so this solver is strictly a test/analysis tool: it
finds the true minimum maximum latency by searching, for increasing worker
prefixes, whether a feasible arrangement exists using only those workers.
Within a prefix the feasibility search enumerates, worker by worker, every
subset of at most ``K`` eligible tasks, with an optimistic pruning bound on
the remaining achievable ``Acc*``.

The empirical approximation-ratio tests compare MCF-LTC / LAF / AAM against
this solver on instances with a handful of tasks and a dozen workers or so;
anything larger will take exponential time.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import OfflineSolver, SolveResult
from repro.core.arrangement import Arrangement
from repro.core.candidates import CandidateFinder
from repro.core.exceptions import InfeasibleInstanceError
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker


class ExactSolver(OfflineSolver):
    """Brute-force optimal solver (exponential; tiny instances only).

    Parameters
    ----------
    max_search_nodes:
        Safety valve on the backtracking search; exceeding it raises
        ``RuntimeError`` rather than hanging the test-suite.
    """

    name = "Exact"

    def __init__(self, max_search_nodes: int = 2_000_000) -> None:
        self.max_search_nodes = max_search_nodes

    def solve(self, instance: LTCInstance) -> SolveResult:
        candidates = CandidateFinder(instance, use_spatial_index=False)
        delta = instance.delta

        # Precompute the eligible Acc* of every worker for every task.
        eligible: Dict[int, Dict[int, float]] = {}
        for worker in instance.workers:
            eligible[worker.index] = {
                task.task_id: instance.acc_star(worker, task)
                for task in candidates.candidates(worker)
            }

        best_plan: Optional[List[Tuple[int, int]]] = None
        for prefix in range(1, instance.num_workers + 1):
            plan = self._feasible_with_prefix(instance, eligible, delta, prefix)
            if plan is not None:
                best_plan = plan
                break

        arrangement = instance.new_arrangement()
        if best_plan is None:
            return SolveResult(
                algorithm=self.name,
                arrangement=arrangement,
                completed=False,
                max_latency=0,
                workers_observed=instance.num_workers,
            )

        for worker_index, task_id in best_plan:
            arrangement.assign(instance.worker(worker_index), instance.task(task_id))
        return SolveResult(
            algorithm=self.name,
            arrangement=arrangement,
            completed=arrangement.is_complete(),
            max_latency=arrangement.max_latency,
            workers_observed=arrangement.max_latency,
        )

    # ------------------------------------------------------------ feasibility

    def _feasible_with_prefix(
        self,
        instance: LTCInstance,
        eligible: Dict[int, Dict[int, float]],
        delta: float,
        prefix: int,
    ) -> Optional[List[Tuple[int, int]]]:
        """Search for a feasible arrangement using only workers ``1..prefix``."""
        task_ids = [task.task_id for task in instance.tasks]
        workers = instance.workers[:prefix]

        # Optimistic per-task contribution of the workers from position i on:
        # suffix_best[i][t] assumes every later worker helps every task.
        suffix_best: List[Dict[int, float]] = [
            {task_id: 0.0 for task_id in task_ids} for _ in range(prefix + 1)
        ]
        for position in range(prefix - 1, -1, -1):
            worker = workers[position]
            for task_id in task_ids:
                contribution = eligible[worker.index].get(task_id, 0.0)
                suffix_best[position][task_id] = (
                    suffix_best[position + 1][task_id] + contribution
                )

        self._nodes = 0
        accumulated = {task_id: 0.0 for task_id in task_ids}
        plan: List[Tuple[int, int]] = []
        if self._search(instance, eligible, delta, workers, 0, accumulated,
                        suffix_best, plan):
            return list(plan)
        return None

    def _search(
        self,
        instance: LTCInstance,
        eligible: Dict[int, Dict[int, float]],
        delta: float,
        workers: Sequence[Worker],
        position: int,
        accumulated: Dict[int, float],
        suffix_best: List[Dict[int, float]],
        plan: List[Tuple[int, int]],
    ) -> bool:
        self._nodes += 1
        if self._nodes > self.max_search_nodes:
            raise RuntimeError(
                "ExactSolver exceeded its search budget; the instance is too "
                "large for exhaustive solving"
            )

        open_tasks = [
            task_id
            for task_id, value in accumulated.items()
            if value < delta - 1e-9
        ]
        if not open_tasks:
            return True
        if position >= len(workers):
            return False

        # Optimistic bound: even if every remaining worker contributed to
        # every task, can each open task still reach delta?
        for task_id in open_tasks:
            if accumulated[task_id] + suffix_best[position][task_id] < delta - 1e-9:
                return False

        worker = workers[position]
        options = [
            task_id for task_id in open_tasks if task_id in eligible[worker.index]
        ]
        max_take = min(worker.capacity, len(options))

        # Try the largest selections first: completing tasks sooner prunes
        # more of the search space.
        for take in range(max_take, -1, -1):
            for combo in itertools.combinations(options, take):
                for task_id in combo:
                    accumulated[task_id] += eligible[worker.index][task_id]
                    plan.append((worker.index, task_id))
                if self._search(instance, eligible, delta, workers, position + 1,
                                accumulated, suffix_best, plan):
                    return True
                for task_id in combo:
                    accumulated[task_id] -= eligible[worker.index][task_id]
                    plan.pop()
        return False
