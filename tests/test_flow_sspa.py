"""Tests for the Successive Shortest Path min-cost-flow solver.

Correctness is checked three ways: hand-computed small networks, validation
of flow feasibility, and comparison against ``networkx``'s min_cost_flow on
randomly generated integer-cost networks (networkx requires integer costs,
so the random networks use integers; the LTC reduction's real-valued costs
are covered by the bipartite assignment tests below and by the algorithm
tests).
"""

import math
import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.flow.exceptions import InfeasibleFlowError
from repro.flow.network import FlowNetwork
from repro.flow.sspa import min_cost_flow, successive_shortest_paths
from repro.flow.validate import validate_flow


def simple_diamond():
    """s -> {a, b} -> t with different costs."""
    network = FlowNetwork()
    network.add_edge("s", "a", 2, 1.0)
    network.add_edge("s", "b", 2, 2.0)
    network.add_edge("a", "t", 2, 1.0)
    network.add_edge("b", "t", 2, 1.0)
    return network


class TestSmallNetworks:
    def test_routes_max_flow_on_diamond(self):
        network = simple_diamond()
        result = successive_shortest_paths(network, "s", "t")
        assert result.flow_value == 4
        assert result.total_cost == pytest.approx(2 * 2.0 + 2 * 3.0)
        assert not validate_flow(network, "s", "t", expected_value=4)

    def test_respects_max_flow_limit_and_prefers_cheap_path(self):
        network = simple_diamond()
        result = successive_shortest_paths(network, "s", "t", max_flow=2)
        assert result.flow_value == 2
        # Both units should use the cheaper s->a->t path (cost 2 each).
        assert result.total_cost == pytest.approx(4.0)
        assert result.flow_on("s", "a") == 2
        assert result.flow_on("s", "b") == 0

    def test_negative_costs_are_handled(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 1, 0.0)
        network.add_edge("s", "b", 1, 0.0)
        network.add_edge("a", "t", 1, -5.0)
        network.add_edge("b", "t", 1, -1.0)
        result = successive_shortest_paths(network, "s", "t", max_flow=1)
        assert result.flow_on("a", "t") == 1
        assert result.total_cost == pytest.approx(-5.0)

    def test_disconnected_sink_routes_nothing(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 1, 1.0)
        network.add_node("t")
        result = successive_shortest_paths(network, "s", "t")
        assert result.flow_value == 0
        assert result.augmentations == 0

    def test_min_cost_flow_raises_when_infeasible(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 1, 1.0)
        network.add_edge("a", "t", 1, 1.0)
        with pytest.raises(InfeasibleFlowError):
            min_cost_flow(network, "s", "t", amount=2)

    def test_invalid_arguments(self):
        network = simple_diamond()
        with pytest.raises(ValueError):
            successive_shortest_paths(network, "s", "missing")
        with pytest.raises(ValueError):
            successive_shortest_paths(network, "s", "t", max_flow=-1)

    def test_flow_continues_from_existing_flow(self):
        network = simple_diamond()
        successive_shortest_paths(network, "s", "t", max_flow=2)
        result = successive_shortest_paths(network, "s", "t", max_flow=2)
        assert result.flow_value == 2
        assert network.outflow("s") == 4


class TestBipartiteAssignment:
    def test_maximises_total_value_with_real_costs(self):
        """The LTC-style reduction: maximise Acc* = minimise negative cost."""
        values = {
            ("w1", "t1"): 0.9, ("w1", "t2"): 0.2,
            ("w2", "t1"): 0.85, ("w2", "t2"): 0.8,
        }
        network = FlowNetwork()
        for worker in ("w1", "w2"):
            network.add_edge("s", worker, 1, 0.0)
        for task in ("t1", "t2"):
            network.add_edge(task, "d", 1, 0.0)
        for (worker, task), value in values.items():
            network.add_edge(worker, task, 1, -value)
        result = successive_shortest_paths(network, "s", "d")
        assert result.flow_value == 2
        # Optimal assignment: w1->t1 (0.9) + w2->t2 (0.8) = 1.7.
        assert result.total_cost == pytest.approx(-1.7)
        assert result.flow_on("w1", "t1") == 1
        assert result.flow_on("w2", "t2") == 1


def random_network(rng: random.Random, num_nodes: int, num_edges: int):
    """A random network with integer capacities/costs plus an s-t backbone."""
    network = FlowNetwork()
    graph = nx.DiGraph()
    nodes = list(range(num_nodes))
    for node in nodes:
        network.add_node(node)
        graph.add_node(node)
    edges = set()
    for _ in range(num_edges):
        u, v = rng.sample(nodes, 2)
        if (u, v) in edges:
            continue
        edges.add((u, v))
        capacity = rng.randint(1, 5)
        cost = rng.randint(0, 9)
        network.add_edge(u, v, capacity, float(cost))
        graph.add_edge(u, v, capacity=capacity, weight=cost)
    return network, graph


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(12))
    def test_min_cost_matches_networkx(self, seed):
        rng = random.Random(seed)
        network, graph = random_network(rng, num_nodes=8, num_edges=18)
        source, sink = 0, 7

        # Maximum routable flow, found with networkx.
        try:
            max_flow_value = nx.maximum_flow_value(
                graph, source, sink, capacity="capacity"
            )
        except nx.NetworkXError:
            max_flow_value = 0
        if max_flow_value == 0:
            result = successive_shortest_paths(network, source, sink)
            assert result.flow_value == 0
            return

        demand = rng.randint(1, max_flow_value)
        graph.nodes[source]["demand"] = -demand
        graph.nodes[sink]["demand"] = demand
        flow_dict = nx.min_cost_flow(graph, capacity="capacity", weight="weight")
        expected_cost = nx.cost_of_flow(graph, flow_dict, weight="weight")

        result = successive_shortest_paths(network, source, sink, max_flow=demand,
                                           require_max_flow=True)
        assert result.flow_value == demand
        assert result.total_cost == pytest.approx(expected_cost, abs=1e-6)
        assert not validate_flow(network, source, sink, expected_value=demand)


class TestFlowResult:
    def test_flow_on_missing_edge_is_zero(self):
        network = simple_diamond()
        result = successive_shortest_paths(network, "s", "t", max_flow=1)
        assert result.flow_on("b", "a") == 0

    def test_augmentation_count_bounded_by_flow(self):
        network = simple_diamond()
        result = successive_shortest_paths(network, "s", "t")
        assert 1 <= result.augmentations <= result.flow_value
