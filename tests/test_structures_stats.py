"""Tests for repro.structures.stats."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.structures.stats import RunningStats


class TestRunningStats:
    def test_empty_stats(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        assert math.isnan(stats.summary()["min"])

    def test_single_value(self):
        stats = RunningStats()
        stats.add(4.0)
        assert stats.mean == 4.0
        assert stats.variance == 0.0
        assert stats.minimum == stats.maximum == 4.0

    def test_known_sequence(self):
        stats = RunningStats()
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.stddev == pytest.approx(np.std([2, 4, 4, 4, 5, 5, 7, 9], ddof=1))
        assert stats.minimum == 2.0
        assert stats.maximum == 9.0

    def test_merge(self):
        a = RunningStats()
        a.extend([1.0, 2.0])
        b = RunningStats()
        b.extend([3.0, 4.0])
        merged = a.merge(b)
        assert merged.count == 4
        assert merged.mean == pytest.approx(2.5)

    def test_summary_keys(self):
        stats = RunningStats()
        stats.add(1.0)
        assert set(stats.summary()) == {"count", "mean", "stddev", "min", "max"}


samples = st.lists(st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
                   min_size=1, max_size=100)


class TestAgainstNumpy:
    @given(samples)
    def test_mean_matches_numpy(self, values):
        stats = RunningStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(float(np.mean(values)), rel=1e-9, abs=1e-7)

    @given(samples)
    def test_variance_matches_numpy(self, values):
        stats = RunningStats()
        stats.extend(values)
        expected = float(np.var(values, ddof=1)) if len(values) > 1 else 0.0
        assert stats.variance == pytest.approx(expected, rel=1e-6, abs=1e-6)

    @given(samples)
    def test_min_max(self, values):
        stats = RunningStats()
        stats.extend(values)
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)
