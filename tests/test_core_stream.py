"""Tests for repro.core.stream (the online temporal constraint)."""

import pytest

from repro.core.stream import WorkerStream
from repro.core.worker import Worker
from repro.geo.point import Point


def workers(count):
    return [
        Worker(index=i, location=Point(0, 0), accuracy=0.9, capacity=1)
        for i in range(1, count + 1)
    ]


class TestWorkerStream:
    def test_iterates_in_arrival_order(self):
        stream = WorkerStream(workers(3))
        assert [w.index for w in stream] == [1, 2, 3]

    def test_next_worker_and_exhaustion(self):
        stream = WorkerStream(workers(2))
        assert stream.next_worker().index == 1
        assert stream.consumed == 1
        assert stream.remaining == 1
        assert not stream.exhausted
        assert stream.next_worker().index == 2
        assert stream.exhausted
        assert stream.next_worker() is None

    def test_len(self):
        assert len(WorkerStream(workers(5))) == 5

    def test_rejects_out_of_order_workers(self):
        bad = list(reversed(workers(3)))
        with pytest.raises(ValueError):
            WorkerStream(bad)

    def test_rejects_gapped_indices(self):
        gapped = [workers(3)[0], workers(3)[2]]
        with pytest.raises(ValueError):
            WorkerStream(gapped)

    def test_restart_returns_fresh_stream(self):
        stream = WorkerStream(workers(2))
        list(stream)
        assert stream.exhausted
        fresh = stream.restart()
        assert not fresh.exhausted
        assert [w.index for w in fresh] == [1, 2]

    def test_empty_stream(self):
        stream = WorkerStream([])
        assert stream.exhausted
        assert list(stream) == []
