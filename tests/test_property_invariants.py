"""Property-based tests of solver invariants on randomly generated instances.

Hypothesis generates small random LTC instances (random per-pair accuracies,
random capacities and error rates) and checks that every solver maintains the
problem's invariants regardless of the input:

* no (worker, task) pair is assigned twice;
* no worker exceeds its capacity;
* a completed run accumulates at least delta on every task;
* the reported latency equals the largest worker index actually used;
* online solvers never assign a worker before it "arrives".
"""

import math

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algorithms.registry import get_solver
from repro.core.accuracy import TabularAccuracy
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point

SOLVER_NAMES = ["LAF", "AAM", "Random", "MCF-LTC", "Base-off"]


@st.composite
def small_instances(draw):
    num_tasks = draw(st.integers(min_value=1, max_value=4))
    num_workers = draw(st.integers(min_value=2, max_value=14))
    capacity = draw(st.integers(min_value=1, max_value=3))
    error_rate = draw(st.sampled_from([0.1, 0.2, 0.3, 0.45]))
    table = {}
    for worker_index in range(1, num_workers + 1):
        for task_id in range(num_tasks):
            # Mix eligible and ineligible pairs so candidate filtering is hit.
            accuracy = draw(st.sampled_from([0.5, 0.7, 0.8, 0.9, 0.97]))
            table[(worker_index, task_id)] = accuracy
    tasks = [Task(task_id=i, location=Point(float(i), 0.0)) for i in range(num_tasks)]
    workers = [
        Worker(index=i, location=Point(0.0, float(i)), accuracy=0.9, capacity=capacity)
        for i in range(1, num_workers + 1)
    ]
    return LTCInstance(
        tasks=tasks,
        workers=workers,
        error_rate=error_rate,
        accuracy_model=TabularAccuracy(table),
    )


common_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSolverInvariants:
    @common_settings
    @given(instance=small_instances(), solver_name=st.sampled_from(SOLVER_NAMES))
    def test_no_duplicate_assignments(self, instance, solver_name):
        result = get_solver(solver_name).solve(instance)
        pairs = [a.as_tuple() for a in result.arrangement]
        assert len(pairs) == len(set(pairs))

    @common_settings
    @given(instance=small_instances(), solver_name=st.sampled_from(SOLVER_NAMES))
    def test_capacity_never_exceeded(self, instance, solver_name):
        result = get_solver(solver_name).solve(instance)
        loads: dict[int, int] = {}
        for assignment in result.arrangement:
            loads[assignment.worker_index] = loads.get(assignment.worker_index, 0) + 1
        for worker_index, load in loads.items():
            assert load <= instance.worker(worker_index).capacity

    @common_settings
    @given(instance=small_instances(), solver_name=st.sampled_from(SOLVER_NAMES))
    def test_completion_implies_error_rate_constraint(self, instance, solver_name):
        result = get_solver(solver_name).solve(instance)
        if result.completed:
            for task in instance.tasks:
                assert result.arrangement.accumulated_of(task.task_id) >= \
                    instance.delta - 1e-9

    @common_settings
    @given(instance=small_instances(), solver_name=st.sampled_from(SOLVER_NAMES))
    def test_reported_latency_matches_arrangement(self, instance, solver_name):
        result = get_solver(solver_name).solve(instance)
        if result.arrangement.assignments:
            max_index = max(a.worker_index for a in result.arrangement)
            assert result.max_latency == max_index
        else:
            assert result.max_latency == 0

    @common_settings
    @given(instance=small_instances(),
           solver_name=st.sampled_from(["LAF", "AAM", "Random"]))
    def test_online_solvers_never_use_unobserved_workers(self, instance, solver_name):
        result = get_solver(solver_name).solve(instance)
        assert all(
            assignment.worker_index <= result.workers_observed
            for assignment in result.arrangement
        )

    @common_settings
    @given(instance=small_instances(),
           solver_name=st.sampled_from(["LAF", "AAM", "Random"]))
    def test_online_solvers_stop_as_soon_as_complete(self, instance, solver_name):
        result = get_solver(solver_name).solve(instance)
        if result.completed:
            assert result.workers_observed == result.max_latency

    @common_settings
    @given(instance=small_instances())
    def test_accumulated_acc_star_equals_sum_of_assignments(self, instance):
        result = get_solver("AAM").solve(instance)
        totals: dict[int, float] = {task.task_id: 0.0 for task in instance.tasks}
        for assignment in result.arrangement:
            totals[assignment.task_id] += assignment.acc_star
        for task_id, total in totals.items():
            assert math.isclose(
                total, result.arrangement.accumulated_of(task_id), abs_tol=1e-9
            )
