"""Streaming statistics accumulator.

The paper repeats every experiment 30 times and reports averages; the
experiment runner uses :class:`RunningStats` (Welford's algorithm) so means
and standard deviations are available without storing every sample twice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List


@dataclass
class RunningStats:
    """Accumulates count / mean / variance / min / max of observed samples."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    samples: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.samples.append(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values: list[float]) -> None:
        """Record many samples."""
        for value in values:
            self.add(value)

    @property
    def variance(self) -> float:
        """Sample variance (0 for fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator combining this one with ``other``."""
        merged = RunningStats()
        merged.extend(self.samples)
        merged.extend(other.samples)
        return merged

    def summary(self) -> dict[str, float]:
        """A plain-dict summary for report rendering."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "stddev": self.stddev,
            "min": self.minimum if self.count else float("nan"),
            "max": self.maximum if self.count else float("nan"),
        }
