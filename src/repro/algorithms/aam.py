"""Average And Max (AAM) — Algorithm 3.

AAM is the paper's hybrid online greedy with a 7.738 competitive ratio.  For
each arriving worker it compares two quantities over the uncompleted tasks:

* ``avg`` — the remaining ``Acc*`` work divided by the capacity ``K``
  (a proxy for the *average* number of extra workers needed), and
* ``maxRemain`` — the largest remaining ``Acc*`` of any single task
  (a proxy for the *bottleneck* task).

While ``avg >= maxRemain`` the sheer number of tasks is the bottleneck and
AAM uses the **Largest Gain First (LGF)** strategy, scoring a candidate task
by ``min(Acc*(w, t), delta - S[t])`` so that highly accurate workers are not
wasted on tasks that only need a small top-up.  Once ``avg < maxRemain`` the
hardest tasks dominate the completion time and AAM switches to **Largest
Remaining First (LRF)**, scoring tasks by ``delta - S[t]``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.algorithms.base import OnlineSolver
from repro.core.arrangement import Arrangement, Assignment
from repro.core.candidates import CandidateFinder
from repro.core.instance import LTCInstance
from repro.core.worker import Worker
from repro.structures.topk import TopKHeap


class AAMSolver(OnlineSolver):
    """Average And Max online solver (paper Algorithm 3)."""

    name = "AAM"

    def __init__(self, use_spatial_index: bool = True) -> None:
        self._use_spatial_index = use_spatial_index
        self._instance: Optional[LTCInstance] = None
        self._arrangement: Optional[Arrangement] = None
        self._candidates: Optional[CandidateFinder] = None
        self._lgf_rounds = 0
        self._lrf_rounds = 0

    # --------------------------------------------------------------- protocol

    def start(self, instance: LTCInstance) -> None:
        self._instance = instance
        self._arrangement = instance.new_arrangement()
        self._candidates = CandidateFinder(
            instance, use_spatial_index=self._use_spatial_index
        )
        self._lgf_rounds = 0
        self._lrf_rounds = 0

    @property
    def arrangement(self) -> Arrangement:
        if self._arrangement is None:
            raise RuntimeError("start() must be called before reading the arrangement")
        return self._arrangement

    def observe(self, worker: Worker) -> List[Assignment]:
        """Assign up to K tasks to ``worker`` using the LGF/LRF hybrid rule."""
        if self._instance is None or self._arrangement is None or self._candidates is None:
            raise RuntimeError("start() must be called before observe()")
        arrangement = self._arrangement
        instance = self._instance
        delta = arrangement.delta

        # "Average" work left per capacity unit vs. the single worst task.
        remaining = [
            arrangement.remaining_of(task.task_id)
            for task in instance.tasks
            if not arrangement.is_task_complete(task.task_id)
        ]
        if not remaining:
            return []
        avg = sum(remaining) / instance.capacity
        max_remain = max(remaining)
        use_lgf = avg >= max_remain
        if use_lgf:
            self._lgf_rounds += 1
        else:
            self._lrf_rounds += 1

        heap: TopKHeap = TopKHeap(worker.capacity)
        for task in self._candidates.candidates(worker):
            if arrangement.is_task_complete(task.task_id):
                continue
            need = delta - arrangement.accumulated_of(task.task_id)
            if use_lgf:
                score = min(instance.acc_star(worker, task), need)
            else:
                score = need
            heap.push(score, task)

        assignments: List[Assignment] = []
        for _, task in heap.pop_all():
            assignments.append(arrangement.assign(worker, task))
        return assignments

    def diagnostics(self) -> Dict[str, float]:
        return {
            "lgf_rounds": float(self._lgf_rounds),
            "lrf_rounds": float(self._lrf_rounds),
        }


class LGFOnlySolver(AAMSolver):
    """Ablation variant of AAM that always uses the Largest Gain First rule.

    Not part of the paper's algorithm set; used by the ablation benchmark to
    quantify how much the LGF/LRF switch contributes.
    """

    name = "LGF-only"

    def observe(self, worker: Worker) -> List[Assignment]:
        arrangement = self.arrangement
        instance = self._instance
        candidates = self._candidates
        assert instance is not None and candidates is not None
        delta = arrangement.delta
        self._lgf_rounds += 1

        heap: TopKHeap = TopKHeap(worker.capacity)
        for task in candidates.candidates(worker):
            if arrangement.is_task_complete(task.task_id):
                continue
            need = delta - arrangement.accumulated_of(task.task_id)
            heap.push(min(instance.acc_star(worker, task), need), task)
        return [arrangement.assign(worker, task) for _, task in heap.pop_all()]


class LRFOnlySolver(AAMSolver):
    """Ablation variant of AAM that always uses the Largest Remaining First rule."""

    name = "LRF-only"

    def observe(self, worker: Worker) -> List[Assignment]:
        arrangement = self.arrangement
        candidates = self._candidates
        assert candidates is not None
        delta = arrangement.delta
        self._lrf_rounds += 1

        heap: TopKHeap = TopKHeap(worker.capacity)
        for task in candidates.candidates(worker):
            if arrangement.is_task_complete(task.task_id):
                continue
            heap.push(delta - arrangement.accumulated_of(task.task_id), task)
        return [arrangement.assign(worker, task) for _, task in heap.pop_all()]
