"""Runtime and memory metering around a solver run.

The paper's efficiency panels report wall-clock running time and process
memory of a C++ implementation.  Here we measure wall-clock time with
``perf_counter`` and peak allocation of the solve call with ``tracemalloc``.
Absolute values are not comparable to the paper's testbed, but the *relative*
comparison between algorithms (the paper's actual claim) is preserved.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Dict

from repro.algorithms.base import Solver, SolveResult
from repro.core.instance import LTCInstance


@dataclass
class SolveMeasurement:
    """A solver result together with its efficiency measurements."""

    result: SolveResult
    runtime_seconds: float
    peak_memory_bytes: int

    @property
    def peak_memory_mb(self) -> float:
        """Peak memory of the solve call in megabytes."""
        return self.peak_memory_bytes / (1024.0 * 1024.0)

    def summary(self) -> Dict[str, float]:
        """Flat summary merging effectiveness and efficiency metrics."""
        data = self.result.summary()
        data["runtime_seconds"] = self.runtime_seconds
        data["peak_memory_mb"] = self.peak_memory_mb
        return data


def measure_solver(
    solver: Solver,
    instance: LTCInstance,
    track_memory: bool = True,
) -> SolveMeasurement:
    """Run ``solver`` on ``instance`` and meter runtime and peak memory.

    Memory tracking uses ``tracemalloc`` and roughly doubles the runtime of
    allocation-heavy solvers; pass ``track_memory=False`` in timing-sensitive
    benchmarks.
    """
    if track_memory:
        tracemalloc_was_tracing = tracemalloc.is_tracing()
        if not tracemalloc_was_tracing:
            tracemalloc.start()
        tracemalloc.reset_peak()
        start = time.perf_counter()
        result = solver.solve(instance)
        elapsed = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        if not tracemalloc_was_tracing:
            tracemalloc.stop()
    else:
        start = time.perf_counter()
        result = solver.solve(instance)
        elapsed = time.perf_counter() - start
        peak = 0
    return SolveMeasurement(
        result=result,
        runtime_seconds=elapsed,
        peak_memory_bytes=int(peak),
    )
