"""Tests for the per-figure experiment definitions."""

import pytest

from repro.experiments.configs import (
    EXPERIMENTS,
    PAPER_ACCURACY_SWEEP,
    PAPER_CAPACITY_SWEEP,
    PAPER_ERROR_SWEEP,
    PAPER_TASK_SWEEP,
    get_experiment,
    list_experiments,
)


class TestRegistry:
    def test_every_figure_column_has_an_experiment(self):
        expected = {
            "fig3_tasks", "fig3_capacity", "fig3_accuracy_normal",
            "fig3_accuracy_uniform", "fig4_epsilon", "fig4_scalability",
            "fig4_newyork", "fig4_tokyo", "ablation_batch_size",
            "ablation_aam_switch",
        }
        assert expected <= set(list_experiments())

    def test_get_experiment_unknown_id(self):
        with pytest.raises(KeyError):
            get_experiment("fig99_nothing")

    def test_sweeps_match_table_iv(self):
        assert list(get_experiment("fig3_tasks").sweep_values) == PAPER_TASK_SWEEP
        assert list(get_experiment("fig3_capacity").sweep_values) == PAPER_CAPACITY_SWEEP
        assert list(get_experiment("fig3_accuracy_normal").sweep_values) == PAPER_ACCURACY_SWEEP
        assert list(get_experiment("fig4_epsilon").sweep_values) == PAPER_ERROR_SWEEP

    def test_default_algorithms_are_the_papers_five(self):
        for experiment_id in ("fig3_tasks", "fig4_epsilon", "fig4_newyork"):
            definition = get_experiment(experiment_id)
            assert list(definition.algorithms) == [
                "Base-off", "MCF-LTC", "Random", "LAF", "AAM",
            ]

    def test_every_definition_documents_its_figure(self):
        for definition in EXPERIMENTS.values():
            assert definition.figure_panels
            assert definition.description


class TestInstanceFactories:
    def test_fig3_tasks_scales_task_count_with_sweep_value(self):
        definition = get_experiment("fig3_tasks")
        factory = definition.instance_factory(scale=0.01)
        small = factory(1000, 0)
        large = factory(5000, 0)
        assert small.num_tasks == 10
        assert large.num_tasks == 50
        assert small.num_workers == large.num_workers == 400

    def test_fig3_capacity_sets_worker_capacity(self):
        definition = get_experiment("fig3_capacity")
        factory = definition.instance_factory(scale=0.01)
        instance = factory(4, 0)
        assert instance.capacity == 4

    def test_fig4_epsilon_keeps_placement_fixed_across_sweep(self):
        definition = get_experiment("fig4_epsilon")
        factory = definition.instance_factory(scale=0.01)
        strict = factory(0.06, 0)
        loose = factory(0.22, 0)
        assert strict.error_rate == 0.06 and loose.error_rate == 0.22

    def test_fig3_accuracy_normal_changes_worker_accuracy(self):
        definition = get_experiment("fig3_accuracy_normal")
        factory = definition.instance_factory(scale=0.01)
        low = factory(0.82, 0)
        high = factory(0.90, 0)
        mean_low = sum(w.accuracy for w in low.workers) / low.num_workers
        mean_high = sum(w.accuracy for w in high.workers) / high.num_workers
        assert mean_low < mean_high

    def test_repetitions_use_different_seeds(self):
        definition = get_experiment("fig3_tasks")
        factory = definition.instance_factory(scale=0.01)
        first = factory(1000, 0)
        second = factory(1000, 1)
        assert [w.location for w in first.workers] != [w.location for w in second.workers]

    def test_checkin_experiments_build_city_streams(self):
        definition = get_experiment("fig4_newyork")
        factory = definition.instance_factory(scale=0.005)
        instance = factory(0.14, 0)
        assert instance.name.startswith("checkins-new-york")
        assert instance.num_tasks == 18

    def test_build_runner_uses_defaults_and_overrides(self):
        definition = get_experiment("fig3_tasks")
        runner = definition.build_runner()
        assert runner.repetitions == definition.default_repetitions
        assert list(runner.sweep_values) == PAPER_TASK_SWEEP
        custom = definition.build_runner(repetitions=1, sweep_values=[1000],
                                         algorithms=["LAF"], track_memory=False)
        assert custom.repetitions == 1
        assert custom.algorithms == ["LAF"]
