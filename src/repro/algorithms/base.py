"""Solver interfaces and the common result type.

Two solver families mirror the paper's two scenarios:

* **Offline** solvers see the whole :class:`~repro.core.instance.LTCInstance`
  (tasks *and* the full worker sequence) and may plan globally.
* **Online** solvers see the tasks up front but receive workers one at a time
  through :meth:`OnlineSolver.observe`; every assignment they emit is final.
  The default :meth:`OnlineSolver.solve` drives the solver from a
  :class:`~repro.core.stream.WorkerStream`, stopping as soon as every task is
  complete (the arrival index of that last useful worker is the latency).

Both return a :class:`SolveResult`, and both can be driven incrementally
through the uniform :class:`~repro.core.session.Session` protocol via
:meth:`Solver.open_session` — natively for online solvers, through a replay
adapter for offline ones.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.arrangement import Arrangement, Assignment
from repro.core.instance import LTCInstance
from repro.core.stream import WorkerStream
from repro.core.task import Task
from repro.core.worker import Worker

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.core.session import Session


@dataclass
class SolveResult:
    """Outcome of running a solver on an instance.

    Attributes
    ----------
    algorithm:
        Registry name of the solver that produced the result.
    arrangement:
        The final arrangement (owns the per-task ``Acc*`` accumulations).
    completed:
        Whether every task reached the quality threshold.
    max_latency:
        ``MinMax(M)``: the largest arrival index among workers used by the
        arrangement.  This is the paper's effectiveness metric.
    workers_observed:
        How many workers arrived before the solver stopped (for online
        solvers this equals the latency when the instance completes).
    extra:
        Solver-specific diagnostics (batch count for MCF-LTC, strategy
        switches for AAM, ...).
    """

    algorithm: str
    arrangement: Arrangement
    completed: bool
    max_latency: int
    workers_observed: int
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def num_assignments(self) -> int:
        """Total number of (worker, task) assignments made."""
        return len(self.arrangement)

    @property
    def workers_used(self) -> int:
        """Number of distinct workers that received at least one task."""
        return len({assignment.worker_index for assignment in self.arrangement})

    def summary(self) -> Dict[str, float]:
        """Headline numbers for experiment reports."""
        data = {
            "max_latency": float(self.max_latency),
            "completed": float(self.completed),
            "workers_observed": float(self.workers_observed),
            "workers_used": float(self.workers_used),
            "assignments": float(self.num_assignments),
        }
        data.update(self.extra)
        return data


class Solver(abc.ABC):
    """Common base class for offline and online solvers."""

    #: Registry name; subclasses override.
    name: str = "solver"

    #: True for solvers that obey the online temporal constraint.
    is_online: bool = False

    @abc.abstractmethod
    def solve(self, instance: LTCInstance) -> SolveResult:
        """Solve the instance and return the resulting arrangement."""

    def open_session(self, instance: LTCInstance) -> "Session":
        """Open an incremental :class:`~repro.core.session.Session`.

        The default adapter plans with :meth:`solve` on the full instance
        when the first worker arrives and replays the plan arrival by
        arrival, which is the correct semantics for offline solvers (they
        legitimately see the whole worker sequence).  Online solvers
        override this with a native session.
        """
        from repro.algorithms.session import ReplaySession

        return ReplaySession(self, instance)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class OfflineSolver(Solver):
    """A solver that may inspect the full worker sequence before deciding."""

    is_online = False


class OnlineSolver(Solver):
    """A solver that commits assignments as each worker arrives.

    Subclasses implement :meth:`start` and :meth:`observe`; the base class
    provides the stream-driving :meth:`solve`.  Solvers whose candidate
    state rides the dynamic engine set :attr:`supports_dynamic_tasks` and
    implement :meth:`add_tasks`, which makes
    :meth:`~repro.core.session.Session.submit_tasks` legal after the
    first arrival for their sessions.
    """

    is_online = True

    #: Whether the solver accepts tasks posted after serving started.
    #: Dynamic solvers implement :meth:`add_tasks`; the default refuses.
    supports_dynamic_tasks: bool = False

    #: Whether the solver can expire (abandon) live tasks mid-stream.
    #: Expiry-capable solvers implement :meth:`expire_tasks`.
    supports_task_expiry: bool = False

    def expire_tasks(self, task_ids: List[int]) -> List[int]:
        """Expire tasks whose deadline passed (expiry-capable solvers override).

        Called by a live session's ``expire_tasks``.  An override must
        abandon the tasks in the arrangement (they stop blocking
        completion) and tombstone them in the candidate snapshot (they
        vanish from every later query), then return the ids it actually
        expired — already-completed and already-expired ids are skipped,
        so the return value is the honest abandonment count for
        latency-vs-abandonment reporting.
        """
        raise NotImplementedError(
            f"solver {self.name!r} does not support expiring tasks mid-stream"
        )

    def add_tasks(self, tasks: List[Task]) -> None:
        """Post additional tasks mid-stream (dynamic solvers override).

        Called by a live session's ``submit_tasks`` after the first
        arrival.  An override must extend the instance, the arrangement
        and the candidate snapshot in place so serving continues with the
        enlarged open set; implementations append — positions and prior
        assignments are never disturbed.
        """
        raise NotImplementedError(
            f"solver {self.name!r} does not accept tasks after serving starts"
        )

    @abc.abstractmethod
    def start(self, instance: LTCInstance) -> None:
        """Reset internal state for a new instance (tasks are now visible)."""

    @abc.abstractmethod
    def observe(self, worker: Worker) -> List[Assignment]:
        """Handle one arriving worker and return the assignments made for it."""

    @property
    @abc.abstractmethod
    def arrangement(self) -> Arrangement:
        """The arrangement built so far."""

    def is_complete(self) -> bool:
        """Whether every task has reached the quality threshold."""
        return self.arrangement.is_complete()

    def open_session(self, instance: LTCInstance) -> "Session":
        """Open a native incremental session over start/observe."""
        from repro.algorithms.session import OnlineSolverSession

        return OnlineSolverSession(self, instance)

    def solve(
        self,
        instance: LTCInstance,
        stream: Optional[WorkerStream] = None,
    ) -> SolveResult:
        """Drive the solver over a worker stream until completion.

        Opens a session and feeds it the stream, stopping at the first worker
        after which all tasks are complete, or when the stream is exhausted.
        A custom ``stream`` can be supplied (e.g. by the simulation engine);
        by default the instance's workers are streamed in arrival order.
        """
        if stream is None:
            stream = WorkerStream(instance.workers)
        return self.open_session(instance).drive(stream)

    def diagnostics(self) -> Dict[str, float]:
        """Solver-specific counters included in the result (override freely)."""
        return {}
