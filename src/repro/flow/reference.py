"""Pre-kernel object-graph SSPA, retained as a differential-testing oracle.

This module preserves the flow layer as it was before the array-based
kernel (:mod:`repro.flow.kernel`) replaced it: one ``Edge`` dataclass per
arc plus a residual twin, dict-of-lists adjacency over hashable node
labels, an O(V*E) Bellman-Ford before every solve, and the textbook SSPA
over those objects.

It is **not** used on any hot path.  It exists so that

* property tests can check the kernel against an independent
  implementation (same flow value, total cost and per-arc flows on
  LTC-shaped networks), and
* ``benchmarks/bench_flow_kernel.py`` can measure the kernel's speedup
  against the genuine pre-refactor baseline rather than a synthetic stand-in.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.flow.exceptions import InfeasibleFlowError, NegativeCycleError

Node = Hashable

_INF = math.inf


@dataclass(slots=True)
class LegacyEdge:
    """A directed edge plus its residual state (pre-kernel representation)."""

    head: Node
    tail: Node
    capacity: int
    cost: float
    flow: int = 0
    is_residual: bool = False
    _twin: Optional["LegacyEdge"] = field(default=None, repr=False, compare=False)

    @property
    def residual_capacity(self) -> int:
        return self.capacity - self.flow

    @property
    def twin(self) -> "LegacyEdge":
        if self._twin is None:
            raise RuntimeError("edge has no twin; was it added through LegacyFlowNetwork?")
        return self._twin

    def push(self, amount: int) -> None:
        if amount < 0:
            raise ValueError("flow amount must be non-negative")
        if amount > self.residual_capacity:
            raise ValueError(
                f"cannot push {amount} units over residual capacity "
                f"{self.residual_capacity}"
            )
        self.flow += amount
        self.twin.flow -= amount


class LegacyFlowNetwork:
    """Dict-of-lists residual graph over hashable labels (pre-kernel)."""

    def __init__(self) -> None:
        self._adjacency: Dict[Node, List[LegacyEdge]] = {}

    def add_node(self, node: Node) -> None:
        self._adjacency.setdefault(node, [])

    def add_edge(self, tail: Node, head: Node, capacity: int, cost: float) -> LegacyEdge:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if int(capacity) != capacity:
            raise ValueError("capacity must be an integer")
        self.add_node(tail)
        self.add_node(head)
        forward = LegacyEdge(head=head, tail=tail, capacity=int(capacity), cost=float(cost))
        backward = LegacyEdge(
            head=tail, tail=head, capacity=0, cost=-float(cost), is_residual=True
        )
        forward._twin = backward
        backward._twin = forward
        self._adjacency[tail].append(forward)
        self._adjacency[head].append(backward)
        return forward

    @property
    def nodes(self) -> List[Node]:
        return list(self._adjacency.keys())

    def __contains__(self, node: Node) -> bool:
        return node in self._adjacency

    def edges_from(self, node: Node) -> List[LegacyEdge]:
        return self._adjacency.get(node, [])

    def forward_edges(self):
        for edges in self._adjacency.values():
            for edge in edges:
                if not edge.is_residual:
                    yield edge

    def total_cost(self) -> float:
        return sum(edge.cost * edge.flow for edge in self.forward_edges())


def _bellman_ford_potentials(
    network: LegacyFlowNetwork, source: Node
) -> Dict[Node, float]:
    distance: Dict[Node, float] = {node: _INF for node in network.nodes}
    distance[source] = 0.0
    nodes = network.nodes
    for _iteration in range(len(nodes)):
        changed = False
        for node in nodes:
            d_node = distance[node]
            if d_node == _INF:
                continue
            for edge in network.edges_from(node):
                if edge.residual_capacity <= 0:
                    continue
                candidate = d_node + edge.cost
                if candidate < distance[edge.head] - 1e-12:
                    distance[edge.head] = candidate
                    changed = True
        if not changed:
            break
    else:
        raise NegativeCycleError("negative-cost cycle reachable from the source")
    return distance


def _dijkstra_reduced(
    network: LegacyFlowNetwork,
    source: Node,
    sink: Node,
    potentials: Dict[Node, float],
) -> Tuple[Dict[Node, float], Dict[Node, LegacyEdge]]:
    distance: Dict[Node, float] = {source: 0.0}
    predecessor: Dict[Node, LegacyEdge] = {}
    visited: set = set()
    heap: List[Tuple[float, int, Node]] = [(0.0, 0, source)]
    counter = 1
    while heap:
        dist, _, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == sink:
            break
        node_potential = potentials.get(node, _INF)
        if node_potential == _INF:
            continue
        for edge in network.edges_from(node):
            if edge.residual_capacity <= 0:
                continue
            head_potential = potentials.get(edge.head, _INF)
            if head_potential == _INF:
                continue
            reduced = edge.cost + node_potential - head_potential
            if reduced < 0:
                reduced = 0.0
            candidate = dist + reduced
            if candidate < distance.get(edge.head, _INF) - 1e-15:
                distance[edge.head] = candidate
                predecessor[edge.head] = edge
                heapq.heappush(heap, (candidate, counter, edge.head))
                counter += 1
    return distance, predecessor


def legacy_successive_shortest_paths(
    network: LegacyFlowNetwork,
    source: Node,
    sink: Node,
    max_flow: Optional[int] = None,
    require_max_flow: bool = False,
) -> Tuple[int, float, int]:
    """The pre-kernel SSPA; returns ``(flow_value, total_cost, augmentations)``.

    Per-edge flows are read off the network's edges afterwards.
    """
    if source not in network or sink not in network:
        raise ValueError("source and sink must be nodes of the network")
    if max_flow is not None and max_flow < 0:
        raise ValueError("max_flow must be non-negative")

    potentials = _bellman_ford_potentials(network, source)
    routed = 0
    augmentations = 0
    target = math.inf if max_flow is None else max_flow

    while routed < target:
        distance, predecessor = _dijkstra_reduced(network, source, sink, potentials)
        if sink not in distance:
            break

        sink_distance = distance[sink]
        for node, node_potential in potentials.items():
            if node_potential == _INF:
                continue
            potentials[node] = node_potential + min(
                distance.get(node, sink_distance), sink_distance
            )

        bottleneck = target - routed
        node = sink
        while node != source:
            edge = predecessor[node]
            bottleneck = min(bottleneck, edge.residual_capacity)
            node = edge.tail
        bottleneck = int(bottleneck)
        if bottleneck <= 0:
            break

        node = sink
        while node != source:
            edge = predecessor[node]
            edge.push(bottleneck)
            node = edge.tail

        routed += bottleneck
        augmentations += 1

    if require_max_flow and max_flow is not None and routed < max_flow:
        raise InfeasibleFlowError(
            f"only {routed} of the requested {max_flow} units could be routed"
        )

    return routed, network.total_cost(), augmentations
