"""Tests for repro.core.accuracy (Definition 3 / Equation 1)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.accuracy import (
    ConstantAccuracy,
    SigmoidDistanceAccuracy,
    TabularAccuracy,
    acc_star,
)
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point


def worker_at(x, y, accuracy=0.9):
    return Worker(index=1, location=Point(x, y), accuracy=accuracy, capacity=1)


def task_at(x, y):
    return Task(task_id=0, location=Point(x, y))


class TestAccStar:
    def test_formula(self):
        assert acc_star(0.96) == pytest.approx((2 * 0.96 - 1) ** 2)

    def test_uninformative_worker_contributes_nothing(self):
        assert acc_star(0.5) == pytest.approx(0.0)

    def test_perfect_worker_contributes_one(self):
        assert acc_star(1.0) == pytest.approx(1.0)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_symmetry_around_half(self, p):
        assert acc_star(p) == pytest.approx(acc_star(1.0 - p))


class TestSigmoidDistanceAccuracy:
    def test_equation_one_at_given_distance(self):
        model = SigmoidDistanceAccuracy(d_max=30.0)
        worker = worker_at(0, 0, accuracy=0.9)
        task = task_at(20, 0)
        expected = 0.9 / (1.0 + math.exp(-(30.0 - 20.0)))
        assert model.accuracy(worker, task) == pytest.approx(expected)

    def test_accuracy_at_d_max_is_half_historical(self):
        model = SigmoidDistanceAccuracy(d_max=30.0)
        worker = worker_at(0, 0, accuracy=0.88)
        task = task_at(30, 0)
        assert model.accuracy(worker, task) == pytest.approx(0.44)

    def test_close_worker_approaches_historical_accuracy(self):
        model = SigmoidDistanceAccuracy(d_max=30.0)
        worker = worker_at(0, 0, accuracy=0.85)
        assert model.accuracy(worker, task_at(0.0, 0.0)) == pytest.approx(0.85, abs=1e-8)

    def test_distance_monotonically_decreases_accuracy(self):
        model = SigmoidDistanceAccuracy(d_max=30.0)
        worker = worker_at(0, 0)
        accuracies = [model.accuracy(worker, task_at(d, 0)) for d in (0, 10, 20, 30, 40, 60)]
        assert accuracies == sorted(accuracies, reverse=True)

    def test_far_away_worker_does_not_overflow(self):
        model = SigmoidDistanceAccuracy(d_max=30.0)
        worker = worker_at(0, 0)
        assert model.accuracy(worker, task_at(1e6, 0)) == 0.0

    def test_rejects_non_positive_dmax(self):
        with pytest.raises(ValueError):
            SigmoidDistanceAccuracy(d_max=0.0)

    def test_voting_weight_and_acc_star(self):
        model = SigmoidDistanceAccuracy(d_max=30.0)
        worker = worker_at(0, 0, accuracy=0.9)
        task = task_at(0, 0)
        acc = model.accuracy(worker, task)
        assert model.voting_weight(worker, task) == pytest.approx(2 * acc - 1)
        assert model.acc_star(worker, task) == pytest.approx((2 * acc - 1) ** 2)


class TestConstantAccuracy:
    def test_constant_everywhere(self):
        model = ConstantAccuracy(0.8)
        assert model.accuracy(worker_at(0, 0), task_at(100, 100)) == 0.8

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ConstantAccuracy(1.2)


class TestTabularAccuracy:
    def test_reads_table(self):
        model = TabularAccuracy({(1, 0): 0.77})
        assert model.accuracy(worker_at(0, 0), task_at(0, 0)) == 0.77

    def test_falls_back_to_default_then_historical(self):
        worker = worker_at(0, 0, accuracy=0.91)
        task = task_at(0, 0)
        assert TabularAccuracy({}, default=0.7).accuracy(worker, task) == 0.7
        assert TabularAccuracy({}).accuracy(worker, task) == 0.91

    def test_rejects_out_of_range_entries(self):
        with pytest.raises(ValueError):
            TabularAccuracy({(1, 0): 1.5})
