"""Differential suite: sharded dispatch must be byte-identical to single-process.

The exactness claim of the sharding subsystem — a session pinned to a geo
shard receives exactly the sub-stream a single-process dispatcher would
deliver, in the same per-session order — is enforced here by running the
identical replayable workload through:

* the single-process :class:`~repro.service.LTCDispatcher` (the oracle),
* the :class:`~repro.service.sharding.ShardedDispatcher` under the
  ``serial`` executor (the deterministic merge configuration),
* the ``thread`` executor (cross-shard interleaving is arbitrary, but
  per-session sub-streams stay FIFO), and
* the ``process`` executor (each shard's dispatcher in a worker process,
  task snapshots crossing as shared memory — same FIFO argument, now
  across a pipe),

and comparing the final per-session arrangements **assignment by
assignment** (same pairs, same order, same per-session re-indexed worker
arrivals) plus latencies and completion.  The suite runs under whichever
candidate backend ``REPRO_CANDIDATES_BACKEND`` selects, so the CI backend
matrix pins the guarantee for both the python and numpy engines.
"""

import pytest

from repro.service import LTCDispatcher, ShardedDispatcher, ShardPlan
from repro.service.loadgen import BurstWindow, ReplayConfig, build_workload

CONFIG = ReplayConfig(
    seed=77,
    city_cols=2,
    city_rows=2,
    city_spacing=1000.0,
    city_radius=50.0,
    campaigns_per_city=2,
    tasks_per_campaign=6,
    num_workers=2500,
    worker_spread=1.4,
    diurnal_amplitude=0.5,
    bursts=(BurstWindow(0.4, 0.5, hot_city=3, intensity=2.5, city_bias=3.0),),
    error_rate=0.15,
    capacity=2,
)


@pytest.fixture(scope="module")
def workload():
    return build_workload(CONFIG)


def run_single_process(workload, solver):
    dispatcher = LTCDispatcher(default_solver=solver, keep_streams=True)
    ids = [dispatcher.submit_instance(c) for c in workload.campaigns]
    for worker in workload.worker_stream():
        dispatcher.feed_worker(worker)
    streams = {sid: dispatcher.routed_stream(sid) for sid in ids}
    return ids, streams, dispatcher.close_all()


def run_sharded(workload, solver, executor, cols=2, rows=2, **kwargs):
    plan = ShardPlan.for_region(CONFIG.bounds, cols=cols, rows=rows)
    dispatcher = ShardedDispatcher(
        plan,
        default_solver=solver,
        executor=executor,
        queue_capacity=8192,
        keep_streams=True,
        **kwargs,
    )
    ids = [dispatcher.submit_instance(c) for c in workload.campaigns]
    dispatcher.feed_stream(workload.worker_stream())
    dispatcher.drain()
    streams = {sid: dispatcher.routed_stream(sid) for sid in ids}
    dispatcher.stop()
    return ids, streams, dispatcher.close_all(), dispatcher


def assert_identical(base, candidate):
    base_ids, base_streams, base_results = base
    cand_ids, cand_streams, cand_results = candidate
    assert len(base_ids) == len(cand_ids)
    for base_id, cand_id in zip(base_ids, cand_ids):
        # Same re-indexed per-session sub-stream, arrival by arrival ...
        assert base_streams[base_id] == cand_streams[cand_id]
        base_result = base_results[base_id]
        cand_result = cand_results[cand_id]
        # ... hence the same decisions: assignments in the same order,
        # the same latency, the same completion state.
        assert (
            base_result.arrangement.assignments
            == cand_result.arrangement.assignments
        )
        assert base_result.max_latency == cand_result.max_latency
        assert base_result.completed == cand_result.completed


@pytest.mark.parametrize("solver", ["AAM", "LAF"])
@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_sharded_matches_single_process(workload, solver, executor):
    base = run_single_process(workload, solver)
    ids, streams, results, _ = run_sharded(workload, solver, executor)
    assert_identical(base, (ids, streams, results))


def test_every_campaign_pins_to_a_geo_shard(workload):
    plan = ShardPlan.for_region(CONFIG.bounds, cols=2, rows=2)
    for campaign in workload.campaigns:
        assert plan.shard_for_instance(campaign) != plan.overflow_shard


def test_single_shard_plan_matches_too(workload):
    """The degenerate 1x1 plan is pure queue overhead — still exact."""
    base = run_single_process(workload, "AAM")
    ids, streams, results, _ = run_sharded(
        workload, "AAM", "serial", cols=1, rows=1
    )
    assert_identical(base, (ids, streams, results))


def test_lossless_runs_shed_nothing(workload):
    *_, dispatcher = run_sharded(workload, "AAM", "thread")
    assert dispatcher.shed_total == 0
    assert dispatcher.arrivals_offered == CONFIG.num_workers


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_expiry_is_exact_across_runtimes(workload, executor):
    """A TTL sweep at the same per-session point yields identical state.

    Expiring via the sharded dispatcher and via a single-process
    dispatcher at the same stream position must abandon the same tasks
    and leave byte-identical arrangements.  For the asynchronous
    executors the sharded run drains before the sweep, so the sweep
    lands at the same per-session stream position as the oracle's.
    """
    cutoff = CONFIG.num_workers // 4

    def drive(dispatcher, sharded):
        ids = [dispatcher.submit_instance(c, solver="AAM")
               for c in workload.campaigns]
        for worker in workload.worker_stream():
            if worker.index > cutoff:
                break
            dispatcher.feed_worker(worker)
        if sharded:
            dispatcher.drain()
        expired = {
            sid: dispatcher.expire_tasks(
                sid, [t.task_id for t in campaign.tasks]
            )
            for sid, campaign in zip(ids, workload.campaigns)
        }
        if sharded:
            dispatcher.stop()
        return ids, expired, dispatcher.close_all()

    base_ids, base_expired, base_results = drive(LTCDispatcher(), sharded=False)
    plan = ShardPlan.for_region(CONFIG.bounds, cols=2, rows=2)
    shard_ids, shard_expired, shard_results = drive(
        ShardedDispatcher(plan, executor=executor, queue_capacity=8192),
        sharded=True,
    )
    for base_id, shard_id in zip(base_ids, shard_ids):
        assert base_expired[base_id] == shard_expired[shard_id]
        assert (
            base_results[base_id].arrangement.assignments
            == shard_results[shard_id].arrangement.assignments
        )
        assert (
            base_results[base_id].arrangement.abandoned_tasks
            == shard_results[shard_id].arrangement.abandoned_tasks
        )
