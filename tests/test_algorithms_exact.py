"""Tests for the exhaustive optimal solver (analysis tool)."""

import pytest

from repro.algorithms.exact import ExactSolver
from repro.algorithms.laf import LAFSolver
from repro.algorithms.mcf_ltc import MCFLTCSolver
from repro.core.accuracy import ConstantAccuracy, TabularAccuracy
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point


def small_instance(table, num_tasks, num_workers, capacity, error_rate):
    tasks = [Task(task_id=i, location=Point(i, 0)) for i in range(num_tasks)]
    workers = [
        Worker(index=i, location=Point(0, i), accuracy=0.9, capacity=capacity)
        for i in range(1, num_workers + 1)
    ]
    return LTCInstance(tasks=tasks, workers=workers, error_rate=error_rate,
                       accuracy_model=TabularAccuracy(table))


class TestExactSolver:
    def test_finds_the_obvious_optimum(self):
        """One task, one good worker: the optimum uses exactly that worker."""
        table = {(1, 0): 0.97, (2, 0): 0.97}
        instance = small_instance(table, num_tasks=1, num_workers=2, capacity=1,
                                  error_rate=0.42)
        result = ExactSolver().solve(instance)
        # delta ~= 1.735 needs two workers of Acc* 0.883 each.
        assert result.completed
        assert result.max_latency == 2

    def test_optimal_on_running_example(self, running_example):
        result = ExactSolver().solve(running_example)
        assert result.completed
        assert result.max_latency == 6
        assert result.arrangement.constraint_violations(
            running_example.workers_by_index()) == []

    def test_never_worse_than_heuristics(self, running_example, tiny_instance):
        for instance in (running_example, tiny_instance):
            optimum = ExactSolver().solve(instance).max_latency
            for heuristic in (LAFSolver(), MCFLTCSolver()):
                assert optimum <= heuristic.solve(instance).max_latency

    def test_reports_incompletion_for_infeasible_instances(self):
        table = {(1, 0): 0.7}
        instance = small_instance(table, num_tasks=1, num_workers=1, capacity=1,
                                  error_rate=0.1)
        result = ExactSolver().solve(instance)
        assert not result.completed
        assert result.max_latency == 0

    def test_search_budget_is_enforced(self, running_example):
        solver = ExactSolver(max_search_nodes=3)
        with pytest.raises(RuntimeError):
            solver.solve(running_example)

    def test_respects_capacity_constraint_in_optimum(self):
        # delta ~= 1.735 and Acc* = 0.883: every task needs two answers, so
        # all 3 workers x capacity 2 = 6 assignment slots are required.
        tasks = [Task.at(i, i, 0) for i in range(3)]
        workers = [Worker.at(i, 0, 0, accuracy=0.9, capacity=2) for i in (1, 2, 3)]
        instance = LTCInstance(tasks=tasks, workers=workers, error_rate=0.42,
                               accuracy_model=ConstantAccuracy(0.97))
        result = ExactSolver().solve(instance)
        assert result.completed
        loads: dict[int, int] = {}
        for assignment in result.arrangement:
            loads[assignment.worker_index] = loads.get(assignment.worker_index, 0) + 1
        assert all(load <= 2 for load in loads.values())
