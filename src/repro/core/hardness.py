"""The NP-hardness reduction gadget (Theorem 1).

Theorem 1 reduces 3-partition to the decision version of offline LTC: a list
of ``3m`` integers summing to ``m * B`` (each strictly between ``B/4`` and
``B/2``) becomes ``3m`` workers with ``Acc*(w_i, .) = x_i / B``, ``m`` tasks,
``K = 1`` and ``delta = 1`` (i.e. ``epsilon = e^{-1/2}``).  The list can be
partitioned into ``m`` triples each summing to ``B`` iff the LTC instance has
a feasible arrangement using exactly the ``3m`` workers.

This module builds such instances so the reduction can be exercised and
verified by the test-suite, and provides a tiny exact 3-partition decider for
cross-checking on small inputs.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.accuracy import AccuracyModel
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point


#: The tolerable error rate that makes delta = 2*ln(1/eps) equal exactly 1.
REDUCTION_ERROR_RATE = math.exp(-0.5)


class _ReductionAccuracy(AccuracyModel):
    """Accuracy model of the reduction: Acc*(w_i, t) = x_i / B for every task.

    ``Acc*`` is what the constraints consume, so the model exposes the
    accuracy whose ``(2*Acc - 1)^2`` equals ``x_i / B``.
    """

    def __init__(self, ratios: Sequence[float]) -> None:
        self._acc_by_index = {
            index + 1: 0.5 * (1.0 + math.sqrt(ratio))
            for index, ratio in enumerate(ratios)
        }

    def accuracy(self, worker: Worker, task: Task) -> float:
        return self._acc_by_index[worker.index]


@dataclass(frozen=True)
class ThreePartitionInstance:
    """A 3-partition instance: 3m positive integers summing to m*B."""

    values: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.values) % 3 != 0 or not self.values:
            raise ValueError("a 3-partition instance needs 3m values, m >= 1")
        if any(value <= 0 for value in self.values):
            raise ValueError("all values must be positive")
        if sum(self.values) % self.m != 0:
            raise ValueError("values must sum to a multiple of m")
        bound = self.bin_size
        for value in self.values:
            if not bound / 4 < value < bound / 2:
                raise ValueError(
                    f"value {value} violates B/4 < x < B/2 for B = {bound}"
                )

    @property
    def m(self) -> int:
        """Number of triples."""
        return len(self.values) // 3

    @property
    def bin_size(self) -> int:
        """The target sum ``B`` of each triple."""
        return sum(self.values) // self.m

    def brute_force_partition(self) -> Optional[List[Tuple[int, int, int]]]:
        """Exhaustively search for a valid partition (small instances only).

        Returns the list of index triples, or ``None`` when no partition
        exists.  Exponential — intended for cross-checking the reduction on
        instances with m <= 4.
        """
        indices = list(range(len(self.values)))
        target = self.bin_size

        def search(remaining: List[int]) -> Optional[List[Tuple[int, int, int]]]:
            if not remaining:
                return []
            first = remaining[0]
            rest = remaining[1:]
            for second, third in itertools.combinations(rest, 2):
                if self.values[first] + self.values[second] + self.values[third] == target:
                    next_remaining = [
                        index for index in rest if index not in (second, third)
                    ]
                    solution = search(next_remaining)
                    if solution is not None:
                        return [(first, second, third)] + solution
            return None

        return search(indices)


def ltc_instance_from_three_partition(
    three_partition: ThreePartitionInstance,
) -> LTCInstance:
    """Build the offline LTC instance of Theorem 1's reduction.

    The instance has ``m`` tasks, ``3m`` workers with capacity ``K = 1`` and
    an accuracy model under which worker ``w_i`` contributes exactly
    ``x_i / B`` of ``Acc*`` to any task.  A feasible arrangement that uses all
    ``3m`` workers and completes all tasks corresponds exactly to a valid
    3-partition.
    """
    bin_size = three_partition.bin_size
    ratios = [value / bin_size for value in three_partition.values]
    tasks = [Task(task_id=i, location=Point(float(i), 0.0)) for i in range(three_partition.m)]
    workers = [
        Worker(
            index=i + 1,
            location=Point(0.0, float(i)),
            accuracy=0.9,
            capacity=1,
        )
        for i in range(len(three_partition.values))
    ]
    return LTCInstance(
        tasks=tasks,
        workers=workers,
        error_rate=REDUCTION_ERROR_RATE,
        accuracy_model=_ReductionAccuracy(ratios),
        name=f"3-partition reduction (m={three_partition.m}, B={bin_size})",
    )


def arrangement_encodes_partition(
    instance: LTCInstance, assignments: Sequence[Tuple[int, int]]
) -> Optional[List[Tuple[int, ...]]]:
    """Decode an arrangement of the reduction instance back into triples.

    ``assignments`` is a sequence of ``(worker_index, task_id)`` pairs.
    Returns the worker-index triples grouped by task when the arrangement is
    a valid encoding of a 3-partition (each worker used exactly once, each
    task served by exactly three workers), otherwise ``None``.
    """
    by_task: dict[int, List[int]] = {task.task_id: [] for task in instance.tasks}
    used: set[int] = set()
    for worker_index, task_id in assignments:
        if worker_index in used:
            return None
        used.add(worker_index)
        if task_id not in by_task:
            return None
        by_task[task_id].append(worker_index)
    if used != {worker.index for worker in instance.workers}:
        return None
    triples: List[Tuple[int, ...]] = []
    for task_id in sorted(by_task):
        members = tuple(sorted(by_task[task_id]))
        if len(members) != 3:
            return None
        triples.append(members)
    return triples
