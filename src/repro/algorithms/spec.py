"""Typed, parseable solver specifications.

A :class:`SolverSpec` names a registered solver together with the constructor
parameters it should be built with, so configuration (CLI flags, experiment
definitions, service requests) stays declarative.  Specs have a compact
string form modelled on URL queries::

    "AAM"                                      -> SolverSpec("AAM")
    "MCF-LTC?batch_multiplier=2.0"             -> SolverSpec("MCF-LTC",
                                                     {"batch_multiplier": 2.0})
    "Random?seed=7&skip_completed=true"        -> SolverSpec("Random",
                                                     {"seed": 7,
                                                      "skip_completed": True})

Parameter values are typed by their syntax: ``true``/``false`` parse to
booleans, digit strings to ints, decimal strings to floats, everything else
stays a string.  ``str(spec)`` renders the same syntax back (parameters in
sorted order), so specs round-trip: ``SolverSpec.parse(str(spec)) == spec``.

:func:`repro.algorithms.registry.build_solver` turns a spec (or anything
:meth:`SolverSpec.coerce` accepts — a spec, a string, or a dict) into a
solver instance, validating the parameters against the registry entry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Union

#: Parameter values a spec can carry (what the string syntax can express).
ParamValue = Union[bool, int, float, str]

#: Anything :meth:`SolverSpec.coerce` accepts.
SolverSpecLike = Union["SolverSpec", str, Mapping[str, Any]]

_RESERVED = set("?&=")


def _parse_value(text: str) -> ParamValue:
    """Type a raw parameter value by its syntax."""
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _format_value(value: ParamValue) -> str:
    """Render a parameter value so that :func:`_parse_value` recovers it."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    return str(value)


@dataclass(frozen=True)
class SolverSpec:
    """A solver name plus the keyword arguments to construct it with.

    Attributes
    ----------
    name:
        Registry name of the solver (e.g. ``"MCF-LTC"``).
    params:
        Constructor keyword arguments.  Validated against the registry
        entry's declared parameters by
        :func:`~repro.algorithms.registry.build_solver`.
    """

    name: str
    params: Mapping[str, ParamValue] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str):
            raise ValueError(
                f"solver name must be a string, got {type(self.name).__name__}"
            )
        if not self.name or not self.name.strip():
            raise ValueError("a solver spec needs a non-empty name")
        if _RESERVED & set(self.name):
            raise ValueError(
                f"solver name {self.name!r} may not contain any of '?&='"
            )
        for key, value in self.params.items():
            if not key or _RESERVED & set(key):
                raise ValueError(f"invalid parameter name {key!r}")
            if not isinstance(value, (bool, int, float, str)):
                raise ValueError(
                    f"parameter {key!r} has unsupported value {value!r}; the "
                    "spec syntax can carry bool, int, float and str values"
                )
            if isinstance(value, float) and math.isnan(value):
                raise ValueError(
                    f"parameter {key!r} is NaN, which cannot survive a "
                    "round trip (NaN never compares equal)"
                )
            if isinstance(value, str):
                if _RESERVED & set(value):
                    raise ValueError(
                        f"parameter {key}={value!r} may not contain any of '?&='"
                    )
                # The string syntax types values by their text, so a string
                # that reads as a bool/int/float cannot survive a round trip;
                # reject it rather than let str(spec) change its type.
                reparsed = _parse_value(value)
                if not (isinstance(reparsed, str) and reparsed == value):
                    raise ValueError(
                        f"string value {value!r} for parameter {key!r} would "
                        f"re-parse as {type(reparsed).__name__}; pass it as "
                        f"{reparsed!r} instead"
                    )
        # Freeze a private copy so later mutation of the caller's dict cannot
        # change the spec (the dataclass itself is frozen).
        object.__setattr__(self, "params", dict(self.params))

    def __hash__(self) -> int:
        # The generated hash would choke on the params dict; specs are value
        # objects, so hash the same content equality compares.
        return hash((self.name, tuple(sorted(self.params.items()))))

    # -------------------------------------------------------------- parsing

    @classmethod
    def parse(cls, text: str) -> "SolverSpec":
        """Parse a spec string like ``"MCF-LTC?batch_multiplier=2.0"``.

        Values are typed by their syntax (``true``/``false`` -> bool, digit
        strings -> int, decimals -> float, anything else -> str), and
        parsing is the inverse of ``str(spec)``:
        ``SolverSpec.parse(str(spec)) == spec`` for every valid spec.
        Raises ``ValueError`` for malformed or duplicate parameters and
        ``TypeError`` for non-string input.
        """
        if not isinstance(text, str):
            raise TypeError(f"expected a spec string, got {type(text).__name__}")
        name, separator, query = text.partition("?")
        params: Dict[str, ParamValue] = {}
        if separator and query:
            for pair in query.split("&"):
                key, eq, raw = pair.partition("=")
                if not eq or not key:
                    raise ValueError(
                        f"malformed parameter {pair!r} in spec {text!r}; "
                        "expected key=value pairs separated by '&'"
                    )
                if key in params:
                    raise ValueError(f"duplicate parameter {key!r} in spec {text!r}")
                params[key] = _parse_value(raw)
        elif separator:
            raise ValueError(f"spec {text!r} has a '?' but no parameters")
        return cls(name=name.strip(), params=params)

    @classmethod
    def coerce(cls, value: SolverSpecLike) -> "SolverSpec":
        """Accept a spec, a spec string, or a ``{"name": ..., "params": ...}`` dict."""
        if isinstance(value, SolverSpec):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        raise TypeError(
            "cannot build a SolverSpec from "
            f"{type(value).__name__}; expected SolverSpec, str or mapping"
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SolverSpec":
        """Build a spec from ``{"name": ..., "params": {...}}`` (params optional)."""
        try:
            name = data["name"]
        except KeyError:
            raise ValueError("spec dict needs a 'name' key") from None
        unknown = set(data) - {"name", "params"}
        if unknown:
            raise ValueError(
                f"unexpected spec keys {sorted(unknown)}; only 'name' and "
                "'params' are allowed"
            )
        return cls(name=name, params=dict(data.get("params") or {}))

    # ------------------------------------------------------------ rendering

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-friendly ``{"name": ..., "params": {...}}`` form."""
        return {"name": self.name, "params": dict(self.params)}

    def with_params(self, **params: ParamValue) -> "SolverSpec":
        """A copy of the spec with additional / overridden parameters."""
        merged = dict(self.params)
        merged.update(params)
        return SolverSpec(name=self.name, params=merged)

    def __str__(self) -> str:
        if not self.params:
            return self.name
        query = "&".join(
            f"{key}={_format_value(self.params[key])}" for key in sorted(self.params)
        )
        return f"{self.name}?{query}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SolverSpec.parse({str(self)!r})"
