"""Regenerates Fig. 3a/3e/3i of the paper: latency / runtime / memory vs the number of tasks |T|.

The benchmark times the full regeneration (workload generation plus all five
algorithms across the sweep) and writes the rendered series to
``benchmarks/results/fig3_tasks.txt``.
"""

import pytest


@pytest.mark.benchmark(group="fig3_tasks")
def test_regenerate_fig3_tasks(benchmark, figure_runner):
    table = benchmark.pedantic(
        lambda: figure_runner("fig3_tasks"), rounds=1, iterations=1
    )
    assert len(table) > 0
    assert table.completion_rate() == 1.0
