"""Tests for repro.structures.topk."""

import pytest
from hypothesis import given, strategies as st

from repro.structures.topk import TopKHeap


class TestTopKHeap:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            TopKHeap(0)

    def test_keeps_only_k_largest(self):
        heap = TopKHeap(2)
        for score, item in [(1.0, "a"), (3.0, "b"), (2.0, "c"), (0.5, "d")]:
            heap.push(score, item)
        drained = heap.pop_all()
        assert [item for _, item in drained] == ["b", "c"]

    def test_push_returns_whether_item_was_retained(self):
        heap = TopKHeap(1)
        assert heap.push(1.0, "a") is True
        assert heap.push(5.0, "b") is True
        assert heap.push(0.5, "c") is False

    def test_ties_keep_earliest_pushed_item(self):
        """Matches the paper's worked example: w1 keeps t1 over t3 at 0.85."""
        heap = TopKHeap(2)
        heap.push(0.85, "t1")
        heap.push(0.92, "t2")
        heap.push(0.85, "t3")
        assert set(heap.peek_items()) == {"t1", "t2"}

    def test_pop_all_returns_largest_first_and_empties(self):
        heap = TopKHeap(3)
        heap.push(1.0, "a")
        heap.push(2.0, "b")
        assert heap.pop_all() == [(2.0, "b"), (1.0, "a")]
        assert len(heap) == 0
        assert not heap

    def test_pop_smallest_on_empty_raises(self):
        with pytest.raises(IndexError):
            TopKHeap(1).pop_smallest()

    def test_iteration_and_clear(self):
        heap = TopKHeap(3)
        heap.push(1.0, "a")
        heap.push(2.0, "b")
        assert {item for _, item in heap} == {"a", "b"}
        heap.clear()
        assert len(heap) == 0

    def test_capacity_property(self):
        assert TopKHeap(7).capacity == 7


scores = st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                  min_size=0, max_size=60)


class TestTopKProperties:
    @given(scores, st.integers(min_value=1, max_value=10))
    def test_matches_sorted_top_k(self, values, k):
        heap = TopKHeap(k)
        for index, value in enumerate(values):
            heap.push(value, index)
        kept_scores = sorted((score for score, _ in heap.pop_all()), reverse=True)
        expected = sorted(values, reverse=True)[: min(k, len(values))]
        assert kept_scores == pytest.approx(expected)

    @given(scores, st.integers(min_value=1, max_value=10))
    def test_never_exceeds_capacity(self, values, k):
        heap = TopKHeap(k)
        for index, value in enumerate(values):
            heap.push(value, index)
            assert len(heap) <= k
