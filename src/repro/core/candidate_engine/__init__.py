"""Pluggable backends for the struct-of-arrays candidate engine.

:class:`~repro.core.candidate_engine.engine.CandidateEngine` snapshots an
instance's tasks into flat arrays (plus a CSR-packed grid under the
sigmoid accuracy model) and hands every query — eligibility sets, bulk
``eligible_pairs`` arc emission, top-``k`` ``Acc*`` selection,
``has_candidates`` routing tests — to a **backend**, an implementation of
the :class:`~repro.core.candidate_engine.base.CandidateBackend` contract.
Two ship with the package:

* ``"python"`` — scalar loops over the arrays
  (:mod:`repro.core.candidate_engine.python_backend`); always available
  and the semantics oracle.
* ``"numpy"`` — vectorized gathers and batched accuracy evaluation
  (:mod:`repro.core.candidate_engine.numpy_backend`); available when
  numpy imports.

Selection, most specific wins:

1. an explicit ``backend=`` argument to :class:`CandidateEngine` /
   :class:`~repro.core.candidates.CandidateFinder` (or the
   ``candidates=`` parameter of a solver spec, e.g.
   ``"LAF?candidates=numpy"``);
2. the ``REPRO_CANDIDATES_BACKEND`` environment variable;
3. ``"auto"`` — numpy when available, otherwise python.

Unknown names raise ``KeyError`` with a did-you-mean suggestion; naming
an unavailable backend explicitly raises
:class:`~repro.core.candidate_engine.base.CandidateBackendUnavailableError`
instead of silently falling back.  All backends produce identical results
— ordering included — by the contract in
:mod:`repro.core.candidate_engine.base` and ``docs/candidates.md``.
"""

from __future__ import annotations

import difflib
import os
from typing import Dict, List, Optional, Union

from repro.core.candidate_engine.base import (
    DECISION_BAND,
    ELIGIBILITY_EPS,
    TOPK_MODES,
    TOPK_SCORE_MARGIN,
    CandidateBackend,
    CandidateBackendUnavailableError,
)
from repro.core.candidate_engine.engine import CandidateEngine
from repro.core.candidate_engine.numpy_backend import NumpyCandidateBackend
from repro.core.candidate_engine.python_backend import PythonCandidateBackend

#: Environment variable consulted when no explicit backend is named.
CANDIDATES_ENV_VAR = "REPRO_CANDIDATES_BACKEND"

#: The resolver keyword for "pick the best available backend".
AUTO_CANDIDATE_BACKEND = "auto"

#: Anything the ``backend=`` / ``candidates=`` arguments accept.
CandidateBackendLike = Union[CandidateBackend, str, None]

_BACKENDS: Dict[str, CandidateBackend] = {}


def register_candidate_backend(
    backend: CandidateBackend, overwrite: bool = False
) -> CandidateBackend:
    """Register a backend instance under its ``name`` and return it.

    Raises ``ValueError`` for empty/reserved names (``"auto"`` is the
    resolver's keyword) or, unless ``overwrite`` is true, for a name that
    is already taken.  Registered backends must honour the exactness
    contract of :class:`~repro.core.candidate_engine.base.CandidateBackend`.
    """
    name = backend.name
    if not name or name != name.strip():
        raise ValueError(
            f"candidate backend name {name!r} is empty or has surrounding "
            "whitespace"
        )
    if name == AUTO_CANDIDATE_BACKEND:
        raise ValueError(
            f"candidate backend name {AUTO_CANDIDATE_BACKEND!r} is reserved "
            "for auto-selection"
        )
    if not overwrite and name in _BACKENDS:
        raise ValueError(
            f"candidate backend name {name!r} is already registered"
        )
    _BACKENDS[name] = backend
    return backend


def get_candidate_backend(name: str) -> CandidateBackend:
    """The registered backend called ``name`` (may be unavailable).

    Raises ``KeyError`` with a did-you-mean suggestion for unknown names.
    """
    try:
        return _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        close = difflib.get_close_matches(name, list(_BACKENDS), n=1, cutoff=0.5)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise KeyError(
            f"unknown candidate backend {name!r}{hint}; known backends: {known}"
        ) from None


def registered_candidate_backends() -> List[str]:
    """Names of all registered backends, sorted (available or not)."""
    return sorted(_BACKENDS)


def available_candidate_backends() -> List[str]:
    """Names of the backends that can actually run here, sorted."""
    return sorted(
        name for name, backend in _BACKENDS.items() if backend.is_available()
    )


def default_candidate_backend_name() -> str:
    """What auto-selection currently resolves to."""
    return resolve_candidate_backend(AUTO_CANDIDATE_BACKEND).name


def resolve_candidate_backend(
    choice: CandidateBackendLike = None,
) -> CandidateBackend:
    """Turn a backend choice into a runnable backend instance.

    ``choice`` may be a :class:`~repro.core.candidate_engine.base.CandidateBackend`
    (returned as-is), a registered name, ``"auto"``, or ``None``.  ``None``
    consults the ``REPRO_CANDIDATES_BACKEND`` environment variable (read
    at call time, so tests and services can flip it) and falls back to
    ``"auto"`` when the variable is unset or empty.  ``"auto"`` prefers
    numpy and falls back to the pure-python backend when numpy is absent.

    Raises ``KeyError`` (with a did-you-mean hint) for unknown names and
    :class:`~repro.core.candidate_engine.base.CandidateBackendUnavailableError`
    when an explicitly named backend cannot run in this environment.
    """
    if isinstance(choice, CandidateBackend):
        return choice
    if choice is None:
        choice = os.environ.get(CANDIDATES_ENV_VAR) or AUTO_CANDIDATE_BACKEND
    if not isinstance(choice, str):
        raise TypeError(
            "candidate backend must be a name or CandidateBackend, got "
            f"{type(choice).__name__}"
        )
    if choice == AUTO_CANDIDATE_BACKEND:
        numpy_backend = _BACKENDS.get(NumpyCandidateBackend.name)
        if numpy_backend is not None and numpy_backend.is_available():
            return numpy_backend
        return _BACKENDS[PythonCandidateBackend.name]
    backend = get_candidate_backend(choice)
    if not backend.is_available():
        raise CandidateBackendUnavailableError(
            f"candidate backend {choice!r} is registered but cannot run here "
            "(missing optional dependency?); available backends: "
            f"{', '.join(available_candidate_backends())}"
        )
    return backend


def validate_candidate_backend_name(candidates: Optional[str]) -> None:
    """Fail fast on unknown backend names in solver constructors.

    ``None`` and ``"auto"`` always pass (they resolve at engine-build
    time); anything else must be a registered name — availability is
    still checked later, at resolution, so that constructing a solver
    spec for another machine stays legal.
    """
    if candidates is not None and candidates != AUTO_CANDIDATE_BACKEND:
        get_candidate_backend(candidates)


register_candidate_backend(PythonCandidateBackend())
register_candidate_backend(NumpyCandidateBackend())

__all__ = [
    "AUTO_CANDIDATE_BACKEND",
    "CANDIDATES_ENV_VAR",
    "CandidateBackend",
    "CandidateBackendLike",
    "CandidateBackendUnavailableError",
    "CandidateEngine",
    "DECISION_BAND",
    "ELIGIBILITY_EPS",
    "NumpyCandidateBackend",
    "PythonCandidateBackend",
    "TOPK_MODES",
    "TOPK_SCORE_MARGIN",
    "available_candidate_backends",
    "default_candidate_backend_name",
    "get_candidate_backend",
    "register_candidate_backend",
    "registered_candidate_backends",
    "resolve_candidate_backend",
    "validate_candidate_backend_name",
]
