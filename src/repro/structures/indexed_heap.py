"""An indexed min-heap with decrease/increase-key support.

Used by the ``Base-off`` baseline, which repeatedly needs "the task with the
fewest remaining nearby workers" and must update a task's key whenever a
nearby worker is consumed.  The implementation is a standard binary heap with
a position map, giving O(log n) updates.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, List, Optional, Tuple, TypeVar

Key = TypeVar("Key", bound=Hashable)


class IndexedMinHeap(Generic[Key]):
    """A binary min-heap of ``(priority, key)`` supporting key updates."""

    def __init__(self) -> None:
        self._entries: List[Tuple[float, Key]] = []
        self._positions: Dict[Key, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, key: Key) -> bool:
        return key in self._positions

    def priority_of(self, key: Key) -> float:
        """The current priority of ``key``."""
        return self._entries[self._positions[key]][0]

    def push(self, key: Key, priority: float) -> None:
        """Insert ``key`` with ``priority``; updates it if already present."""
        if key in self._positions:
            self.update(key, priority)
            return
        self._entries.append((float(priority), key))
        index = len(self._entries) - 1
        self._positions[key] = index
        self._sift_up(index)

    def update(self, key: Key, priority: float) -> None:
        """Change ``key``'s priority (both decreases and increases allowed)."""
        index = self._positions[key]
        old_priority, _ = self._entries[index]
        self._entries[index] = (float(priority), key)
        if priority < old_priority:
            self._sift_up(index)
        else:
            self._sift_down(index)

    def peek(self) -> Tuple[float, Key]:
        """The smallest ``(priority, key)`` without removing it."""
        if not self._entries:
            raise IndexError("peek on an empty heap")
        return self._entries[0]

    def pop(self) -> Tuple[float, Key]:
        """Remove and return the smallest ``(priority, key)``."""
        if not self._entries:
            raise IndexError("pop from an empty heap")
        smallest = self._entries[0]
        last = self._entries.pop()
        del self._positions[smallest[1]]
        if self._entries:
            self._entries[0] = last
            self._positions[last[1]] = 0
            self._sift_down(0)
        return smallest

    def remove(self, key: Key) -> None:
        """Remove ``key`` from the heap; raises ``KeyError`` if absent."""
        index = self._positions.pop(key)
        last = self._entries.pop()
        if index < len(self._entries):
            self._entries[index] = last
            self._positions[last[1]] = index
            self._sift_down(index)
            self._sift_up(index)

    def pop_if(self, key: Key) -> Optional[Tuple[float, Key]]:
        """Remove ``key`` if present and return its entry, else ``None``."""
        if key not in self._positions:
            return None
        entry = (self.priority_of(key), key)
        self.remove(key)
        return entry

    def _sift_up(self, index: int) -> None:
        entry = self._entries[index]
        while index > 0:
            parent = (index - 1) // 2
            if self._entries[parent] <= entry:
                break
            self._entries[index] = self._entries[parent]
            self._positions[self._entries[index][1]] = index
            index = parent
        self._entries[index] = entry
        self._positions[entry[1]] = index

    def _sift_down(self, index: int) -> None:
        entry = self._entries[index]
        size = len(self._entries)
        while True:
            left = 2 * index + 1
            right = left + 1
            smallest = index
            smallest_entry = entry
            if left < size and self._entries[left] < smallest_entry:
                smallest = left
                smallest_entry = self._entries[left]
            if right < size and self._entries[right] < smallest_entry:
                smallest = right
                smallest_entry = self._entries[right]
            if smallest == index:
                break
            self._entries[index] = smallest_entry
            self._positions[smallest_entry[1]] = index
            index = smallest
        self._entries[index] = entry
        self._positions[entry[1]] = index
