"""Latency-oriented Task Completion (LTC) via Spatial Crowdsourcing.

A full reproduction of Zeng, Tong, Chen, Zhou — "Latency-oriented Task
Completion via Spatial Crowdsourcing", ICDE 2018.

The public API re-exported here covers the common workflow:

>>> from repro import SyntheticConfig, generate_synthetic_instance, get_solver
>>> instance = generate_synthetic_instance(SyntheticConfig(
...     num_tasks=30, num_workers=600, grid_size=150, seed=7))
>>> result = get_solver("AAM").solve(instance)
>>> result.completed, result.max_latency  # doctest: +SKIP
(True, 213)

Sub-packages:

* ``repro.core`` — tasks, workers, accuracy functions, arrangements,
  offline/online problem instances.
* ``repro.algorithms`` — MCF-LTC, LAF, AAM, the paper's baselines, bounds.
* ``repro.flow`` / ``repro.geo`` / ``repro.structures`` — the substrates
  (min-cost flow, computational geometry, heaps).
* ``repro.quality`` — weighted majority voting and the Hoeffding guarantee.
* ``repro.datagen`` — synthetic (Table IV) and Foursquare-like (Table V)
  workload generators.
* ``repro.simulation`` / ``repro.experiments`` — measurement harness and the
  per-figure experiment definitions.
"""

from repro._version import __version__
from repro.core import (
    Arrangement,
    Assignment,
    CandidateFinder,
    LTCInstance,
    SigmoidDistanceAccuracy,
    Task,
    Worker,
    WorkerStream,
    quality_threshold,
)
from repro.algorithms import (
    AAMSolver,
    BaseOffSolver,
    ExactSolver,
    LAFSolver,
    MCFLTCSolver,
    RandomOnlineSolver,
    SolveResult,
    available_solvers,
    get_solver,
    latency_lower_bound,
    latency_upper_bound,
)
from repro.datagen import (
    CheckinCityConfig,
    NEW_YORK,
    TOKYO,
    NormalAccuracy,
    SyntheticConfig,
    UniformAccuracy,
    generate_checkin_instance,
    generate_synthetic_instance,
)
from repro.simulation import (
    ExperimentRunner,
    OnlineSimulation,
    ResultTable,
    measure_solver,
)
from repro.experiments import (
    EXPERIMENTS,
    get_experiment,
    list_experiments,
    run_experiment,
    render_table,
    write_series_csv,
    export_json,
)
from repro.analysis import (
    compute_instance_stats,
    empirical_ratio_to_lower_bound,
    empirical_ratios_vs_exact,
)

__all__ = [
    "__version__",
    # core
    "Task",
    "Worker",
    "LTCInstance",
    "WorkerStream",
    "Arrangement",
    "Assignment",
    "CandidateFinder",
    "SigmoidDistanceAccuracy",
    "quality_threshold",
    # algorithms
    "SolveResult",
    "MCFLTCSolver",
    "LAFSolver",
    "AAMSolver",
    "BaseOffSolver",
    "RandomOnlineSolver",
    "ExactSolver",
    "get_solver",
    "available_solvers",
    "latency_lower_bound",
    "latency_upper_bound",
    # data generation
    "SyntheticConfig",
    "generate_synthetic_instance",
    "CheckinCityConfig",
    "generate_checkin_instance",
    "NEW_YORK",
    "TOKYO",
    "NormalAccuracy",
    "UniformAccuracy",
    # simulation & experiments
    "measure_solver",
    "OnlineSimulation",
    "ExperimentRunner",
    "ResultTable",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "run_experiment",
    "render_table",
    "write_series_csv",
    "export_json",
    # analysis
    "compute_instance_stats",
    "empirical_ratio_to_lower_bound",
    "empirical_ratios_vs_exact",
]
