"""MCF-LTC — the offline minimum-cost-flow algorithm (Algorithm 1).

The offline LTC problem is NP-hard, so the paper processes workers in
batches sized by the latency lower bound of Theorem 2 and, within each
batch, computes a locally optimal arrangement by reduction to minimum-cost
flow:

* source ``st`` -> every batch worker ``w`` with capacity ``K`` and cost 0;
* ``w`` -> every (eligible) task ``t`` with capacity 1 and cost
  ``-Acc*(w, t)``;
* ``t`` -> sink ``ed`` with capacity ``ceil(delta - S[t])`` (how many more
  useful answers the task can absorb) and cost 0.

The min-cost max-flow of this network maximises the total ``Acc*`` the batch
contributes.  Workers left with spare capacity afterwards are topped up
greedily with their best uncompleted tasks (lines 8-15 of the pseudo-code).
Batches continue until every task reaches ``delta`` or the workers run out.
The paper proves a 7.5 approximation ratio for ``epsilon <= e^-1.5``.

Implementation notes
--------------------
* The reduction runs directly on the flow kernel's
  :class:`~repro.flow.kernel.ArcArena`: integer node ids end to end
  (source 0, sink 1, then task nodes, then per-batch worker nodes), arc-id
  lookups instead of edge objects, and **one arena reused across batches**
  — each batch rolls the arena back to the persistent task->sink prefix
  with :meth:`~repro.flow.kernel.ArcArena.truncate` and refreshes the
  task->sink capacities from the arrangement's accumulated quality, instead
  of rebuilding the network from scratch.
* Because at zero flow the batch network is a 3-layer DAG
  (source -> workers -> tasks -> sink), initial Johnson potentials come
  from :func:`~repro.flow.kernel.dag_potentials` in one O(E) pass; the
  O(V*E) Bellman-Ford of the generic path is never run.
* Determinism among cost-equal optimal flows comes from the kernel's
  stable tie-breaking (arc-insertion order; workers are inserted in
  arrival order, tasks ascending by id), not from perturbing the costs —
  see the ``index_tiebreak`` parameter.
* The first batch uses ``floor(1.5 m)`` workers and subsequent batches
  ``floor(m)`` workers with ``m = |T| * ceil(delta) / K``, exactly as in the
  pseudo-code.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import OfflineSolver, SolveResult
from repro.core.arrangement import Arrangement
from repro.core.candidate_engine import validate_candidate_backend_name
from repro.core.candidates import CandidateFinder
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.flow.backends import AUTO_BACKEND, get_backend
from repro.flow.kernel import ArcArena, dag_potentials, solve_mcf
from repro.structures.topk import TopKHeap

_SOURCE = 0
_SINK = 1


class MCFLTCSolver(OfflineSolver):
    """Minimum-cost-flow batch solver for offline LTC (paper Algorithm 1).

    Parameters
    ----------
    batch_multiplier:
        Scales the batch size relative to the paper's choice (1.0 keeps the
        pseudo-code sizes).  Exposed for the batch-size ablation study
        discussed in Sec. V-B1 of the paper.
    use_spatial_index:
        Restrict worker->task edges to eligible (nearby) pairs using the
        grid index.  Disabling it adds every pair with an eligible accuracy
        after an exhaustive scan (slower, identical results).
    index_tiebreak:
        Accepted for spec compatibility; no longer alters arc costs.
        Earlier implementations added a vanishing ``1e-9``-scale per-worker
        penalty to order cost-equal flows, which could underflow against
        real cost differences on large batches.  The flow kernel now
        breaks ties deterministically by stable arc-insertion order
        (workers in arrival order, tasks ascending), so results are
        reproducible with unperturbed costs regardless of this flag.
    backend:
        Which :mod:`repro.flow.backends` implementation runs each batch's
        flow solve: ``"python"``, ``"numpy"``, ``"auto"``, or ``None``
        (the default) to defer to the ``REPRO_FLOW_BACKEND`` environment
        variable / auto-detection at solve time.  Backends are bit-exact,
        so arrangements do not depend on this choice; it is reachable from
        spec strings as ``"MCF-LTC?backend=numpy"``.  Unknown names raise
        immediately with a did-you-mean suggestion.
    candidates:
        Which :mod:`repro.core.candidate_engine` backend generates each
        batch's eligible pairs (``"python"``, ``"numpy"``, ``"auto"``, or
        ``None`` to defer to ``REPRO_CANDIDATES_BACKEND`` /
        auto-detection).  Candidate backends are exact down to pair order,
        so the arc arena — and therefore the arrangement — does not depend
        on this choice either; spec form ``"MCF-LTC?candidates=numpy"``.
    """

    name = "MCF-LTC"

    def __init__(
        self,
        batch_multiplier: float = 1.0,
        use_spatial_index: bool = True,
        index_tiebreak: bool = True,
        backend: Optional[str] = None,
        candidates: Optional[str] = None,
    ) -> None:
        if batch_multiplier <= 0:
            raise ValueError("batch_multiplier must be positive")
        if backend is not None and backend != AUTO_BACKEND:
            get_backend(backend)  # unknown names fail fast, with a hint
        validate_candidate_backend_name(candidates)
        self.batch_multiplier = batch_multiplier
        self.use_spatial_index = use_spatial_index
        self.index_tiebreak = index_tiebreak
        self.backend = backend
        self.candidates = candidates

    # ------------------------------------------------------------------ solve

    def solve(self, instance: LTCInstance) -> SolveResult:
        arrangement = instance.new_arrangement()
        candidates = CandidateFinder(
            instance,
            use_spatial_index=self.use_spatial_index,
            backend=self.candidates,
        )
        delta = instance.delta
        capacity = instance.capacity

        base_batch = instance.num_tasks * math.ceil(delta) / capacity
        base_batch *= self.batch_multiplier
        first_batch_size = max(1, math.floor(1.5 * base_batch))
        batch_size = max(1, math.floor(base_batch))

        # Persistent arena prefix, built once: source, sink, one node and
        # one sink arc per task.  Batches roll back to this watermark.
        arena = ArcArena()
        arena.add_nodes(2)  # _SOURCE, _SINK
        task_nodes: Dict[int, int] = {}
        task_sink_arcs: List[Tuple[int, int]] = []  # (task_id, arc_id)
        # Capacities start at 0: _solve_batch refreshes every task->sink
        # capacity from the arrangement's accumulated quality before each
        # solve, so only the arc structure matters here.
        for task in instance.tasks:
            node = arena.add_node()
            task_nodes[task.task_id] = node
            task_sink_arcs.append((task.task_id, arena.add_arc(node, _SINK, 0, 0.0)))
        watermark = arena.watermark()

        workers = instance.workers
        position = 0
        batches = 0
        total_flow = 0
        while position < len(workers) and not arrangement.is_complete():
            size = first_batch_size if batches == 0 else batch_size
            batch = workers[position:position + size]
            position += len(batch)
            batches += 1
            total_flow += self._solve_batch(
                instance, arrangement, candidates, batch,
                arena, watermark, task_nodes, task_sink_arcs,
            )
            self._greedy_fill(instance, arrangement, candidates, batch)

        return SolveResult(
            algorithm=self.name,
            arrangement=arrangement,
            completed=arrangement.is_complete(),
            max_latency=arrangement.max_latency,
            workers_observed=position,
            extra={
                "batches": float(batches),
                "flow_units": float(total_flow),
                "batch_size": float(batch_size),
            },
        )

    # ------------------------------------------------------------ batch steps

    def _solve_batch(
        self,
        instance: LTCInstance,
        arrangement: Arrangement,
        candidates: CandidateFinder,
        batch: Sequence[Worker],
        arena: ArcArena,
        watermark: Tuple[int, int],
        task_nodes: Dict[int, int],
        task_sink_arcs: Sequence[Tuple[int, int]],
    ) -> int:
        """Run the MCF reduction for one batch and apply the resulting flow."""
        if not batch or arrangement.is_complete():
            return 0

        # Reuse the arena: drop the previous batch's worker nodes/arcs and
        # refresh how many more useful answers each task can absorb.
        arena.truncate(*watermark)
        delta = arrangement.delta
        accumulated_of = arrangement.accumulated_of
        for task_id, arc in task_sink_arcs:
            need = delta - accumulated_of(task_id)
            arena.set_capacity(arc, max(0, math.ceil(need - 1e-12)))

        # Append this batch's worker nodes and arcs (Fig. 2a), streaming the
        # eligible pairs straight into the arena.  ``eligible_pairs`` yields
        # grouped by worker with tasks ascending, so the arc order — and
        # therefore the kernel's tie-breaking — is stable.  Completed tasks
        # were retired through the candidate facade as their completions
        # landed, so the unrestricted stream is already the open set — no
        # per-batch uncompleted-id mask is built.
        acc_star = instance.acc_star
        pair_arcs: List[Tuple[Worker, Task, int]] = []
        worker_nodes: List[int] = []
        current_worker = None
        worker_node = -1
        for worker, task in candidates.eligible_pairs(batch):
            if worker is not current_worker:
                current_worker = worker
                worker_node = arena.add_node()
                worker_nodes.append(worker_node)
                arena.add_arc(_SOURCE, worker_node, worker.capacity, 0.0)
            arc = arena.add_arc(
                worker_node, task_nodes[task.task_id], 1, -acc_star(worker, task)
            )
            pair_arcs.append((worker, task, arc))
        if not pair_arcs:
            return 0

        # The zero-flow batch network is a source -> workers -> tasks -> sink
        # DAG, so one O(E) pass over that order replaces Bellman-Ford.
        topo_order = [_SOURCE]
        topo_order += worker_nodes
        topo_order += task_nodes.values()
        topo_order.append(_SINK)
        potentials = dag_potentials(arena, _SOURCE, topo_order)
        result = solve_mcf(
            arena, _SOURCE, _SINK, potentials=potentials, backend=self.backend
        )

        # Apply every unit of flow on a worker->task arc as an assignment,
        # retiring each task the moment its quality threshold is reached.
        arc_flow = arena.flow
        for worker, task, arc in pair_arcs:
            if arc_flow[arc] > 0:
                arrangement.assign(worker, task)
                if arrangement.is_task_complete(task.task_id):
                    candidates.retire_tasks((task.task_id,))
        return result.flow_value

    def _greedy_fill(
        self,
        instance: LTCInstance,
        arrangement: Arrangement,
        candidates: CandidateFinder,
        batch: Sequence[Worker],
    ) -> None:
        """Lines 8-15: top up workers that still have spare capacity.

        Each such worker receives its best (largest ``Acc*``) uncompleted
        tasks it does not already perform, up to its remaining capacity.
        Completed tasks are already retired from the candidate snapshot,
        so ``iter_candidates`` yields only the open set; tasks completing
        during the fill are retired in turn.
        """
        for worker in batch:
            if arrangement.is_complete():
                return
            spare = worker.capacity - arrangement.load_of(worker.index)
            if spare <= 0:
                continue
            heap: TopKHeap = TopKHeap(spare)
            for task in candidates.iter_candidates(worker):
                if (worker.index, task.task_id) in arrangement:
                    continue
                heap.push(instance.acc_star(worker, task), task)
            for _, task in heap.pop_all():
                arrangement.assign(worker, task)
                if arrangement.is_task_complete(task.task_id):
                    candidates.retire_tasks((task.task_id,))
