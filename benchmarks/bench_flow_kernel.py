"""Microbenchmark: flow-kernel backends vs the pre-refactor object-graph SSPA.

Builds LTC-shaped batch reductions (source -> workers -> tasks -> sink,
negative real-valued worker->task costs, exactly what ``MCFLTCSolver``
feeds the flow layer per batch) at several batch sizes and times one full
solve through each implementation:

* **reference** — the retained pre-kernel path (:mod:`repro.flow.reference`):
  ``Edge`` objects, dict adjacency, O(V*E) Bellman-Ford initial potentials;
  network built from scratch, as the old solver did per batch.
* **python** — :class:`repro.flow.kernel.ArcArena` + one O(E) DAG potential
  pass + :func:`repro.flow.kernel.solve_mcf` on the pure-Python backend.
* **numpy** — the same kernel path on the numpy-vectorized backend
  (omitted from the run and the report entirely when numpy is not
  installed; naming it explicitly via ``--backends numpy`` then raises
  ``BackendUnavailableError``).

Each timing covers build + potentials + solve (what MCF-LTC pays per
batch); the implementations are interleaved within each repeat so slow
background drift hits all of them equally.  Exactness is asserted on every
case: the kernel backends must agree with the reference on flow value and
cost, and with each other on the exact per-arc flows.  A separate *dense*
section times python vs numpy on high-degree reductions whose rows are
long enough for the numpy backend's vector path (the reference is omitted
there — its O(V*E) Bellman-Ford would dominate the wall-clock).  Results
(median wall-times per size, augmentation counts, speedups) are written as
one combined JSON — by default to ``BENCH_flow_kernel.json`` at the repo
root.

Usage::

    PYTHONPATH=src python benchmarks/bench_flow_kernel.py
    PYTHONPATH=src python benchmarks/bench_flow_kernel.py \
        --sizes 20 40 --repeats 2 --output benchmarks/results/flow_kernel_smoke.json
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import random
import statistics
import sys
import time
from pathlib import Path

from repro.flow.backends import available_backends
from repro.flow.kernel import ArcArena, dag_potentials, solve_mcf
from repro.flow.reference import LegacyFlowNetwork, legacy_successive_shortest_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_flow_kernel.json"

# Shape parameters mirroring a paper-default batch: epsilon = 0.14 gives
# delta = 2 ln(1/0.14) ~= 3.93, so every task absorbs ceil(delta) = 4 useful
# answers; worker capacity K = 6; the batch sizing m = |T| * ceil(delta) / K
# implies |T| = 1.5 * batch_size tasks per batch.
CAPACITY = 6
TASK_NEED = math.ceil(2 * math.log(1 / 0.14))
TASKS_PER_WORKER = 1.5
DEGREE = 12  # eligible tasks per worker (grid-index candidates)


def build_case(num_workers: int, seed: int, degree: int = DEGREE):
    """One LTC-shaped batch reduction as plain data."""
    rng = random.Random(seed)
    num_tasks = max(2, int(num_workers * TASKS_PER_WORKER))
    pairs = []
    for w in range(num_workers):
        row_degree = min(num_tasks, degree)
        for t in sorted(rng.sample(range(num_tasks), row_degree)):
            pairs.append((w, t, rng.uniform(0.1, 1.0)))
    return num_tasks, pairs


def run_reference(num_workers: int, num_tasks: int, pairs):
    network = LegacyFlowNetwork()
    for w in range(num_workers):
        network.add_edge("s", ("w", w), CAPACITY, 0.0)
    for w, t, value in pairs:
        network.add_edge(("w", w), ("t", t), 1, -value)
    for t in range(num_tasks):
        network.add_edge(("t", t), "d", TASK_NEED, 0.0)
    value, cost, augmentations = legacy_successive_shortest_paths(network, "s", "d")
    return value, cost, augmentations, None


def run_kernel(num_workers: int, num_tasks: int, pairs, backend: str):
    # Same node layout as MCFLTCSolver: source 0, sink 1, then tasks, then
    # workers.  Low task ids make Dijkstra's node-id tie-breaking pop
    # zero-distance task nodes (and then the sink) before exploring more of
    # the worker frontier.
    arena = ArcArena(2)  # 0 = source, 1 = sink
    task_base = arena.add_nodes(num_tasks)
    worker_base = arena.add_nodes(num_workers)
    for w in range(num_workers):
        arena.add_arc(0, worker_base + w, CAPACITY, 0.0)
    for w, t, value in pairs:
        arena.add_arc(worker_base + w, task_base + t, 1, -value)
    for t in range(num_tasks):
        arena.add_arc(task_base + t, 1, TASK_NEED, 0.0)
    topo = (
        [0]
        + list(range(worker_base, worker_base + num_workers))
        + list(range(task_base, task_base + num_tasks))
        + [1]
    )
    potentials = dag_potentials(arena, 0, topo)
    result = solve_mcf(arena, 0, 1, potentials=potentials, backend=backend)
    return result.flow_value, result.total_cost, result.augmentations, arena.flow


def bench_size(
    num_workers: int,
    repeats: int,
    seed: int,
    backends,
    degree: int = DEGREE,
    include_reference: bool = True,
) -> dict:
    num_tasks, pairs = build_case(num_workers, seed, degree=degree)
    runners = {}
    if include_reference:
        runners["reference"] = lambda: run_reference(num_workers, num_tasks, pairs)
    for backend in backends:
        runners[backend] = (
            lambda b=backend: run_kernel(num_workers, num_tasks, pairs, b)
        )

    # Interleave the implementations so slow background drift (GC, other
    # processes) hits every phase equally instead of whichever ran last.
    times = {name: [] for name in runners}
    outputs = {}
    for _ in range(repeats):
        for name, runner in runners.items():
            start = time.perf_counter()
            outputs[name] = runner()
            times[name].append(time.perf_counter() - start)

    baseline_name = next(iter(runners))
    base_value, base_cost, _base_augs, _ = outputs[baseline_name]
    flows = {}
    for backend in backends:
        value, cost, _augs, flow = outputs[backend]
        if value != base_value or abs(cost - base_cost) > 1e-6:
            raise AssertionError(
                f"{backend} backend disagrees with {baseline_name} at "
                f"{num_workers} workers: ({value}, {cost}) vs "
                f"({base_value}, {base_cost})"
            )
        flows[backend] = flow
    if len(backends) > 1:
        baseline = flows[backends[0]]
        for backend in backends[1:]:
            if flows[backend] != baseline:
                raise AssertionError(
                    f"backends {backends[0]} and {backend} produced different "
                    f"per-arc flows at {num_workers} workers"
                )

    entry = {
        "batch_workers": num_workers,
        "tasks": num_tasks,
        "degree": degree,
        "pair_arcs": len(pairs),
        "flow_value": base_value,
        "total_cost": base_cost,
        "augmentations": outputs[backends[0]][2] if backends else None,
    }
    if include_reference:
        entry["reference_augmentations"] = outputs["reference"][2]
    for name in runners:
        median_s = statistics.median(times[name])
        entry[f"{name}_ms_median"] = round(median_s * 1000, 3)
        entry[f"{name}_ms_best"] = round(min(times[name]) * 1000, 3)
    if include_reference:
        ref_s = statistics.median(times["reference"])
        for backend in backends:
            backend_s = statistics.median(times[backend])
            entry[f"{backend}_speedup_vs_reference"] = (
                round(ref_s / backend_s, 2) if backend_s > 0 else float("inf")
            )
    if "python" in backends and "numpy" in backends:
        py_s = statistics.median(times["python"])
        np_s = statistics.median(times["numpy"])
        entry["numpy_speedup_vs_python"] = (
            round(py_s / np_s, 2) if np_s > 0 else float("inf")
        )
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=[50, 200, 800],
                        help="batch sizes (workers) to benchmark")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repetitions per size (median reported)")
    parser.add_argument("--seed", type=int, default=20180416)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--backends", nargs="+", default=None,
                        help="kernel backends to time (default: all available)")
    parser.add_argument("--dense-sizes", type=int, nargs="*", default=[250],
                        help="batch sizes for the dense (vectorization-regime) "
                             "section; empty to skip")
    parser.add_argument("--dense-degree", type=int, default=370,
                        help="eligible tasks per worker in the dense section "
                             "(rows long enough for the numpy vector path)")
    args = parser.parse_args(argv)

    backends = args.backends
    if backends is None:
        backends = [b for b in ("python", "numpy") if b in available_backends()]

    results = []
    for size in args.sizes:
        entry = bench_size(size, args.repeats, args.seed, backends)
        results.append(entry)
        timings = "  ".join(
            f"{name}={entry[f'{name}_ms_median']:>9.2f}ms"
            for name in ["reference", *backends]
        )
        speedups = "  ".join(
            f"{b}={entry[f'{b}_speedup_vs_reference']:>5.2f}x" for b in backends
        )
        print(
            f"batch={entry['batch_workers']:>5}  tasks={entry['tasks']:>5}  "
            f"{timings}  speedup: {speedups}  "
            f"augmentations={entry['augmentations']}"
        )

    # Dense section: rows long enough for the numpy backend's vector path
    # (the LTC default of ~12 eligible tasks per worker stays on the scalar
    # path by design).  The O(V*E) reference would take minutes here and
    # is omitted; the comparison of interest is python vs numpy.
    dense_results = []
    for size in args.dense_sizes:
        entry = bench_size(
            size, args.repeats, args.seed, backends,
            degree=args.dense_degree, include_reference=False,
        )
        dense_results.append(entry)
        timings = "  ".join(
            f"{name}={entry[f'{name}_ms_median']:>9.2f}ms" for name in backends
        )
        ratio = entry.get("numpy_speedup_vs_python")
        print(
            f"dense batch={entry['batch_workers']:>5}  degree={entry['degree']:>4}  "
            f"{timings}"
            + (f"  numpy_vs_python={ratio:>5.2f}x" if ratio is not None else "")
        )

    report = {
        "benchmark": "flow_kernel",
        "description": (
            "Per-batch MCF-LTC flow solve: the array kernel (ArcArena + DAG "
            "potentials + solve_mcf) on each registered backend (python, "
            "numpy) vs the pre-refactor object-graph SSPA (Edge objects, "
            "dict adjacency, Bellman-Ford). Times are medians over repeated "
            "interleaved build+solve runs; all implementations are asserted "
            "to agree on every case."
        ),
        "config": {
            "sizes": args.sizes,
            "repeats": args.repeats,
            "seed": args.seed,
            "capacity": CAPACITY,
            "task_need": TASK_NEED,
            "degree": DEGREE,
            "dense_sizes": args.dense_sizes,
            "dense_degree": args.dense_degree,
            "backends": backends,
            "python": platform.python_version(),
        },
        "results": results,
        "dense_results": dense_results,
        "largest_batch_speedups": {
            backend: results[-1][f"{backend}_speedup_vs_reference"]
            for backend in backends
        } if results else None,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
