"""Shared-memory snapshot layer: lifecycle, fallback, and no-leak pins.

The process executor ships task batches to shard workers as
shared-memory blocks (:mod:`repro.service.sharding.shm`).  The contract
pinned here:

* an export/attach round trip rebuilds the exact ``Task`` sequence —
  including the pickled sidecar for non-default description/metadata;
* the **parent owns every segment**: after a submit is acknowledged, a
  drain/stop, a recovery replay, or an exception mid-export, no segment
  it created may remain linked (probed by name via
  :func:`~repro.service.sharding.shm.segment_exists`, which attaches
  without registering with the resource tracker);
* growing a session via ``submit_tasks`` re-exports a fresh snapshot —
  the worker serves the new tasks byte-identically to single-process;
* without numpy the same API degrades to inline pickle (``mode ==
  "inline"``, no segment), and without a working multiprocessing
  context the sharded dispatcher degrades to the thread executor with a
  ``RuntimeWarning``.
"""

import pytest

from repro.core.task import Task
from repro.geo.point import Point
from repro.service import (
    FaultPlan,
    LTCDispatcher,
    RecoveryPolicy,
    ShardedDispatcher,
    ShardPlan,
)
from repro.service.loadgen import ReplayConfig, build_workload
from repro.service.sharding import shm

CONFIG = ReplayConfig(
    seed=31,
    city_cols=2,
    city_rows=1,
    city_spacing=1000.0,
    city_radius=50.0,
    campaigns_per_city=2,
    tasks_per_campaign=5,
    num_workers=700,
    worker_spread=1.4,
    error_rate=0.15,
    capacity=2,
)


@pytest.fixture(scope="module")
def workload():
    return build_workload(CONFIG)


@pytest.fixture
def segment_log(monkeypatch):
    """Record the name of every segment *created* by this process."""
    created = []
    real = shm._shared_memory.SharedMemory

    class Recording(real):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            if kwargs.get("create", False):
                created.append(self.name)

    monkeypatch.setattr(shm._shared_memory, "SharedMemory", Recording)
    return created


def make_tasks(count, with_extras=False):
    tasks = []
    for index in range(count):
        tasks.append(
            Task(
                task_id=1000 + index,
                location=Point(10.0 * index, -3.5 * index),
                true_answer=1 if index % 2 == 0 else -1,
                description=f"task {index}" if with_extras and index % 3 == 0
                else "",
                metadata={"hot": True} if with_extras and index % 4 == 0
                else {},
            )
        )
    return tasks


# ------------------------------------------------------------ round trips


def test_export_attach_roundtrip_is_exact():
    tasks = make_tasks(17)
    handle, block = shm.export_tasks(tasks)
    try:
        assert handle.mode == "shm"
        assert handle.count == 17
        assert handle.sidecar is None
        assert shm.attach_tasks(handle) == tasks
    finally:
        block.release()


def test_sidecar_preserves_description_and_metadata():
    tasks = make_tasks(9, with_extras=True)
    handle, block = shm.export_tasks(tasks)
    try:
        assert handle.mode == "shm"
        assert handle.sidecar is not None
        assert shm.attach_tasks(handle) == tasks
    finally:
        block.release()


def test_empty_batch_travels_inline():
    handle, block = shm.export_tasks([])
    assert handle.mode == "inline"
    assert block is None
    assert shm.attach_tasks(handle) == []


def test_pickle_fallback_without_numpy(monkeypatch):
    monkeypatch.setattr(shm, "np", None)
    tasks = make_tasks(6, with_extras=True)
    handle, block = shm.export_tasks(tasks)
    assert handle.mode == "inline"
    assert block is None
    assert shm.attach_tasks(handle) == tasks


# ---------------------------------------------------------------- lifecycle


def test_release_unlinks_and_is_idempotent():
    handle, block = shm.export_tasks(make_tasks(4))
    name = handle.shm_name
    assert shm.segment_exists(name)
    block.release()
    assert not shm.segment_exists(name)
    block.release()  # second release is a no-op, not an error


def test_exception_mid_export_leaks_no_segment(monkeypatch, segment_log):
    def boom(tasks):
        raise RuntimeError("sidecar failure")

    monkeypatch.setattr(shm, "_sidecar_fields", boom)
    with pytest.raises(RuntimeError, match="sidecar failure"):
        shm.export_tasks(make_tasks(5))
    assert segment_log, "export should have created a segment before failing"
    assert all(not shm.segment_exists(name) for name in segment_log)


# ------------------------------------------------- end-to-end no-leak pins


def run_process_sharded(workload, faults=None, policy=None):
    plan = ShardPlan.for_region(CONFIG.bounds, cols=2, rows=1)
    dispatcher = ShardedDispatcher(
        plan,
        executor="process",
        queue_capacity=4096,
        keep_streams=True,
        recovery=policy if policy is not None else RecoveryPolicy(),
        faults=faults,
    )
    ids = [dispatcher.submit_instance(c) for c in workload.campaigns]
    dispatcher.feed_stream(workload.worker_stream())
    dispatcher.drain()
    streams = {sid: dispatcher.routed_stream(sid) for sid in ids}
    results = dispatcher.close_all()
    dispatcher.stop()
    return ids, streams, results


def test_no_segment_survives_a_clean_run(workload, segment_log):
    run_process_sharded(workload)
    assert segment_log, "a process-executor run must export snapshots"
    assert all(not shm.segment_exists(name) for name in segment_log)


def test_no_segment_survives_crash_recovery(workload, segment_log):
    faults = FaultPlan.seeded(
        seed=13, shard_ids=[0, 1], max_arrival=120, crashes=2
    )
    run_process_sharded(
        workload,
        faults=faults,
        policy=RecoveryPolicy(on_shard_failure="restart"),
    )
    # Recovery re-exported the journal prefix into fresh blocks; every
    # one of them (and every submit-time block) must be gone.
    assert all(not shm.segment_exists(name) for name in segment_log)


# ------------------------------------------------------- grow on submit


def test_submit_tasks_re_exports_and_stays_exact(workload, segment_log):
    """Growing a session mid-stream re-exports a fresh snapshot.

    The added tasks must flow into the worker process and be served
    byte-identically to a single-process dispatcher doing the same
    submit at the same stream position.
    """
    cutoff = CONFIG.num_workers // 2
    grown = [
        Task(task_id=900000 + i, location=campaign.tasks[0].location,
             true_answer=1 if i % 2 == 0 else -1)
        for i, campaign in enumerate(workload.campaigns)
    ]

    def drive(dispatcher, sharded):
        ids = [dispatcher.submit_instance(c, solver="AAM")
               for c in workload.campaigns]
        for worker in workload.worker_stream():
            if worker.index > cutoff:
                break
            dispatcher.feed_worker(worker)
        if sharded:
            dispatcher.drain()
        for sid, task in zip(ids, grown):
            dispatcher.submit_tasks(sid, [task])
        for worker in workload.worker_stream():
            if worker.index <= cutoff:
                continue
            dispatcher.feed_worker(worker)
        if sharded:
            dispatcher.drain()
            dispatcher.stop()
        return ids, dispatcher.close_all()

    base_ids, base_results = drive(LTCDispatcher(), sharded=False)
    plan = ShardPlan.for_region(CONFIG.bounds, cols=2, rows=1)
    exports_before = len(segment_log)
    shard_ids, shard_results = drive(
        ShardedDispatcher(plan, executor="process", queue_capacity=4096),
        sharded=True,
    )
    assert len(segment_log) > exports_before + len(grown) - 1
    for base_id, shard_id in zip(base_ids, shard_ids):
        assert (
            base_results[base_id].arrangement.assignments
            == shard_results[shard_id].arrangement.assignments
        )
    assert all(not shm.segment_exists(name) for name in segment_log)


# ----------------------------------------------------- graceful degradation


def test_degrades_to_thread_executor_with_a_warning(monkeypatch, workload):
    monkeypatch.setattr(
        "repro.service.sharding.dispatcher.process_executor_available",
        lambda: False,
    )
    plan = ShardPlan.for_region(CONFIG.bounds, cols=2, rows=1)
    with pytest.warns(RuntimeWarning, match="degrading to the thread"):
        dispatcher = ShardedDispatcher(plan, executor="process")
    assert dispatcher.executor == "thread"
    ids = [dispatcher.submit_instance(c) for c in workload.campaigns]
    dispatcher.feed_stream(workload.worker_stream())
    dispatcher.drain()
    results = dispatcher.close_all()
    dispatcher.stop()
    assert set(results) == set(ids)
