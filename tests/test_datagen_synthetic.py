"""Tests for the synthetic workload generator (Table IV)."""

import math

import pytest

from repro.core.candidates import CandidateFinder
from repro.core.quality_threshold import quality_threshold
from repro.datagen.distributions import UniformAccuracy
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_instance


def small_config(**overrides):
    defaults = dict(
        num_tasks=15, num_workers=300, capacity=6, error_rate=0.14,
        grid_size=90.0, seed=7,
    )
    defaults.update(overrides)
    return SyntheticConfig(**defaults)


class TestSyntheticConfig:
    def test_paper_defaults(self):
        config = SyntheticConfig()
        assert config.num_tasks == 3000
        assert config.num_workers == 40000
        assert config.capacity == 6
        assert config.error_rate == 0.14
        assert config.grid_size == 1000.0
        assert config.d_max == 30.0

    def test_delta_property(self):
        assert small_config().delta == pytest.approx(quality_threshold(0.14))

    def test_validation(self):
        with pytest.raises(ValueError):
            small_config(num_tasks=0)
        with pytest.raises(ValueError):
            small_config(capacity=0)
        with pytest.raises(ValueError):
            small_config(error_rate=1.5)
        with pytest.raises(ValueError):
            small_config(grid_size=-1.0)

    def test_resolved_min_eligible_workers(self):
        config = small_config(error_rate=0.14)
        expected = math.ceil(quality_threshold(0.14) / 0.3)
        assert config.resolved_min_eligible_workers() == expected
        assert small_config(min_eligible_workers=5).resolved_min_eligible_workers() == 5


class TestGeneratedInstances:
    def test_cardinalities_and_attributes(self):
        config = small_config()
        instance = generate_synthetic_instance(config)
        assert instance.num_tasks == config.num_tasks
        assert instance.num_workers == config.num_workers
        assert instance.capacity == config.capacity
        assert instance.error_rate == config.error_rate

    def test_locations_inside_grid(self):
        config = small_config()
        instance = generate_synthetic_instance(config)
        for task in instance.tasks:
            assert 0 <= task.location.x <= config.grid_size
            assert 0 <= task.location.y <= config.grid_size
        for worker in instance.workers:
            assert 0 <= worker.location.x <= config.grid_size
            assert 0 <= worker.location.y <= config.grid_size

    def test_worker_indices_are_arrival_order(self):
        instance = generate_synthetic_instance(small_config())
        assert [w.index for w in instance.workers] == list(range(1, 301))

    def test_deterministic_given_seed(self):
        first = generate_synthetic_instance(small_config(seed=42))
        second = generate_synthetic_instance(small_config(seed=42))
        assert [t.location for t in first.tasks] == [t.location for t in second.tasks]
        assert [w.location for w in first.workers] == [w.location for w in second.workers]
        assert [w.accuracy for w in first.workers] == [w.accuracy for w in second.workers]

    def test_different_seeds_differ(self):
        first = generate_synthetic_instance(small_config(seed=1))
        second = generate_synthetic_instance(small_config(seed=2))
        assert [w.location for w in first.workers] != [w.location for w in second.workers]

    def test_every_task_has_enough_eligible_workers(self):
        config = small_config()
        instance = generate_synthetic_instance(config)
        finder = CandidateFinder(instance)
        counts = finder.candidate_count_per_task()
        minimum = config.resolved_min_eligible_workers()
        assert min(counts.values()) >= min(minimum, 1)

    def test_uniform_accuracy_distribution_is_supported(self):
        config = small_config(accuracy_distribution=UniformAccuracy(mean=0.84))
        instance = generate_synthetic_instance(config)
        accuracies = [w.accuracy for w in instance.workers]
        assert max(accuracies) <= 0.84 + 0.08 + 1e-9

    def test_true_answers_are_balanced(self):
        config = small_config(num_tasks=60, num_workers=400, grid_size=120.0)
        instance = generate_synthetic_instance(config)
        positives = sum(1 for task in instance.tasks if task.true_answer == 1)
        assert 10 <= positives <= 50
