"""Tests for repro.core.arrangement (constraints, latency, accumulation)."""

import pytest

from repro.core.accuracy import ConstantAccuracy, TabularAccuracy
from repro.core.arrangement import Arrangement
from repro.core.exceptions import CapacityExceeded, DuplicateAssignment
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point


def make_arrangement(num_tasks=2, delta=1.0, accuracy=0.9):
    tasks = [Task(task_id=i, location=Point(i, 0)) for i in range(num_tasks)]
    return tasks, Arrangement(tasks, delta, ConstantAccuracy(accuracy))


def worker(index, capacity=2):
    return Worker(index=index, location=Point(0, 0), accuracy=0.9, capacity=capacity)


class TestConstruction:
    def test_rejects_non_positive_delta(self):
        tasks = [Task.at(0, 0, 0)]
        with pytest.raises(ValueError):
            Arrangement(tasks, 0.0, ConstantAccuracy(0.9))

    def test_rejects_duplicate_task_ids(self):
        tasks = [Task.at(0, 0, 0), Task.at(0, 1, 1)]
        with pytest.raises(ValueError):
            Arrangement(tasks, 1.0, ConstantAccuracy(0.9))


class TestAssignment:
    def test_assign_accumulates_acc_star(self):
        tasks, arrangement = make_arrangement(delta=2.0, accuracy=0.9)
        assignment = arrangement.assign(worker(1), tasks[0])
        assert assignment.acc == pytest.approx(0.9)
        assert assignment.acc_star == pytest.approx(0.64)
        assert arrangement.accumulated_of(0) == pytest.approx(0.64)
        assert arrangement.remaining_of(0) == pytest.approx(2.0 - 0.64)

    def test_duplicate_pair_rejected(self):
        tasks, arrangement = make_arrangement()
        arrangement.assign(worker(1), tasks[0])
        with pytest.raises(DuplicateAssignment):
            arrangement.assign(worker(1), tasks[0])

    def test_capacity_enforced(self):
        tasks, arrangement = make_arrangement(num_tasks=3)
        w = worker(1, capacity=2)
        arrangement.assign(w, tasks[0])
        arrangement.assign(w, tasks[1])
        with pytest.raises(CapacityExceeded):
            arrangement.assign(w, tasks[2])

    def test_unknown_task_rejected(self):
        tasks, arrangement = make_arrangement()
        foreign = Task(task_id=99, location=Point(0, 0))
        with pytest.raises(KeyError):
            arrangement.assign(worker(1), foreign)

    def test_can_assign(self):
        tasks, arrangement = make_arrangement()
        w = worker(1, capacity=1)
        assert arrangement.can_assign(w, tasks[0])
        arrangement.assign(w, tasks[0])
        assert not arrangement.can_assign(w, tasks[0])       # duplicate
        assert not arrangement.can_assign(w, tasks[1])       # capacity
        assert not arrangement.can_assign(worker(2), Task(task_id=42, location=Point(0, 0)))

    def test_membership_and_iteration(self):
        tasks, arrangement = make_arrangement()
        arrangement.assign(worker(1), tasks[0])
        assert (1, 0) in arrangement
        assert (1, 1) not in arrangement
        assert len(arrangement) == 1
        assert [a.task_id for a in arrangement] == [0]


class TestCompletionAndLatency:
    def test_completion_threshold(self):
        tasks, arrangement = make_arrangement(num_tasks=1, delta=1.2, accuracy=0.9)
        arrangement.assign(worker(1), tasks[0])
        assert not arrangement.is_task_complete(0)
        arrangement.assign(worker(2), tasks[0])
        assert arrangement.is_task_complete(0)
        assert arrangement.is_complete()
        assert arrangement.uncompleted_tasks() == []

    def test_max_latency_tracks_largest_index_used(self):
        tasks, arrangement = make_arrangement(num_tasks=2, delta=0.5)
        assert arrangement.max_latency == 0
        arrangement.assign(worker(5), tasks[0])
        arrangement.assign(worker(3), tasks[1])
        assert arrangement.max_latency == 5

    def test_task_latency_per_task(self):
        tasks, arrangement = make_arrangement(num_tasks=2, delta=0.5)
        arrangement.assign(worker(4), tasks[0])
        arrangement.assign(worker(7), tasks[1])
        assert arrangement.task_latency(0) == 4
        assert arrangement.task_latency(1) == 7
        assert arrangement.per_task_latencies() == {0: 4, 1: 7}

    def test_task_latency_zero_when_unassigned(self):
        tasks, arrangement = make_arrangement()
        assert arrangement.task_latency(0) == 0

    def test_workers_of_and_load_of(self):
        tasks, arrangement = make_arrangement(num_tasks=2, delta=5.0)
        w = worker(2, capacity=2)
        arrangement.assign(w, tasks[0])
        arrangement.assign(w, tasks[1])
        assert arrangement.workers_of(0) == [2]
        assert arrangement.load_of(2) == 2
        assert arrangement.load_of(99) == 0


class TestValidationAndSummary:
    def test_constraint_violations_empty_for_valid_arrangement(self):
        tasks, arrangement = make_arrangement(num_tasks=1, delta=1.0, accuracy=0.9)
        workers = {i: worker(i) for i in (1, 2)}
        arrangement.assign(workers[1], tasks[0])
        arrangement.assign(workers[2], tasks[0])
        assert arrangement.constraint_violations(workers) == []

    def test_constraint_violations_flag_incomplete_tasks(self):
        tasks, arrangement = make_arrangement(num_tasks=1, delta=5.0)
        workers = {1: worker(1)}
        arrangement.assign(workers[1], tasks[0])
        violations = arrangement.constraint_violations(workers)
        assert any("accumulated" in v for v in violations)

    def test_constraint_violations_flag_unknown_worker(self):
        tasks, arrangement = make_arrangement(num_tasks=1, delta=0.5)
        arrangement.assign(worker(1), tasks[0])
        violations = arrangement.constraint_violations({})
        assert any("unknown worker" in v for v in violations)

    def test_summary(self):
        tasks, arrangement = make_arrangement(num_tasks=2, delta=0.5)
        arrangement.assign(worker(1), tasks[0])
        summary = arrangement.summary()
        assert summary["assignments"] == 1.0
        assert summary["tasks_total"] == 2.0
        assert summary["tasks_completed"] == 1.0
        assert summary["max_latency"] == 1.0

    def test_uses_accuracy_model_per_pair(self):
        """Acc* must be evaluated for the specific (worker, task) pair."""
        tasks = [Task(task_id=0, location=Point(0, 0)), Task(task_id=1, location=Point(1, 0))]
        model = TabularAccuracy({(1, 0): 0.96, (1, 1): 0.7})
        arrangement = Arrangement(tasks, 1.0, model)
        w = worker(1)
        first = arrangement.assign(w, tasks[0])
        second = arrangement.assign(w, tasks[1])
        assert first.acc_star == pytest.approx((2 * 0.96 - 1) ** 2)
        assert second.acc_star == pytest.approx((2 * 0.7 - 1) ** 2)
