"""Backend registry, selection, fallback, and cross-backend exactness."""

import random

import pytest

from repro.algorithms.registry import build_solver
from repro.flow import backends as backends_pkg
from repro.flow.backends import (
    AUTO_BACKEND,
    BACKEND_ENV_VAR,
    NumpyBackend,
    PythonBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.flow.backends import numpy_backend as numpy_backend_module
from repro.flow.backends.base import KernelBackend
from repro.flow.exceptions import BackendUnavailableError
from repro.flow.kernel import ArcArena, dag_potentials, solve_mcf
from repro.flow.validate import validate_arena_flow

NUMPY_AVAILABLE = NumpyBackend().is_available()

needs_numpy = pytest.mark.skipif(not NUMPY_AVAILABLE, reason="numpy not installed")


def _no_numpy(monkeypatch):
    """Make the numpy backend behave as if numpy were not installed."""

    def _raise():
        raise ImportError("numpy is not installed (simulated)")

    monkeypatch.setattr(numpy_backend_module, "load_numpy", _raise)


class TestRegistry:
    def test_builtins_are_registered(self):
        assert "python" in registered_backends()
        assert "numpy" in registered_backends()

    def test_python_backend_is_always_available(self):
        assert "python" in available_backends()

    def test_unknown_name_raises_with_did_you_mean(self):
        with pytest.raises(KeyError, match=r"did you mean 'numpy'"):
            get_backend("numppy")
        with pytest.raises(KeyError, match=r"known backends"):
            get_backend("fortran")

    def test_register_rejects_reserved_and_duplicate_names(self):
        class Bad(PythonBackend):
            name = AUTO_BACKEND

        with pytest.raises(ValueError, match="reserved"):
            register_backend(Bad())
        with pytest.raises(ValueError, match="already registered"):
            register_backend(PythonBackend())

    def test_register_and_resolve_custom_backend(self):
        class Tracing(PythonBackend):
            name = "tracing-test"

        backend = Tracing()
        register_backend(backend)
        try:
            assert resolve_backend("tracing-test") is backend
        finally:
            del backends_pkg._BACKENDS["tracing-test"]


class TestResolution:
    def test_explicit_names_resolve(self):
        assert resolve_backend("python").name == "python"
        if NUMPY_AVAILABLE:
            assert resolve_backend("numpy").name == "numpy"

    def test_backend_instances_pass_through(self):
        backend = PythonBackend()
        assert resolve_backend(backend) is backend

    def test_auto_prefers_numpy_when_available(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        expected = "numpy" if NUMPY_AVAILABLE else "python"
        assert resolve_backend(AUTO_BACKEND).name == expected
        assert resolve_backend(None).name == expected
        assert default_backend_name() == expected

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert resolve_backend(None).name == "python"
        monkeypatch.setenv(BACKEND_ENV_VAR, "")
        assert resolve_backend(None).name == default_backend_name()

    def test_env_var_is_overridden_by_explicit_choice(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        if NUMPY_AVAILABLE:
            assert resolve_backend("numpy").name == "numpy"

    def test_env_var_unknown_name_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numppy")
        with pytest.raises(KeyError, match="did you mean"):
            resolve_backend(None)

    def test_non_string_choice_raises(self):
        with pytest.raises(TypeError):
            resolve_backend(42)


class TestNumpyAbsentFallback:
    def test_auto_falls_back_to_python(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        _no_numpy(monkeypatch)
        assert not NumpyBackend().is_available()
        assert available_backends() == ["python"]
        assert resolve_backend(None).name == "python"
        assert resolve_backend(AUTO_BACKEND).name == "python"

    def test_explicit_numpy_raises_instead_of_falling_back(self, monkeypatch):
        _no_numpy(monkeypatch)
        with pytest.raises(BackendUnavailableError, match="numpy"):
            resolve_backend("numpy")

    def test_solve_mcf_still_works_via_auto(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        _no_numpy(monkeypatch)
        arena = ArcArena(2)
        arena.add_arc(0, 1, 3, 1.0)
        result = solve_mcf(arena, 0, 1)
        assert result.flow_value == 3


def ltc_arena(seed, num_workers=12, num_tasks=9, capacity=4, max_need=3,
              density=0.5):
    """A random LTC-shaped reduction; returns (arena, topo, pair_arcs)."""
    rng = random.Random(seed)
    arena = ArcArena(2)  # 0 = source, 1 = sink
    worker_nodes = [arena.add_node() for _ in range(num_workers)]
    task_nodes = [arena.add_node() for _ in range(num_tasks)]
    for node in worker_nodes:
        arena.add_arc(0, node, rng.randint(1, capacity), 0.0)
    pair_arcs = []
    for w, wnode in enumerate(worker_nodes):
        for t, tnode in enumerate(task_nodes):
            if rng.random() < density:
                pair_arcs.append(arena.add_arc(wnode, tnode, 1, -rng.uniform(0.1, 1.0)))
    for tnode in task_nodes:
        arena.add_arc(tnode, 1, rng.randint(1, max_need), 0.0)
    topo = [0] + worker_nodes + task_nodes + [1]
    return arena, topo, pair_arcs


@needs_numpy
class TestBackendsAreBitExact:
    @pytest.mark.parametrize("seed", range(8))
    def test_identical_flows_potentials_and_augmentations(self, seed):
        outcomes = {}
        for backend in ("python", "numpy"):
            arena, topo, _ = ltc_arena(seed)
            pot = dag_potentials(arena, 0, topo)
            result = solve_mcf(arena, 0, 1, potentials=pot, backend=backend)
            assert validate_arena_flow(
                arena, 0, 1, expected_value=result.flow_value
            ) == []
            outcomes[backend] = (
                list(arena.flow),
                result.flow_value,
                result.total_cost,
                result.augmentations,
                result.potentials,
            )
        # Full tuple equality: bit-identical flows, costs and potentials.
        assert outcomes["python"] == outcomes["numpy"]

    def test_identical_through_warm_restart(self):
        outcomes = {}
        for backend in ("python", "numpy"):
            arena, topo, _ = ltc_arena(99)
            pot = dag_potentials(arena, 0, topo)
            first = solve_mcf(
                arena, 0, 1, max_flow=3, potentials=pot, backend=backend
            )
            second = solve_mcf(
                arena, 0, 1, potentials=first.potentials, backend=backend
            )
            outcomes[backend] = (list(arena.flow), second.potentials)
        assert outcomes["python"] == outcomes["numpy"]

    @pytest.mark.parametrize("seed", range(6))
    def test_identical_on_rows_exercising_the_vector_path(self, seed, monkeypatch):
        """Rows above VECTOR_MIN_ROW go through the vectorized scan.

        The production threshold is sized for performance (a couple of
        hundred arcs), so lower it here to push these dense-but-small
        graphs through the vector path; the threshold is a speed knob with
        no semantic content, which is exactly what this asserts.
        """
        monkeypatch.setattr(numpy_backend_module, "VECTOR_MIN_ROW", 4)
        outcomes = {}
        for backend in ("python", "numpy"):
            arena, topo, _ = ltc_arena(
                seed, num_workers=20, num_tasks=15, density=1.0
            )
            pot = dag_potentials(arena, 0, topo)
            result = solve_mcf(arena, 0, 1, potentials=pot, backend=backend)
            assert validate_arena_flow(
                arena, 0, 1, expected_value=result.flow_value
            ) == []
            outcomes[backend] = (
                list(arena.flow),
                result.total_cost,
                result.augmentations,
                result.potentials,
            )
        assert outcomes["python"] == outcomes["numpy"]

    def test_short_row_graphs_delegate_to_the_python_backend(self, monkeypatch):
        """Below-threshold graphs skip the numpy mirrors entirely."""
        calls = []
        fallback = numpy_backend_module._SCALAR_FALLBACK
        original = fallback.run

        def spy(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(fallback, "run", spy)
        arena, topo, _ = ltc_arena(3)  # sparse: every row far below threshold
        pot = dag_potentials(arena, 0, topo)
        solve_mcf(arena, 0, 1, potentials=pot, backend="numpy")
        assert len(calls) == 1

    def test_bellman_ford_route_matches_too(self):
        """No warm potentials supplied: both backends run after Bellman-Ford."""
        outcomes = {}
        for backend in ("python", "numpy"):
            arena, _, _ = ltc_arena(7)
            result = solve_mcf(arena, 0, 1, backend=backend)
            outcomes[backend] = (list(arena.flow), result.potentials)
        assert outcomes["python"] == outcomes["numpy"]


class TestSolverSpecIntegration:
    def test_backend_param_reaches_the_solver(self):
        solver = build_solver("MCF-LTC?backend=python")
        assert solver.backend == "python"

    @needs_numpy
    def test_numpy_spec_solves_identically(self, small_synthetic_instance):
        by_backend = {}
        for spec in ("MCF-LTC?backend=python", "MCF-LTC?backend=numpy"):
            result = build_solver(spec).solve(small_synthetic_instance)
            by_backend[spec] = [
                (a.worker_index, a.task_id) for a in result.arrangement.assignments
            ]
        assert (
            by_backend["MCF-LTC?backend=python"]
            == by_backend["MCF-LTC?backend=numpy"]
        )

    def test_auto_spec_is_accepted(self):
        assert build_solver("MCF-LTC?backend=auto").backend == "auto"

    def test_unknown_backend_fails_fast_with_hint(self):
        with pytest.raises(KeyError, match="did you mean 'numpy'"):
            build_solver("MCF-LTC?backend=numppy")


class TestBackendContract:
    def test_backends_are_kernel_backends(self):
        for name in registered_backends():
            assert isinstance(get_backend(name), KernelBackend)

    def test_base_backend_defaults_to_available(self):
        class Minimal(KernelBackend):
            name = "minimal-test"

            def run(self, graph, source, sink, target, potentials):
                return 0, 0, potentials

        assert Minimal().is_available()
