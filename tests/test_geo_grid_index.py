"""Tests for repro.geo.grid_index."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo.bbox import BoundingBox
from repro.geo.grid_index import GridIndex
from repro.geo.point import Point


def build_index(points, cell_size=10.0, side=100.0):
    index = GridIndex(BoundingBox.square(side), cell_size)
    for item_id, (x, y) in enumerate(points):
        index.insert(item_id, Point(x, y))
    return index


class TestBasics:
    def test_rejects_non_positive_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(BoundingBox.square(10), 0.0)

    def test_insert_contains_len(self):
        index = build_index([(1, 1), (2, 2)])
        assert len(index) == 2
        assert 0 in index and 1 in index and 2 not in index
        assert set(index) == {0, 1}

    def test_location_of_and_items(self):
        index = build_index([(1, 1)])
        assert index.location_of(0) == Point(1, 1)
        assert dict(index.items()) == {0: Point(1, 1)}

    def test_reinsert_moves_item(self):
        index = build_index([(1, 1)])
        index.insert(0, Point(50, 50))
        assert index.location_of(0) == Point(50, 50)
        assert len(index) == 1
        assert index.query_radius(Point(1, 1), 5) == []

    def test_remove(self):
        index = build_index([(1, 1), (20, 20)])
        index.remove(0)
        assert 0 not in index
        with pytest.raises(KeyError):
            index.remove(0)

    def test_points_outside_bounds_are_clamped_but_queryable(self):
        index = GridIndex(BoundingBox.square(10), 5.0)
        index.insert("far", Point(1000, 1000))
        assert index.query_radius(Point(1000, 1000), 1.0) == ["far"]


class TestQueryRadius:
    def test_exact_radius_boundary_included(self):
        index = build_index([(0, 0), (3, 4)])
        assert set(index.query_radius(Point(0, 0), 5.0)) == {0, 1}
        assert index.query_radius(Point(0, 0), 4.99) == [0]

    def test_negative_radius_rejected(self):
        index = build_index([(0, 0)])
        with pytest.raises(ValueError):
            index.query_radius(Point(0, 0), -1.0)


class TestNearest:
    def test_nearest_returns_closest_first(self):
        index = build_index([(0, 0), (10, 0), (50, 50)])
        assert index.nearest(Point(1, 0), k=2) == [0, 1]

    def test_nearest_with_max_radius(self):
        index = build_index([(0, 0), (90, 90)])
        assert index.nearest(Point(0, 0), k=2, max_radius=20) == [0]

    def test_nearest_empty_index(self):
        index = GridIndex(BoundingBox.square(10), 1.0)
        assert index.nearest(Point(0, 0)) == []

    def test_nearest_rejects_non_positive_k(self):
        index = build_index([(0, 0)])
        with pytest.raises(ValueError):
            index.nearest(Point(0, 0), k=0)


coords = st.floats(min_value=0, max_value=100, allow_nan=False)
point_sets = st.lists(st.tuples(coords, coords), min_size=1, max_size=60)


class TestAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(point_sets, coords, coords, st.floats(min_value=0, max_value=60))
    def test_query_radius_matches_bruteforce(self, points, qx, qy, radius):
        index = build_index(points, cell_size=7.0)
        center = Point(qx, qy)
        # Same squared-distance comparison as the implementation, so the two
        # sides agree on denormal-precision corner cases.
        expected = {
            item_id
            for item_id, (x, y) in enumerate(points)
            if (x - qx) ** 2 + (y - qy) ** 2 <= radius * radius
        }
        assert set(index.query_radius(center, radius)) == expected

    @settings(max_examples=60, deadline=None)
    @given(point_sets, coords, coords, st.integers(min_value=1, max_value=5))
    def test_nearest_matches_bruteforce(self, points, qx, qy, k):
        index = build_index(points, cell_size=9.0)
        center = Point(qx, qy)
        got = index.nearest(center, k=k)
        expected_distances = sorted(
            math.hypot(x - qx, y - qy) for x, y in points
        )[: min(k, len(points))]
        got_distances = [index.location_of(i).distance_to(center) for i in got]
        assert len(got) == min(k, len(points))
        for got_d, expected_d in zip(got_distances, expected_distances):
            assert got_d == pytest.approx(expected_d)
