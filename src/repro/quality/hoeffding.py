"""Hoeffding-bound utilities and empirical error measurement.

The quality threshold in the paper comes from Hoeffding's inequality: with
weights ``2*Acc - 1`` the probability that the weighted majority vote is
wrong is at most ``exp(-sum Acc* / 2)``.  These helpers expose the bound in
both directions and measure the empirical error rate of a solved arrangement
by Monte-Carlo simulation.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.core.arrangement import Arrangement
from repro.core.instance import LTCInstance
from repro.quality.answers import simulate_answers
from repro.quality.voting import weighted_majority_vote


def hoeffding_error_bound(acc_star_values: Iterable[float]) -> float:
    """Upper bound on the voting error given the assigned ``Acc*`` values.

    ``P(error) <= exp(- sum(Acc*) / 2)``.
    """
    total = 0.0
    for value in acc_star_values:
        if value < 0:
            raise ValueError("Acc* values cannot be negative")
        total += value
    return math.exp(-total / 2.0)


def required_acc_star(error_rate: float) -> float:
    """Total ``Acc*`` needed to push the Hoeffding bound below ``error_rate``.

    Identical to :func:`repro.core.quality_threshold.quality_threshold`;
    provided here so quality-focused code does not need to import the core
    module for a one-liner.
    """
    if not 0.0 < error_rate < 1.0:
        raise ValueError("error rate must be in (0, 1)")
    return 2.0 * math.log(1.0 / error_rate)


def empirical_error_rate(
    instance: LTCInstance,
    arrangement: Arrangement,
    trials: int = 200,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of the per-task voting error of an arrangement.

    Repeatedly simulates worker answers, aggregates them with weighted
    majority voting and counts how often a task's decision disagrees with its
    ground truth.  The returned rate is averaged over tasks and trials and
    should sit below the instance's tolerable error rate whenever the
    arrangement completes every task.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    rng = np.random.default_rng(seed)
    errors = 0
    total = 0
    for _ in range(trials):
        answers = simulate_answers(instance, arrangement, rng)
        for task in instance.tasks:
            votes = answers[task.task_id]
            if not votes:
                continue
            outcome = weighted_majority_vote(
                [vote for _, vote, _ in votes],
                [accuracy for _, _, accuracy in votes],
            )
            total += 1
            if outcome.decision != task.true_answer:
                errors += 1
    if total == 0:
        return 0.0
    return errors / total
