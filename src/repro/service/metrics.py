"""Aggregate serving metrics for the dispatch layer.

The dispatcher serves many sessions from one worker stream; these counters
answer the operational questions — how much traffic arrived, how much of it
was routable, how many assignments were committed, and how fast the dispatch
hot path is running.

Metrics are **mergeable**: a sharded dispatcher runs one
:class:`~repro.service.LTCDispatcher` per geographic shard, each with its
own counters, and :meth:`DispatcherMetrics.merged` rolls the per-shard
objects up into one aggregate view (counters and busy time sum; the
derived ratios are recomputed over the sums).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterable


@dataclass
class DispatcherMetrics:
    """Counters accumulated by an :class:`~repro.service.LTCDispatcher`.

    Attributes
    ----------
    sessions_opened / sessions_completed / sessions_closed:
        Lifecycle counts.  ``completed`` counts completion *events* while
        being fed (a session reopened by a mid-stream task submission can
        complete again); ``closed`` counts explicit
        :meth:`~repro.service.LTCDispatcher.close` calls.
    sessions_reopened:
        Completed sessions pulled back into serving because
        :meth:`~repro.service.LTCDispatcher.submit_tasks` posted new
        tasks to them.
    tasks_submitted:
        Tasks posted to open sessions after submission (the dynamic
        mid-stream path), across all sessions.
    tasks_expired:
        Tasks abandoned by :meth:`~repro.service.LTCDispatcher.expire_tasks`
        (deadline passed before the quality threshold), across all
        sessions.  Already-completed ids offered to an expiry sweep are
        not counted — only honest abandonments.
    workers_fed:
        Arrivals offered to the dispatcher.
    workers_routed:
        Deliveries to sessions (one arrival routed to three sessions counts
        three).
    workers_unrouted:
        Arrivals no open session could use (outside every session's
        eligibility region, or all sessions already complete).
    assignments_made:
        Total (worker, task) assignments committed across all sessions.
    restarts:
        Shard restarts performed by the recovery layer (journal replays
        that rebuilt a dead shard's dispatcher).  Always 0 for a plain
        single-process dispatcher.
    replayed_arrivals:
        Worker arrivals re-fed from a shard journal during restart or
        quarantine recovery.  These do **not** double-count into
        ``workers_fed``-style traffic totals at the sharded level: a
        restarted shard's counters are rebuilt *by* the replay, replacing
        (not adding to) the dead dispatcher's counters.
    quarantined_sessions:
        Sessions migrated to the overflow shard because their home shard
        was quarantined after a failure.
    busy_seconds:
        Clock time spent inside the dispatch hot path, measured with the
        dispatcher's injected clock (wall clock by default).
    """

    sessions_opened: int = 0
    sessions_completed: int = 0
    sessions_closed: int = 0
    sessions_reopened: int = 0
    tasks_submitted: int = 0
    tasks_expired: int = 0
    workers_fed: int = 0
    workers_routed: int = 0
    workers_unrouted: int = 0
    assignments_made: int = 0
    restarts: int = 0
    replayed_arrivals: int = 0
    quarantined_sessions: int = 0
    busy_seconds: float = 0.0

    @property
    def routed_fraction(self) -> float:
        """Fraction of fed arrivals delivered to at least one session."""
        if self.workers_fed == 0:
            return 0.0
        return (self.workers_fed - self.workers_unrouted) / self.workers_fed

    @property
    def throughput_per_second(self) -> float:
        """Arrivals dispatched per busy second (0 before any traffic)."""
        if self.busy_seconds <= 0.0:
            return 0.0
        return self.workers_fed / self.busy_seconds

    def merge(self, other: "DispatcherMetrics") -> "DispatcherMetrics":
        """Fold another metrics object's counters into this one (in place).

        Every counter (and ``busy_seconds``) sums; the derived
        ``routed_fraction`` / ``throughput_per_second`` properties then
        describe the combined traffic.  Returns ``self`` for chaining.
        """
        for field in fields(self):
            setattr(
                self,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )
        return self

    def copy(self) -> "DispatcherMetrics":
        """An independent snapshot of the counters.

        The process executor ships one of these back across the pipe on
        every control reply, so the parent's cached view stays usable
        after the worker process is gone.
        """
        return DispatcherMetrics().merge(self)

    @classmethod
    def merged(cls, parts: Iterable["DispatcherMetrics"]) -> "DispatcherMetrics":
        """A new aggregate over ``parts`` — the per-shard roll-up."""
        total = cls()
        for part in parts:
            total.merge(part)
        return total

    def summary(self) -> Dict[str, float]:
        """Flat numbers for logs and reports."""
        return {
            "sessions_opened": float(self.sessions_opened),
            "sessions_completed": float(self.sessions_completed),
            "sessions_closed": float(self.sessions_closed),
            "sessions_reopened": float(self.sessions_reopened),
            "tasks_submitted": float(self.tasks_submitted),
            "tasks_expired": float(self.tasks_expired),
            "workers_fed": float(self.workers_fed),
            "workers_routed": float(self.workers_routed),
            "workers_unrouted": float(self.workers_unrouted),
            "assignments_made": float(self.assignments_made),
            "restarts": float(self.restarts),
            "replayed_arrivals": float(self.replayed_arrivals),
            "quarantined_sessions": float(self.quarantined_sessions),
            "busy_seconds": self.busy_seconds,
            "routed_fraction": self.routed_fraction,
            "throughput_per_second": self.throughput_per_second,
        }
