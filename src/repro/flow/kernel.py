"""Flat, integer-indexed min-cost-flow kernel.

This module is the hot core of the flow layer.  Instead of one ``Edge``
object per arc and dict-of-lists adjacency keyed by tuple labels, the graph
lives in an :class:`ArcArena`: parallel lists ``head`` / ``cost`` / ``cap`` /
``flow`` indexed by arc id, with the residual twin of arc ``a`` always at
``a ^ 1`` (forward arcs are even, residual arcs odd) and the tail stored
implicitly as ``head[a ^ 1]``.  Adjacency is materialised on demand in two
cached forms sharing the same stable arc-insertion order: a compact CSR
pair ``(ptr, arcs)`` for external array consumers, and packed per-node
``(arc, head, cost)`` rows (:meth:`ArcArena.packed_adjacency`) that the
solver's inner loops iterate.

:func:`solve_mcf` is the Successive Shortest Path Algorithm rewritten over
those arrays: Dijkstra with Johnson potentials per augmentation, potentials
kept warm across augmentations, and deterministic tie-breaking (heap ties
fall back to the node id; among equal-cost relaxations the first-inserted
arc wins), so no vanishing cost perturbations are needed for reproducible
results.

Initial potentials come from either :func:`bellman_ford_potentials`
(general graphs, detects negative cycles) or — for the LTC reduction, whose
residual graph at zero flow is a 3-layer DAG ``source -> workers -> tasks ->
sink`` — :func:`dag_potentials`, a single O(E) relaxation pass over a
caller-supplied topological order.

The arena also supports the batch lifecycle of MCF-LTC: persistent structure
(task->sink arcs) is built once, a watermark is taken with
:meth:`ArcArena.watermark`, and each batch rolls back to it with
:meth:`ArcArena.truncate` before appending that batch's worker arcs —
no per-batch network rebuild.
"""

from __future__ import annotations

import bisect
import heapq
import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.flow.exceptions import InfeasibleFlowError, NegativeCycleError

_INF = math.inf


class ArcArena:
    """A flow graph as parallel arrays over integer node and arc ids.

    Nodes are dense integers ``0..num_nodes - 1`` allocated by
    :meth:`add_node`.  :meth:`add_arc` appends a forward arc (even id) and
    its residual twin (odd id, ``arc ^ 1``) in one call.  All numeric state
    lives in the four parallel lists; there are no per-arc objects.
    """

    __slots__ = ("head", "cost", "cap", "flow", "_num_nodes",
                 "_csr_ptr", "_csr_arcs", "_csr_valid", "_adj", "_adj_valid")

    def __init__(self, num_nodes: int = 0) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        self._num_nodes = num_nodes
        #: Head node of each arc; the tail is ``head[arc ^ 1]``.
        self.head: List[int] = []
        #: Cost per unit of flow (residual twins carry the negated cost).
        self.cost: List[float] = []
        #: Capacity of each arc (0 for residual twins at rest).
        self.cap: List[int] = []
        #: Current flow; twins always hold the negated flow.
        self.flow: List[int] = []
        self._csr_ptr: List[int] = []
        self._csr_arcs: List[int] = []
        self._csr_valid = False
        self._adj: List[List[Tuple[int, int, float]]] = []
        self._adj_valid = False

    def _invalidate(self) -> None:
        self._csr_valid = False
        self._adj_valid = False

    # -------------------------------------------------------------- topology

    @property
    def num_nodes(self) -> int:
        """Number of allocated nodes."""
        return self._num_nodes

    @property
    def num_arcs(self) -> int:
        """Number of arcs including residual twins (always even)."""
        return len(self.head)

    def add_node(self) -> int:
        """Allocate a new node and return its id."""
        node = self._num_nodes
        self._num_nodes += 1
        self._invalidate()
        return node

    def add_nodes(self, count: int) -> int:
        """Allocate ``count`` nodes; returns the first id of the dense run."""
        if count < 0:
            raise ValueError("count must be non-negative")
        first = self._num_nodes
        self._num_nodes += count
        self._invalidate()
        return first

    def add_arc(self, tail: int, head: int, capacity: int, cost: float) -> int:
        """Append ``tail -> head`` plus its residual twin; returns the even id.

        Capacities must be non-negative integers; costs any finite float
        (the LTC reduction uses negative costs on worker->task arcs).
        """
        if not (0 <= tail < self._num_nodes and 0 <= head < self._num_nodes):
            raise ValueError("tail and head must be allocated node ids")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if int(capacity) != capacity:
            raise ValueError("capacity must be an integer")
        arc = len(self.head)
        cost = float(cost)
        self.head.append(head)
        self.cost.append(cost)
        self.cap.append(int(capacity))
        self.flow.append(0)
        self.head.append(tail)
        self.cost.append(-cost)
        self.cap.append(0)
        self.flow.append(0)
        self._invalidate()
        return arc

    def tail(self, arc: int) -> int:
        """Tail node of ``arc`` (the head of its twin)."""
        return self.head[arc ^ 1]

    def is_residual(self, arc: int) -> bool:
        """Whether ``arc`` is a residual twin (odd id)."""
        return bool(arc & 1)

    def forward_arcs(self) -> range:
        """Ids of all forward (even) arcs."""
        return range(0, len(self.head), 2)

    # ----------------------------------------------------------------- state

    def residual(self, arc: int) -> int:
        """Residual capacity of ``arc``."""
        return self.cap[arc] - self.flow[arc]

    def push(self, arc: int, amount: int) -> None:
        """Push ``amount`` units along ``arc`` (and pull them off its twin)."""
        if amount < 0:
            raise ValueError("flow amount must be non-negative")
        if amount > self.cap[arc] - self.flow[arc]:
            raise ValueError(
                f"cannot push {amount} units over residual capacity "
                f"{self.cap[arc] - self.flow[arc]}"
            )
        self.flow[arc] += amount
        self.flow[arc ^ 1] -= amount

    def set_capacity(self, arc: int, capacity: int) -> None:
        """Re-set the capacity of a forward arc (batch-reuse lifecycle)."""
        if arc & 1:
            raise ValueError("capacities are set on forward (even) arcs")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if int(capacity) != capacity:
            raise ValueError("capacity must be an integer")
        self.cap[arc] = int(capacity)

    def reset_flows(self) -> None:
        """Zero out the flow on every arc."""
        self.flow = [0] * len(self.flow)

    def total_cost(self) -> float:
        """Total cost of the current flow over forward arcs."""
        cost, flow = self.cost, self.flow
        return sum(cost[a] * flow[a] for a in range(0, len(flow), 2) if flow[a])

    # ---------------------------------------------------------- batch reuse

    def watermark(self) -> Tuple[int, int]:
        """The ``(num_nodes, num_arcs)`` snapshot :meth:`truncate` rolls back to."""
        return (self._num_nodes, len(self.head))

    def truncate(self, num_nodes: int, num_arcs: int) -> None:
        """Roll back to a watermark: drop newer nodes/arcs, zero all flows.

        This is how MCF-LTC reuses one arena across batches: the persistent
        prefix (source, sink, task nodes and task->sink arcs) survives —
        capacities intact, flows zeroed — while the previous batch's worker
        nodes and arcs are discarded in one cheap pass over the retained
        arcs, without rebuilding the graph.
        """
        if num_arcs % 2:
            raise ValueError("num_arcs must be even (arcs come in twin pairs)")
        if num_arcs > len(self.head) or num_nodes > self._num_nodes:
            raise ValueError("cannot truncate beyond the current size")
        for a in range(num_arcs):
            if self.head[a] >= num_nodes:
                raise ValueError(
                    f"arc {a} references node {self.head[a]} above the "
                    f"node watermark {num_nodes}"
                )
        del self.head[num_arcs:]
        del self.cost[num_arcs:]
        del self.cap[num_arcs:]
        self.flow = [0] * num_arcs
        self._num_nodes = num_nodes
        self._invalidate()

    # ------------------------------------------------------------- adjacency

    def csr(self) -> Tuple[List[int], List[int]]:
        """CSR adjacency ``(ptr, arcs)``, rebuilt lazily after mutations.

        The arcs leaving node ``v`` (forward and residual) are
        ``arcs[ptr[v]:ptr[v + 1]]`` in stable arc-insertion order, which is
        what makes tie-breaking in :func:`solve_mcf` deterministic.
        """
        if not self._csr_valid:
            n = self._num_nodes
            head = self.head
            m = len(head)
            ptr = [0] * (n + 1)
            for a in range(m):
                ptr[head[a ^ 1] + 1] += 1
            for v in range(n):
                ptr[v + 1] += ptr[v]
            arcs = [0] * m
            slot = ptr[:-1]
            for a in range(m):
                v = head[a ^ 1]
                arcs[slot[v]] = a
                slot[v] += 1
            self._csr_ptr = ptr
            self._csr_arcs = arcs
            self._csr_valid = True
        return self._csr_ptr, self._csr_arcs

    def packed_adjacency(self) -> List[List[Tuple[int, int, float]]]:
        """Per-node ``(arc, head, cost)`` triples, cached like the CSR.

        The solver's Dijkstra inner loop runs over these packed rows rather
        than the flat CSR, trading one tuple per arc for three fewer list
        indexings per relaxation — a large constant-factor win in CPython.
        Row order is the same stable arc-insertion order as :meth:`csr`;
        ``cap``/``flow`` are looked up live, so pushing flow does not
        invalidate the cache (structural mutations do).
        """
        if not self._adj_valid:
            adj: List[List[Tuple[int, int, float]]] = [
                [] for _ in range(self._num_nodes)
            ]
            head, cost = self.head, self.cost
            for a in range(len(head)):
                adj[head[a ^ 1]].append((a, head[a], cost[a]))
            self._adj = adj
            self._adj_valid = True
        return self._adj


@dataclass(slots=True)
class KernelFlowResult:
    """Outcome of a :func:`solve_mcf` run.

    ``flow_value`` counts only the units routed by this call (the arena may
    carry pre-existing flow); ``total_cost`` is the cost of the arena's
    entire current flow.  ``potentials`` are the final Johnson potentials,
    reusable to warm-start a follow-up solve on the same arena.
    """

    flow_value: int
    total_cost: float
    augmentations: int
    potentials: List[float] = field(default_factory=list, repr=False)


def bellman_ford_potentials(graph: ArcArena, source: int) -> List[float]:
    """Shortest-path distances from ``source`` usable as initial potentials.

    Relaxes residual-capacity arcs until a fixpoint (early exit) and raises
    :class:`NegativeCycleError` after ``num_nodes`` full sweeps without one.
    Unreachable nodes keep an infinite potential, which removes them from
    later Dijkstra passes.
    """
    n = graph.num_nodes
    dist = [_INF] * n
    dist[source] = 0.0
    head, cost, cap, flow = graph.head, graph.cost, graph.cap, graph.flow
    m = len(head)
    for _ in range(n):
        changed = False
        for a in range(m):
            if cap[a] - flow[a] <= 0:
                continue
            d_tail = dist[head[a ^ 1]]
            if d_tail == _INF:
                continue
            candidate = d_tail + cost[a]
            h = head[a]
            if candidate < dist[h] - 1e-12:
                dist[h] = candidate
                changed = True
        if not changed:
            break
    else:
        raise NegativeCycleError("negative-cost cycle reachable from the source")
    return dist


def dag_potentials(
    graph: ArcArena, source: int, topo_order: Iterable[int]
) -> List[float]:
    """Initial potentials for a DAG in one O(E) relaxation pass.

    ``topo_order`` must be a topological order of the residual graph
    (every residual-capacity arc goes from an earlier to a later node) and
    the arena must carry no flow yet; otherwise the returned potentials are
    not shortest distances and must not be fed to :func:`solve_mcf`.  The
    LTC reduction satisfies both by construction: at zero flow its arcs run
    strictly ``source -> workers -> tasks -> sink``.
    """
    pot = [_INF] * graph.num_nodes
    pot[source] = 0.0
    cap, flow = graph.cap, graph.flow
    adj = graph.packed_adjacency()
    for node in topo_order:
        d = pot[node]
        if d == _INF:
            continue
        for a, h, c in adj[node]:
            if cap[a] - flow[a] <= 0:
                continue
            candidate = d + c
            if candidate < pot[h]:
                pot[h] = candidate
    return pot


def solve_mcf(
    graph: ArcArena,
    source: int,
    sink: int,
    max_flow: Optional[int] = None,
    require_max_flow: bool = False,
    potentials: Optional[Sequence[float]] = None,
) -> KernelFlowResult:
    """Min-cost flow from ``source`` to ``sink`` by successive shortest paths.

    Parameters
    ----------
    graph:
        The arc arena.  Flow already present is kept and extended.
    source, sink:
        Node ids (must differ).
    max_flow:
        Route at most this many units; ``None`` routes a min-cost max-flow.
    require_max_flow:
        With ``max_flow``, raise :class:`InfeasibleFlowError` when fewer
        units can be routed.
    potentials:
        Warm-start Johnson potentials (shortest distances from ``source``
        under the current residual graph), e.g. from
        :func:`dag_potentials`.  ``None`` computes them with
        :func:`bellman_ford_potentials`.

    Notes
    -----
    Each augmentation runs Dijkstra over reduced costs with early exit at
    the sink, then advances the potentials so reduced costs stay
    non-negative (the warm-start across augmentations).  Determinism: heap
    ties compare the node id and relaxations use strict ``<``, so among
    equal-reduced-cost alternatives the lowest node id / first-inserted arc
    wins — stable across runs with no cost perturbation.
    """
    n = graph.num_nodes
    if not (0 <= source < n and 0 <= sink < n):
        raise ValueError("source and sink must be nodes of the graph")
    if source == sink:
        raise ValueError("source and sink must differ")
    if max_flow is not None and max_flow < 0:
        raise ValueError("max_flow must be non-negative")

    if potentials is None:
        pot = bellman_ford_potentials(graph, source)
    else:
        pot = list(potentials)
        if len(pot) != n:
            raise ValueError("potentials must cover every node")

    head, cost, cap, flow = graph.head, graph.cost, graph.cap, graph.flow
    heappush, heappop = heapq.heappush, heapq.heappop
    insort = bisect.insort

    # Solver-local residual array: one index per touch instead of two plus a
    # subtraction.  ``flow`` is kept in lockstep so callers read arc flows
    # off the arena as usual.
    res = [cap[a] - flow[a] for a in range(len(cap))]

    # Live adjacency: per-node rows holding only arcs with residual
    # capacity, so Dijkstra never scans (or re-checks) saturated arcs.
    # Rows stay sorted by arc id — the same stable insertion order as
    # :meth:`ArcArena.packed_adjacency`, preserving deterministic
    # tie-breaking — and are patched only along each augmenting path as
    # pushes saturate forward arcs and open their residual twins.
    rows: List[List[Tuple[int, int, float]]] = [
        [entry for entry in row if res[entry[0]] > 0]
        for row in graph.packed_adjacency()
    ]

    routed = 0
    augmentations = 0
    target = _INF if max_flow is None else max_flow

    while routed < target:
        # Dijkstra over reduced costs, early exit at the sink.
        dist = [_INF] * n
        pred = [-1] * n
        dist[source] = 0.0
        dist_sink = _INF
        done = bytearray(n)
        touched: List[int] = []
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, node = heappop(heap)
            if done[node]:
                continue
            if node == sink:
                break
            done[node] = 1
            # No infinite-potential guards in this loop: a scanned arc has
            # residual capacity and leaves a node the search reached, and
            # any such arc's head was already reachable when the initial
            # potentials were computed — so its potential is finite.
            base = d + pot[node]
            for a, h, c in rows[node]:
                # A finalized head can never improve: heap keys are
                # monotone, so candidate >= d >= dist[h].  Skipping it
                # saves the float arithmetic for every arc pointing back
                # into the already-popped region.
                if done[h]:
                    continue
                # candidate = d + max(reduced cost, 0); the max() clamps
                # floating-point noise that pushes a reduced cost below 0.
                candidate = base + c - pot[h]
                if candidate < d:
                    candidate = d
                d_head = dist[h]
                # Goal-directed pruning: a node whose tentative distance is
                # not below the sink's would pop after the sink (heap ties
                # resolve by node id and the sink's entry is already
                # enqueued at dist[sink]), so it can never join the
                # augmenting path, and the potential update clamps every
                # distance at the sink's anyway.  Skipping it here changes
                # nothing in the output but avoids exploring the far side
                # of the graph on every augmentation.
                if candidate < d_head - 1e-15 and candidate < dist_sink:
                    if d_head == _INF:
                        touched.append(h)
                    dist[h] = candidate
                    pred[h] = a
                    if h == sink:
                        dist_sink = candidate
                    heappush(heap, (candidate, h))

        sink_dist = dist_sink
        if sink_dist == _INF:
            break

        # Advance potentials so the next round's reduced costs stay
        # non-negative.  Textbook SSPA adds ``min(dist[v], sink_dist)`` to
        # every finite potential; since reduced costs only ever see
        # potential *differences*, the uniform ``+ sink_dist`` part cancels
        # and only nodes the search actually reached below the sink need
        # the relative update ``dist[v] - sink_dist`` — O(region) instead
        # of O(V) per augmentation.
        for v in touched:
            d_v = dist[v]
            if d_v < sink_dist:
                pot[v] += d_v - sink_dist

        # Bottleneck along sink -> source, then push.
        bottleneck = target - routed
        v = sink
        while v != source:
            a = pred[v]
            r = res[a]
            if r < bottleneck:
                bottleneck = r
            v = head[a ^ 1]
        bottleneck = int(bottleneck)
        if bottleneck <= 0:
            break
        v = sink
        while v != source:
            a = pred[v]
            twin = a ^ 1
            flow[a] += bottleneck
            flow[twin] -= bottleneck
            res[a] -= bottleneck
            if res[a] == 0:
                rows[head[twin]].remove((a, head[a], cost[a]))
            if res[twin] == 0:
                insort(rows[head[a]], (twin, head[twin], cost[twin]))
            res[twin] += bottleneck
            v = head[twin]

        routed += bottleneck
        augmentations += 1

    if require_max_flow and max_flow is not None and routed < max_flow:
        raise InfeasibleFlowError(
            f"only {routed} of the requested {max_flow} units could be routed"
        )

    return KernelFlowResult(
        flow_value=routed,
        total_cost=graph.total_cost(),
        augmentations=augmentations,
        potentials=pot,
    )
