"""Geographic shard plans: partitioning campaigns and traffic by region.

Under the paper's sigmoid accuracy model a worker is eligible for a task
only within a bounded distance (``d_max`` plus a logistic correction), so a
campaign whose tasks sit in one city can only ever use workers near that
city.  A :class:`ShardPlan` exploits this: it splits the serving region into
a grid of rectangular cells (one *geo shard* per cell) plus one *overflow
shard*, and pins each campaign to the single cell that contains its entire
**reach box** — the bounding box of its task locations expanded by the
maximum eligibility radius.  Campaigns whose reach spans cells (or whose
accuracy model admits no distance bound at all) fall back to the overflow
shard, which sees the full worker stream.

The pinning rule is what makes sharded routing *exact* rather than
approximate: every worker eligible for a pinned campaign necessarily lies
inside the campaign's reach box, hence inside its cell — so routing each
arrival to the shard covering its location (plus the overflow shard) loses
no eligible delivery.  See ``docs/dispatch.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.accuracy import SigmoidDistanceAccuracy
from repro.core.candidates import sigmoid_eligibility_radius
from repro.core.instance import LTCInstance
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point


def instance_reach_radius(instance: LTCInstance) -> Optional[float]:
    """Largest distance at which *any* worker could be eligible, or ``None``.

    Under :class:`~repro.core.accuracy.SigmoidDistanceAccuracy` this is the
    eligibility radius of a perfect worker (``p_w = 1``); it upper-bounds
    every real worker's radius.  Returns ``None`` when eligibility cannot be
    bounded geographically — a non-sigmoid accuracy model, or a threshold of
    zero (infinite radius) — in which case the campaign must serve from the
    overflow shard.
    """
    model = instance.accuracy_model
    if not isinstance(model, SigmoidDistanceAccuracy):
        return None
    radius = sigmoid_eligibility_radius(
        1.0, model.d_max, instance.min_assignable_accuracy
    )
    if not math.isfinite(radius):
        return None
    return max(radius, 0.0)


def tasks_reach_bounds(
    instance: LTCInstance, tasks: Optional[Sequence] = None
) -> Optional[BoundingBox]:
    """Reach box of ``tasks`` (default: all of the instance's tasks).

    The bounding box of the task locations expanded by
    :func:`instance_reach_radius` — the region outside which no worker can
    be eligible for any of these tasks.  ``None`` when the radius is
    unbounded (see :func:`instance_reach_radius`).
    """
    radius = instance_reach_radius(instance)
    if radius is None:
        return None
    source = instance.tasks if tasks is None else tasks
    box = BoundingBox.from_points(task.location for task in source)
    return box.expanded(radius)


@dataclass(frozen=True)
class ShardPlan:
    """A ``cols x rows`` grid of geo shards plus one overflow shard.

    Shard ids ``0 .. cols*rows - 1`` are grid cells in row-major order
    (west-to-east, then south-to-north); id ``cols * rows`` is the overflow
    shard, which has no cell and sees the full worker stream.

    Parameters
    ----------
    bounds:
        The serving region covered by the grid.  Campaigns whose reach box
        pokes outside it are pinned to the overflow shard.
    cols / rows:
        Grid dimensions.  ``cols = rows = 1`` degenerates to a single geo
        shard covering the whole region (plus the overflow shard), which is
        the honest baseline configuration for scaling comparisons.
    """

    bounds: BoundingBox
    cols: int = 1
    rows: int = 1

    def __post_init__(self) -> None:
        if self.cols < 1 or self.rows < 1:
            raise ValueError("a shard plan needs at least a 1x1 grid")
        if self.bounds.width <= 0 or self.bounds.height <= 0:
            raise ValueError("shard plan bounds must have positive area")

    # -------------------------------------------------------------- geometry

    @property
    def num_geo_shards(self) -> int:
        """Number of grid-cell shards (excludes the overflow shard)."""
        return self.cols * self.rows

    @property
    def overflow_shard(self) -> int:
        """Id of the overflow shard (always the last id)."""
        return self.cols * self.rows

    @property
    def num_shards(self) -> int:
        """Total shard count: grid cells plus the overflow shard."""
        return self.cols * self.rows + 1

    @property
    def shard_ids(self) -> List[int]:
        """All shard ids, geo shards first, overflow last."""
        return list(range(self.num_shards))

    def cell(self, shard_id: int) -> Optional[BoundingBox]:
        """The rectangle a geo shard covers; ``None`` for the overflow shard."""
        if not 0 <= shard_id <= self.overflow_shard:
            raise ValueError(
                f"shard id {shard_id} out of range 0..{self.overflow_shard}"
            )
        if shard_id == self.overflow_shard:
            return None
        col = shard_id % self.cols
        row = shard_id // self.cols
        cell_w = self.bounds.width / self.cols
        cell_h = self.bounds.height / self.rows
        return BoundingBox(
            self.bounds.min_x + col * cell_w,
            self.bounds.min_y + row * cell_h,
            self.bounds.min_x + (col + 1) * cell_w,
            self.bounds.min_y + (row + 1) * cell_h,
        )

    def shard_of_point(self, point: Point) -> int:
        """The geo shard whose cell contains ``point``.

        Points outside the plan bounds are clamped to the nearest cell —
        harmless for routing, because a worker outside the bounds is outside
        every pinned campaign's reach box and therefore eligible for none of
        them (the overflow shard, which such a worker may still serve, is
        routed separately).
        """
        clamped = self.bounds.clamp(point)
        col = min(
            int((clamped.x - self.bounds.min_x) / self.bounds.width * self.cols),
            self.cols - 1,
        )
        row = min(
            int((clamped.y - self.bounds.min_y) / self.bounds.height * self.rows),
            self.rows - 1,
        )
        return row * self.cols + col

    def shard_for_bounds(self, box: Optional[BoundingBox]) -> int:
        """The shard a campaign with reach box ``box`` pins to.

        A geo shard iff the box fits entirely inside one grid cell;
        otherwise (spanning boxes, boxes poking outside the plan bounds, or
        ``box is None`` for unbounded reach) the overflow shard.
        """
        if box is None:
            return self.overflow_shard
        if not (
            self.bounds.min_x <= box.min_x
            and self.bounds.min_y <= box.min_y
            and box.max_x <= self.bounds.max_x
            and box.max_y <= self.bounds.max_y
        ):
            return self.overflow_shard
        low = self.shard_of_point(Point(box.min_x, box.min_y))
        high = self.shard_of_point(Point(box.max_x, box.max_y))
        if low != high:
            return self.overflow_shard
        cell = self.cell(low)
        assert cell is not None
        # shard_of_point assigns border points to the higher cell only when
        # clamping says so; re-check containment to be explicit about edges.
        if not (
            cell.min_x <= box.min_x
            and cell.min_y <= box.min_y
            and box.max_x <= cell.max_x
            and box.max_y <= cell.max_y
        ):
            return self.overflow_shard
        return low

    def shard_for_instance(self, instance: LTCInstance) -> int:
        """The shard ``instance`` pins to (reach box containment rule)."""
        return self.shard_for_bounds(tasks_reach_bounds(instance))

    # ------------------------------------------------------------- factories

    @classmethod
    def for_region(
        cls, bounds: BoundingBox, cols: int = 1, rows: Optional[int] = None
    ) -> "ShardPlan":
        """A plan gridding ``bounds`` into ``cols x rows`` cells.

        ``rows`` defaults to ``cols`` (a square grid).
        """
        return cls(bounds=bounds, cols=cols, rows=cols if rows is None else rows)

    @classmethod
    def for_campaigns(
        cls,
        instances: Iterable[LTCInstance],
        cols: int = 1,
        rows: Optional[int] = None,
    ) -> "ShardPlan":
        """A plan whose bounds cover every campaign's reach box.

        Campaigns with unbounded reach contribute nothing to the bounds
        (they will pin to the overflow shard regardless).  Raises
        ``ValueError`` when no campaign has a bounded reach — there is
        nothing to grid.
        """
        boxes = [
            box
            for box in (tasks_reach_bounds(instance) for instance in instances)
            if box is not None
        ]
        if not boxes:
            raise ValueError(
                "no campaign has a geographically bounded reach; "
                "a shard plan needs at least one sigmoid-model campaign"
            )
        bounds = BoundingBox(
            min(box.min_x for box in boxes),
            min(box.min_y for box in boxes),
            max(box.max_x for box in boxes),
            max(box.max_y for box in boxes),
        )
        return cls(bounds=bounds, cols=cols, rows=cols if rows is None else rows)
