"""Tests for repro.structures.indexed_heap."""

import heapq
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.structures.indexed_heap import IndexedMinHeap


class TestIndexedMinHeap:
    def test_push_peek_pop_in_priority_order(self):
        heap = IndexedMinHeap()
        heap.push("a", 3.0)
        heap.push("b", 1.0)
        heap.push("c", 2.0)
        assert heap.peek() == (1.0, "b")
        assert [heap.pop()[1] for _ in range(3)] == ["b", "c", "a"]

    def test_len_bool_contains(self):
        heap = IndexedMinHeap()
        assert not heap
        heap.push("a", 1.0)
        assert heap and len(heap) == 1 and "a" in heap

    def test_push_existing_key_updates_priority(self):
        heap = IndexedMinHeap()
        heap.push("a", 5.0)
        heap.push("a", 1.0)
        assert len(heap) == 1
        assert heap.peek() == (1.0, "a")

    def test_update_increase_and_decrease(self):
        heap = IndexedMinHeap()
        for key, priority in [("a", 1.0), ("b", 2.0), ("c", 3.0)]:
            heap.push(key, priority)
        heap.update("a", 10.0)
        heap.update("c", 0.5)
        assert heap.pop() == (0.5, "c")
        assert heap.pop() == (2.0, "b")
        assert heap.pop() == (10.0, "a")

    def test_priority_of(self):
        heap = IndexedMinHeap()
        heap.push("a", 4.0)
        assert heap.priority_of("a") == 4.0

    def test_remove_middle_element(self):
        heap = IndexedMinHeap()
        for key, priority in [("a", 1.0), ("b", 2.0), ("c", 3.0), ("d", 4.0)]:
            heap.push(key, priority)
        heap.remove("b")
        assert "b" not in heap
        assert [heap.pop()[1] for _ in range(3)] == ["a", "c", "d"]

    def test_remove_missing_key_raises(self):
        with pytest.raises(KeyError):
            IndexedMinHeap().remove("zzz")

    def test_pop_if(self):
        heap = IndexedMinHeap()
        heap.push("a", 1.0)
        assert heap.pop_if("missing") is None
        assert heap.pop_if("a") == (1.0, "a")
        assert "a" not in heap

    def test_peek_pop_empty_raise(self):
        heap = IndexedMinHeap()
        with pytest.raises(IndexError):
            heap.peek()
        with pytest.raises(IndexError):
            heap.pop()


operations = st.lists(
    st.tuples(
        st.sampled_from(["push", "update", "pop", "remove"]),
        st.integers(min_value=0, max_value=20),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
    ),
    max_size=200,
)


class TestAgainstReferenceImplementation:
    @settings(max_examples=80, deadline=None)
    @given(operations)
    def test_random_operation_sequences(self, ops):
        heap = IndexedMinHeap()
        reference: dict[int, float] = {}
        for op, key, priority in ops:
            if op == "push" or (op == "update" and key in reference):
                heap.push(key, priority)
                reference[key] = priority
            elif op == "pop" and reference:
                got_priority, got_key = heap.pop()
                expected_priority = min(reference.values())
                assert got_priority == pytest.approx(expected_priority)
                assert reference.pop(got_key) == pytest.approx(got_priority)
            elif op == "remove" and key in reference:
                heap.remove(key)
                del reference[key]
        assert len(heap) == len(reference)
        drained = {}
        while heap:
            priority, key = heap.pop()
            drained[key] = priority
        assert drained == pytest.approx(reference)
