"""Distance functions over points or raw coordinate pairs.

These free functions accept either :class:`repro.geo.Point` instances or any
``(x, y)`` sequences, so data-generation code that works with raw numpy rows
does not need to wrap every row in a ``Point``.
"""

from __future__ import annotations

import math
from typing import Sequence, Union

from repro.geo.point import Point

Coordinate = Union[Point, Sequence[float]]


def _xy(p: Coordinate) -> tuple[float, float]:
    """Extract ``(x, y)`` from a point-like object."""
    if isinstance(p, Point):
        return p.x, p.y
    x, y = p[0], p[1]
    return float(x), float(y)


def euclidean(a: Coordinate, b: Coordinate) -> float:
    """Euclidean (L2) distance between two point-like values."""
    ax, ay = _xy(a)
    bx, by = _xy(b)
    return math.hypot(ax - bx, ay - by)


def squared_euclidean(a: Coordinate, b: Coordinate) -> float:
    """Squared Euclidean distance (avoids the square root)."""
    ax, ay = _xy(a)
    bx, by = _xy(b)
    dx = ax - bx
    dy = ay - by
    return dx * dx + dy * dy


def manhattan(a: Coordinate, b: Coordinate) -> float:
    """Manhattan (L1) distance between two point-like values."""
    ax, ay = _xy(a)
    bx, by = _xy(b)
    return abs(ax - bx) + abs(ay - by)
