"""Registry of solvers keyed by the names used in the paper's figures.

The experiment harness, the service layer and the benchmarks refer to
solvers declaratively — either by bare name ("MCF-LTC", "Base-off", "Random",
"LAF", "AAM") or by a parameterized :class:`~repro.algorithms.spec.SolverSpec`
("MCF-LTC?batch_multiplier=2.0").  Each registry entry records the solver's
factory, the constructor parameters it declares, and its capabilities
(``online``, ``supports_batch``, ...), so :func:`build_solver` can validate a
spec before instantiating it.  Additional solvers (ablation variants, user
extensions) can be registered at runtime.
"""

from __future__ import annotations

import difflib
import inspect
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

from repro.algorithms.aam import AAMSolver, LGFOnlySolver, LRFOnlySolver
from repro.algorithms.base import Solver
from repro.algorithms.baselines import BaseOffSolver, RandomOnlineSolver
from repro.algorithms.exact import ExactSolver
from repro.algorithms.laf import LAFSolver
from repro.algorithms.mcf_ltc import MCFLTCSolver
from repro.algorithms.spec import _RESERVED as _SPEC_RESERVED
from repro.algorithms.spec import SolverSpec, SolverSpecLike

SolverFactory = Callable[..., Solver]

#: The five algorithms compared throughout the paper's evaluation, in the
#: order the figures list them.
DEFAULT_SOLVER_NAMES: List[str] = ["Base-off", "MCF-LTC", "Random", "LAF", "AAM"]


@dataclass(frozen=True)
class SolverCapabilities:
    """What a registered solver can do, declared up front.

    Attributes
    ----------
    online:
        Obeys the online temporal constraint (drivable arrival by arrival
        natively; offline solvers are driven through a replay session).
    dynamic_tasks:
        Accepts tasks posted after serving started: the session's
        ``submit_tasks`` stays legal mid-stream because the solver's
        candidate state rides the incremental engine.
    task_expiry:
        Can abandon live tasks mid-stream: the session's ``expire_tasks``
        (deadline/TTL sweep) is legal because the solver retires tasks
        through the engine's tombstone mask.
    supports_batch:
        Processes workers in tunable batches (exposes ``batch_multiplier``).
    randomized:
        Output depends on a seed parameter.
    exact:
        Finds the true optimum (exponential time; tiny instances only).
    """

    online: bool = False
    dynamic_tasks: bool = False
    task_expiry: bool = False
    supports_batch: bool = False
    randomized: bool = False
    exact: bool = False

    def flags(self) -> List[str]:
        """The names of the capabilities that are set."""
        return [
            flag
            for flag in (
                "online",
                "dynamic_tasks",
                "task_expiry",
                "supports_batch",
                "randomized",
                "exact",
            )
            if getattr(self, flag)
        ]


@dataclass(frozen=True)
class SolverEntry:
    """One registered solver: factory + declared parameters + capabilities."""

    name: str
    factory: SolverFactory
    parameters: Mapping[str, inspect.Parameter]
    capabilities: SolverCapabilities
    description: str = ""
    #: Whether the factory takes ``**kwargs`` (then any parameter is allowed).
    accepts_kwargs: bool = False

    def describe(self) -> Dict[str, object]:
        """A plain-dict description for ``--list``-style introspection."""
        return {
            "name": self.name,
            "parameters": sorted(self.parameters),
            "capabilities": self.capabilities.flags(),
            "description": self.description,
        }


_REGISTRY: Dict[str, SolverEntry] = {}


def _declared_parameters(
    factory: SolverFactory,
) -> tuple[Mapping[str, inspect.Parameter], bool]:
    """The keyword parameters a factory declares, and whether it has kwargs."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins / C-implemented callables
        return {}, True
    parameters = {
        name: parameter
        for name, parameter in signature.parameters.items()
        if parameter.kind
        in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    }
    accepts_kwargs = any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in signature.parameters.values()
    )
    return parameters, accepts_kwargs


def _infer_capabilities(
    factory: SolverFactory, parameters: Mapping[str, inspect.Parameter]
) -> SolverCapabilities:
    """Default capabilities from the factory's class attributes and signature."""
    return SolverCapabilities(
        online=bool(getattr(factory, "is_online", False)),
        dynamic_tasks=bool(getattr(factory, "supports_dynamic_tasks", False)),
        task_expiry=bool(getattr(factory, "supports_task_expiry", False)),
        supports_batch="batch_multiplier" in parameters,
        randomized="seed" in parameters,
    )


def register_solver(
    name: str,
    factory: SolverFactory,
    overwrite: bool = False,
    capabilities: Optional[SolverCapabilities] = None,
    description: Optional[str] = None,
) -> SolverEntry:
    """Register a solver factory under ``name`` and return its entry.

    The factory's constructor parameters are introspected so specs can be
    validated; ``capabilities`` defaults to what the factory's class
    attributes and signature reveal (``is_online``, ``batch_multiplier``,
    ``seed``).  Raises ``ValueError`` when the name is taken and
    ``overwrite`` is false.
    """
    if not name or name != name.strip() or _SPEC_RESERVED & set(name):
        raise ValueError(
            f"solver name {name!r} is empty, has surrounding whitespace, or "
            "contains one of '?&='; such names could never be resolved "
            "through spec strings"
        )
    if not overwrite and name in _REGISTRY:
        raise ValueError(f"solver name {name!r} is already registered")
    parameters, accepts_kwargs = _declared_parameters(factory)
    if capabilities is None:
        capabilities = _infer_capabilities(factory, parameters)
    if description is None:
        description = (inspect.getdoc(factory) or "").partition("\n")[0]
    entry = SolverEntry(
        name=name,
        factory=factory,
        parameters=parameters,
        capabilities=capabilities,
        description=description,
        accepts_kwargs=accepts_kwargs,
    )
    _REGISTRY[name] = entry
    return entry


def solver_entry(name: str) -> SolverEntry:
    """The registry entry for ``name`` (KeyError with a suggestion if unknown)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        close = difflib.get_close_matches(name, list(_REGISTRY), n=1, cutoff=0.5)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise KeyError(
            f"unknown solver {name!r}{hint}; known solvers: {known}"
        ) from None


def build_solver(spec: SolverSpecLike) -> Solver:
    """Instantiate the solver a spec describes.

    ``spec`` may be a :class:`~repro.algorithms.spec.SolverSpec`, a spec
    string like ``"MCF-LTC?batch_multiplier=2.0"``, or a
    ``{"name": ..., "params": {...}}`` mapping.  Parameters are validated
    against the entry's declared constructor parameters.
    """
    spec = SolverSpec.coerce(spec)
    entry = solver_entry(spec.name)
    if not entry.accepts_kwargs:
        unknown = sorted(set(spec.params) - set(entry.parameters))
        if unknown:
            declared = ", ".join(sorted(entry.parameters)) or "<none>"
            raise ValueError(
                f"solver {spec.name!r} does not accept parameter(s) "
                f"{', '.join(map(repr, unknown))}; declared parameters: {declared}"
            )
    return entry.factory(**dict(spec.params))


def get_solver(name: str) -> Solver:
    """Instantiate the solver registered under ``name``.

    Thin shim over :func:`build_solver`; ``name`` may also be a full spec
    string such as ``"MCF-LTC?batch_multiplier=2.0"``.
    """
    return build_solver(name)


def available_solvers() -> List[str]:
    """Names of all registered solvers, sorted."""
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    register_solver("MCF-LTC", MCFLTCSolver)
    register_solver("Base-off", BaseOffSolver)
    register_solver("Random", RandomOnlineSolver)
    register_solver("LAF", LAFSolver)
    register_solver("AAM", AAMSolver)
    register_solver("Exact", ExactSolver,
                    capabilities=SolverCapabilities(exact=True))
    register_solver("LGF-only", LGFOnlySolver)
    register_solver("LRF-only", LRFOnlySolver)


_register_builtins()
