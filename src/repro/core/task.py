"""Micro tasks (Definition 1).

A micro task ``t = <l_t, epsilon>`` is a binary question pinned to a location
with a maximum tolerable error rate.  In this library the tolerable error
rate is carried by the :class:`~repro.core.instance.LTCInstance` (the paper
assumes a single constant epsilon for all tasks), so the task itself stores
its identity, its location and optional descriptive metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.geo.point import Point


@dataclass(frozen=True, slots=True)
class Task:
    """A binary micro task at a fixed location.

    Attributes
    ----------
    task_id:
        Dense integer identifier; also the index of the task in the
        instance's task list.
    location:
        Where the task (POI) is located.
    true_answer:
        Ground-truth binary answer (+1 / -1).  Only used by the quality
        substrate to *simulate* worker answers and verify the Hoeffding
        bound empirically; the algorithms never look at it.
    description:
        Optional human-readable question text (e.g. "Does this place have
        street parking?").
    metadata:
        Optional free-form attributes (POI category, city, ...).
    """

    task_id: int
    location: Point
    true_answer: int = 1
    description: str = ""
    # Excluded from equality/hashing: free-form annotations must not make two
    # otherwise-identical tasks compare differently (and dicts are unhashable).
    metadata: Mapping[str, object] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.task_id < 0:
            raise ValueError("task_id must be non-negative")
        if self.true_answer not in (-1, 1):
            raise ValueError("true_answer must be +1 or -1")

    def distance_to(self, location: Point) -> float:
        """Euclidean distance from the task to ``location``."""
        return self.location.distance_to(location)

    def with_answer(self, true_answer: int) -> "Task":
        """Return a copy of the task with a different ground-truth answer."""
        return Task(
            task_id=self.task_id,
            location=self.location,
            true_answer=true_answer,
            description=self.description,
            metadata=self.metadata,
        )

    @classmethod
    def at(cls, task_id: int, x: float, y: float, **kwargs: object) -> "Task":
        """Convenience constructor from raw coordinates."""
        return cls(task_id=task_id, location=Point(float(x), float(y)), **kwargs)  # type: ignore[arg-type]
