"""Tests for repro.simulation.metrics."""

import pytest

from repro.algorithms.laf import LAFSolver
from repro.simulation.metrics import SolveMeasurement, measure_solver


class TestMeasureSolver:
    def test_measures_runtime_and_memory(self, tiny_instance):
        measurement = measure_solver(LAFSolver(), tiny_instance)
        assert measurement.result.completed
        assert measurement.runtime_seconds > 0
        assert measurement.peak_memory_bytes > 0
        assert measurement.peak_memory_mb == pytest.approx(
            measurement.peak_memory_bytes / (1024 * 1024)
        )

    def test_memory_tracking_can_be_disabled(self, tiny_instance):
        measurement = measure_solver(LAFSolver(), tiny_instance, track_memory=False)
        assert measurement.peak_memory_bytes == 0
        assert measurement.runtime_seconds > 0

    def test_summary_merges_result_and_efficiency(self, tiny_instance):
        measurement = measure_solver(LAFSolver(), tiny_instance)
        summary = measurement.summary()
        assert summary["max_latency"] == float(measurement.result.max_latency)
        assert "runtime_seconds" in summary
        assert "peak_memory_mb" in summary

    def test_does_not_leave_tracemalloc_running(self, tiny_instance):
        import tracemalloc

        was_tracing = tracemalloc.is_tracing()
        measure_solver(LAFSolver(), tiny_instance)
        assert tracemalloc.is_tracing() == was_tracing
