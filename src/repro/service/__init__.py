"""Service layer: serving many LTC instances from one worker stream.

This package is the roadmap's heavy-traffic serving story.  It builds on
the incremental :class:`~repro.core.session.Session` protocol: the
:class:`LTCDispatcher` multiplexes many concurrent named sessions, routes
each arriving worker to the sessions it is eligible for (a geographic
proximity test under the paper's sigmoid accuracy model), and aggregates
throughput/latency metrics across the fleet of sessions.

On top of it, :mod:`repro.service.sharding` partitions campaigns and
traffic geographically — one dispatcher per shard behind a bounded,
backpressure-aware arrival queue (:class:`ShardedDispatcher`) — and
:mod:`repro.service.loadgen` generates seeded, replayable multi-city
worker streams for load testing (``benchmarks/bench_dispatch_scale.py``).
:mod:`repro.service.recovery` makes the sharded runtime fault-tolerant —
per-shard arrival journals, restart/quarantine policies under a shard
supervisor — and :mod:`repro.service.faults` provides the deterministic,
seeded fault injection the chaos differential suite (and
``benchmarks/bench_resilience.py``) drives it with.

See ``examples/dispatch_service.py`` for an end-to-end scenario serving
concurrent campaigns from a single merged check-in stream, and
``docs/dispatch.md`` for the sharded runtime.
"""

from repro.service.dispatcher import (
    DuplicateSessionError,
    LTCDispatcher,
    SessionStatus,
    UnknownSessionError,
)
from repro.service.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedShardCrash,
    TransientSolverError,
)
from repro.service.loadgen import (
    BurstWindow,
    ReplayConfig,
    ReplayWorkload,
    build_workload,
)
from repro.service.metrics import DispatcherMetrics
from repro.service.recovery import (
    FAILURE_POLICIES,
    ArrivalJournal,
    JournalReplayError,
    RecoveryEvent,
    RecoveryPolicy,
    ShardSupervisor,
)
from repro.service.sharding import (
    BoundedArrivalQueue,
    QueueClosedError,
    ShardAffinityError,
    ShardedDispatcher,
    ShardPlan,
    ShardProcessDied,
    ShardProcessError,
    ShardStatus,
    process_executor_available,
)

__all__ = [
    "LTCDispatcher",
    "SessionStatus",
    "DispatcherMetrics",
    "DuplicateSessionError",
    "UnknownSessionError",
    "ShardPlan",
    "ShardedDispatcher",
    "ShardStatus",
    "ShardAffinityError",
    "BoundedArrivalQueue",
    "QueueClosedError",
    "ReplayConfig",
    "ReplayWorkload",
    "BurstWindow",
    "build_workload",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "InjectedShardCrash",
    "TransientSolverError",
    "FAULT_KINDS",
    "RecoveryPolicy",
    "RecoveryEvent",
    "ShardSupervisor",
    "ArrivalJournal",
    "JournalReplayError",
    "FAILURE_POLICIES",
    "ShardProcessError",
    "ShardProcessDied",
    "process_executor_available",
]
