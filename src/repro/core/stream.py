"""Online worker streams (Definition 7's temporal constraint).

In the online scenario the platform learns about a worker only when s/he
checks in, and must commit the assignment immediately.  A
:class:`WorkerStream` enforces this protocol: online solvers pull workers one
at a time and there is no way to look ahead or rewind.  The simulation engine
drives solvers through this interface so that the separation between offline
and online information is structural, not just conventional.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.core.worker import Worker


class WorkerStream:
    """A forward-only stream of workers in arrival order."""

    def __init__(self, workers: Iterable[Worker]) -> None:
        self._workers: List[Worker] = list(workers)
        expected = list(range(1, len(self._workers) + 1))
        if [worker.index for worker in self._workers] != expected:
            raise ValueError(
                "workers must be supplied in arrival order with consecutive "
                "indices starting at 1"
            )
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._workers)

    @property
    def consumed(self) -> int:
        """How many workers have been observed so far."""
        return self._cursor

    @property
    def remaining(self) -> int:
        """How many workers have not yet arrived."""
        return len(self._workers) - self._cursor

    @property
    def exhausted(self) -> bool:
        """Whether every worker has already arrived."""
        return self._cursor >= len(self._workers)

    def next_worker(self) -> Optional[Worker]:
        """The next arriving worker, or ``None`` when the stream is exhausted."""
        if self.exhausted:
            return None
        worker = self._workers[self._cursor]
        self._cursor += 1
        return worker

    def __iter__(self) -> Iterator[Worker]:
        while True:
            worker = self.next_worker()
            if worker is None:
                return
            yield worker

    def restart(self) -> "WorkerStream":
        """A fresh stream over the same workers (for repeated experiments)."""
        return WorkerStream(self._workers)
