"""Qualitative expectations extracted from the paper's evaluation.

The paper's figures are plots without exact numbers, so the reproduction
target is the *shape* of each panel: which algorithm wins, how the metric
moves along the sweep, and the coarse ordering between algorithm families.
Each :class:`PanelExpectation` captures those claims for one experiment and
offers a ``check`` method that the EXPERIMENTS.md generator and the
integration tests use to compare a measured :class:`ResultTable` against the
paper.

The expectations intentionally allow slack (e.g. "AAM is never worse than
Random by more than 5%") because individual repetitions of a randomised
workload can cross lines that are close together in the paper as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.simulation.results import ResultTable


@dataclass(frozen=True)
class PanelExpectation:
    """Qualitative claims of one figure column.

    Attributes
    ----------
    experiment_id:
        The experiment the claims apply to.
    latency_better:
        Pairs ``(a, b)`` meaning "averaged over the sweep, algorithm ``a``
        achieves latency <= algorithm ``b`` (within ``tolerance``)".
    latency_trend:
        ``"decreasing"`` / ``"increasing"`` / ``None`` — how the latency of
        the proposed algorithms moves as the sweep value grows.
    runtime_slowest:
        Algorithm expected to have the largest mean runtime (MCF-LTC in every
        panel of the paper).
    tolerance:
        Multiplicative slack applied to the latency comparisons.
    """

    experiment_id: str
    latency_better: Sequence[Tuple[str, str]] = field(default_factory=list)
    latency_trend: Optional[str] = None
    trend_algorithms: Sequence[str] = ("AAM", "LAF")
    runtime_slowest: Optional[str] = "MCF-LTC"
    tolerance: float = 1.05

    # ------------------------------------------------------------------ checks

    def check(self, table: ResultTable) -> List[str]:
        """Return a list of violated claims (empty = matches the paper)."""
        problems: List[str] = []
        problems.extend(self._check_pairs(table))
        problems.extend(self._check_trend(table))
        problems.extend(self._check_runtime(table))
        return problems

    def _mean_over_sweep(self, table: ResultTable, metric: str) -> Dict[str, float]:
        series = table.mean_series(metric)
        return {
            algorithm: sum(value for _, value in points) / len(points)
            for algorithm, points in series.items()
            if points
        }

    def _check_pairs(self, table: ResultTable) -> List[str]:
        means = self._mean_over_sweep(table, "max_latency")
        problems = []
        for better, worse in self.latency_better:
            if better not in means or worse not in means:
                continue
            if means[better] > means[worse] * self.tolerance:
                problems.append(
                    f"{better} (mean latency {means[better]:.1f}) should not exceed "
                    f"{worse} ({means[worse]:.1f}) by more than "
                    f"{(self.tolerance - 1) * 100:.0f}%"
                )
        return problems

    def _check_trend(self, table: ResultTable) -> List[str]:
        if self.latency_trend is None:
            return []
        problems = []
        series = table.mean_series("max_latency")
        for algorithm in self.trend_algorithms:
            points = series.get(algorithm)
            if not points or len(points) < 2:
                continue
            first = points[0][1]
            last = points[-1][1]
            if self.latency_trend == "decreasing" and last > first * self.tolerance:
                problems.append(
                    f"{algorithm}: latency should decrease over the sweep "
                    f"({first:.1f} -> {last:.1f})"
                )
            if self.latency_trend == "increasing" and last * self.tolerance < first:
                problems.append(
                    f"{algorithm}: latency should increase over the sweep "
                    f"({first:.1f} -> {last:.1f})"
                )
        return problems

    def _check_runtime(self, table: ResultTable) -> List[str]:
        if self.runtime_slowest is None:
            return []
        means = self._mean_over_sweep(table, "runtime_seconds")
        if self.runtime_slowest not in means or len(means) < 2:
            return []
        slowest = max(means, key=lambda name: means[name])
        if slowest != self.runtime_slowest:
            return [
                f"expected {self.runtime_slowest} to be the slowest algorithm, "
                f"measured slowest is {slowest}"
            ]
        return []


#: The paper's claims, figure column by figure column.  Common threads: the
#: proposed online algorithms beat Random, AAM is the best online algorithm,
#: MCF-LTC beats Base-off, and MCF-LTC is by far the most expensive to run.
_COMMON_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("AAM", "Random"),
    ("LAF", "Random"),
    ("AAM", "LAF"),
    ("MCF-LTC", "Base-off"),
)

PAPER_EXPECTATIONS: Dict[str, PanelExpectation] = {
    "fig3_tasks": PanelExpectation(
        experiment_id="fig3_tasks",
        latency_better=_COMMON_PAIRS,
        latency_trend="increasing",
    ),
    "fig3_capacity": PanelExpectation(
        experiment_id="fig3_capacity",
        latency_better=_COMMON_PAIRS,
        latency_trend="decreasing",
    ),
    "fig3_accuracy_normal": PanelExpectation(
        experiment_id="fig3_accuracy_normal",
        latency_better=_COMMON_PAIRS,
        latency_trend="decreasing",
    ),
    "fig3_accuracy_uniform": PanelExpectation(
        experiment_id="fig3_accuracy_uniform",
        latency_better=_COMMON_PAIRS,
        latency_trend="decreasing",
    ),
    "fig4_epsilon": PanelExpectation(
        experiment_id="fig4_epsilon",
        latency_better=_COMMON_PAIRS,
        latency_trend="decreasing",
    ),
    "fig4_scalability": PanelExpectation(
        experiment_id="fig4_scalability",
        latency_better=_COMMON_PAIRS,
        latency_trend="increasing",
    ),
    "fig4_newyork": PanelExpectation(
        experiment_id="fig4_newyork",
        latency_better=_COMMON_PAIRS,
        latency_trend="decreasing",
    ),
    "fig4_tokyo": PanelExpectation(
        experiment_id="fig4_tokyo",
        latency_better=_COMMON_PAIRS,
        latency_trend="decreasing",
    ),
    "ablation_batch_size": PanelExpectation(
        experiment_id="ablation_batch_size",
        latency_better=(),
        latency_trend=None,
        runtime_slowest=None,
    ),
    # The ablations are additions of this reproduction (the paper only
    # discusses these effects in prose), so the only expectation recorded is
    # that the hybrid never loses to plain LAF.
    "ablation_aam_switch": PanelExpectation(
        experiment_id="ablation_aam_switch",
        latency_better=(("AAM", "LAF"),),
        latency_trend=None,
        trend_algorithms=("AAM",),
        runtime_slowest=None,
    ),
}
