#!/usr/bin/env python
"""Quickstart: generate a workload, run a solver, inspect the result.

This is the 30-second tour of the library:

1. build a synthetic spatial-crowdsourcing workload (Table IV style),
2. run one offline and one online algorithm from the paper,
3. check the arrangement really satisfies the LTC constraints, and
4. verify the Hoeffding quality guarantee by simulating worker answers.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    SyntheticConfig,
    generate_synthetic_instance,
    get_solver,
    latency_lower_bound,
    measure_solver,
)
from repro.quality.hoeffding import empirical_error_rate


def main() -> None:
    # A laptop-sized workload: 50 POI questions, 800 check-ins on a 150x150
    # grid (each unit is 10 m), workers answer at most 6 questions each, and
    # every task must reach a 14% tolerable error rate.
    config = SyntheticConfig(
        num_tasks=50,
        num_workers=800,
        capacity=6,
        error_rate=0.14,
        grid_size=150.0,
        seed=2018,
    )
    instance = generate_synthetic_instance(config)
    print("Instance:", instance.describe())
    print(f"Quality threshold delta = {instance.delta:.2f} "
          f"(each task needs that much accumulated Acc*)\n")

    lower = latency_lower_bound(instance.num_tasks, instance.delta, instance.capacity)
    print(f"Theorem 2 lower bound on the optimal latency: {lower:.0f} workers\n")

    for name in ("MCF-LTC", "AAM"):
        measurement = measure_solver(get_solver(name), instance)
        result = measurement.result
        print(f"{name:8s} completed={result.completed} "
              f"latency={result.max_latency:5d} "
              f"workers_used={result.workers_used:4d} "
              f"assignments={result.num_assignments:5d} "
              f"runtime={measurement.runtime_seconds:.2f}s "
              f"peak_mem={measurement.peak_memory_mb:.1f}MB")

        # Independent re-validation of the three LTC constraints.
        violations = result.arrangement.constraint_violations(
            instance.workers_by_index()
        )
        assert violations == [], violations

        # Close the loop on quality: simulate binary answers from the
        # assigned workers, aggregate them by weighted majority voting and
        # measure the empirical per-task error rate.
        error = empirical_error_rate(instance, result.arrangement, trials=100, seed=1)
        print(f"{'':8s} measured voting error {error:.3f} "
              f"(tolerable {instance.error_rate:.2f})\n")


if __name__ == "__main__":
    main()
