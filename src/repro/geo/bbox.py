"""Axis-aligned bounding boxes.

Bounding boxes describe dataset extents (the synthetic 1000x1000 grid, or a
city's check-in region) and back the uniform grid index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.geo.point import Point


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """A closed axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                "invalid bounding box: "
                f"({self.min_x}, {self.min_y}) .. ({self.max_x}, {self.max_y})"
            )

    @property
    def width(self) -> float:
        """Extent along the x axis."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along the y axis."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Area of the box."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Centre point of the box."""
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside (or on the border of) the box."""
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """Whether the two boxes share at least one point."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def expanded(self, margin: float) -> "BoundingBox":
        """Return a copy grown by ``margin`` on every side."""
        if margin < 0:
            raise ValueError("margin must be non-negative")
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def clamp(self, point: Point) -> Point:
        """Project ``point`` onto the box (nearest point inside it)."""
        x = min(max(point.x, self.min_x), self.max_x)
        y = min(max(point.y, self.min_y), self.max_y)
        return Point(x, y)

    @classmethod
    def square(cls, side: float) -> "BoundingBox":
        """A ``[0, side] x [0, side]`` box (the paper's synthetic grid)."""
        if side <= 0:
            raise ValueError("side must be positive")
        return cls(0.0, 0.0, side, side)

    @classmethod
    def from_points(cls, points: Iterable[Point | Sequence[float]]) -> "BoundingBox":
        """The smallest box containing every point in ``points``."""
        xs: list[float] = []
        ys: list[float] = []
        for p in points:
            if isinstance(p, Point):
                xs.append(p.x)
                ys.append(p.y)
            else:
                xs.append(float(p[0]))
                ys.append(float(p[1]))
        if not xs:
            raise ValueError("cannot build a bounding box from zero points")
        return cls(min(xs), min(ys), max(xs), max(ys))
