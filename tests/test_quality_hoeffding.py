"""Tests for repro.quality.hoeffding (the quality guarantee loop)."""

import math

import pytest

from repro.algorithms.laf import LAFSolver
from repro.quality.hoeffding import (
    empirical_error_rate,
    hoeffding_error_bound,
    required_acc_star,
)


class TestBounds:
    def test_bound_formula(self):
        values = [0.5, 0.7, 1.0]
        assert hoeffding_error_bound(values) == pytest.approx(math.exp(-sum(values) / 2))

    def test_empty_bound_is_one(self):
        assert hoeffding_error_bound([]) == pytest.approx(1.0)

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            hoeffding_error_bound([-0.1])

    def test_required_acc_star_matches_threshold(self):
        assert required_acc_star(0.2) == pytest.approx(2 * math.log(5))

    def test_required_acc_star_rejects_bad_error_rate(self):
        with pytest.raises(ValueError):
            required_acc_star(0.0)

    def test_meeting_the_threshold_pushes_bound_below_epsilon(self):
        epsilon = 0.14
        needed = required_acc_star(epsilon)
        assert hoeffding_error_bound([needed / 4] * 4) <= epsilon + 1e-12


class TestEmpiricalErrorRate:
    def test_completed_arrangement_meets_the_error_rate(self, running_example):
        """End-to-end quality check: solve, simulate answers, vote, measure."""
        result = LAFSolver().solve(running_example)
        assert result.completed
        error = empirical_error_rate(running_example, result.arrangement,
                                     trials=400, seed=3)
        # The guarantee is per task with tolerance epsilon = 0.2; the measured
        # rate should sit comfortably below it.
        assert error <= running_example.error_rate

    def test_empty_arrangement_has_zero_measured_error(self, running_example):
        arrangement = running_example.new_arrangement()
        assert empirical_error_rate(running_example, arrangement, trials=10) == 0.0

    def test_rejects_non_positive_trials(self, running_example):
        arrangement = running_example.new_arrangement()
        with pytest.raises(ValueError):
            empirical_error_rate(running_example, arrangement, trials=0)
