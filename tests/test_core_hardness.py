"""Tests for the NP-hardness reduction gadget (Theorem 1)."""

import math

import pytest

from repro.core.hardness import (
    REDUCTION_ERROR_RATE,
    ThreePartitionInstance,
    arrangement_encodes_partition,
    ltc_instance_from_three_partition,
)


def yes_instance():
    """m = 2, B = 100: {26, 33, 41} and {30, 35, 35} both sum to 100."""
    return ThreePartitionInstance(values=(26, 33, 41, 30, 35, 35))


def no_instance():
    """m = 2, B = 100 with no valid partition into two triples."""
    return ThreePartitionInstance(values=(26, 26, 26, 37, 40, 45))


class TestThreePartitionInstance:
    def test_basic_properties(self):
        instance = yes_instance()
        assert instance.m == 2
        assert instance.bin_size == 100

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            ThreePartitionInstance(values=(30, 30, 40, 50))

    def test_rejects_sum_not_multiple_of_m(self):
        with pytest.raises(ValueError):
            ThreePartitionInstance(values=(26, 33, 42, 30, 35, 35))

    def test_rejects_values_outside_quarter_half_window(self):
        with pytest.raises(ValueError):
            ThreePartitionInstance(values=(10, 45, 45, 30, 35, 35))

    def test_brute_force_finds_partition_for_yes_instance(self):
        partition = yes_instance().brute_force_partition()
        assert partition is not None
        values = yes_instance().values
        for triple in partition:
            assert sum(values[i] for i in triple) == 100

    def test_brute_force_returns_none_for_no_instance(self):
        assert no_instance().brute_force_partition() is None


class TestReduction:
    def test_reduction_instance_shape(self):
        instance = ltc_instance_from_three_partition(yes_instance())
        assert instance.num_tasks == 2
        assert instance.num_workers == 6
        assert instance.capacity == 1
        assert instance.error_rate == pytest.approx(REDUCTION_ERROR_RATE)
        assert instance.delta == pytest.approx(1.0)

    def test_acc_star_encodes_ratios(self):
        three_partition = yes_instance()
        instance = ltc_instance_from_three_partition(three_partition)
        for worker, value in zip(instance.workers, three_partition.values):
            for task in instance.tasks:
                assert instance.acc_star(worker, task) == pytest.approx(value / 100)

    def test_partition_gives_feasible_arrangement_with_all_workers(self):
        three_partition = yes_instance()
        instance = ltc_instance_from_three_partition(three_partition)
        partition = three_partition.brute_force_partition()
        arrangement = instance.new_arrangement()
        for task_index, triple in enumerate(partition):
            for worker_position in triple:
                arrangement.assign(instance.worker(worker_position + 1),
                                   instance.task(task_index))
        assert arrangement.is_complete()
        assert arrangement.max_latency == 6

    def test_arrangement_decodes_back_to_partition(self):
        three_partition = yes_instance()
        instance = ltc_instance_from_three_partition(three_partition)
        partition = three_partition.brute_force_partition()
        assignments = [
            (worker_position + 1, task_index)
            for task_index, triple in enumerate(partition)
            for worker_position in triple
        ]
        triples = arrangement_encodes_partition(instance, assignments)
        assert triples is not None
        values = three_partition.values
        for triple in triples:
            assert sum(values[index - 1] for index in triple) == 100

    def test_decoder_rejects_worker_reuse(self):
        instance = ltc_instance_from_three_partition(yes_instance())
        assignments = [(1, 0), (1, 1), (2, 0), (3, 0), (4, 1), (5, 1)]
        assert arrangement_encodes_partition(instance, assignments) is None

    def test_decoder_rejects_wrong_group_sizes(self):
        instance = ltc_instance_from_three_partition(yes_instance())
        assignments = [(1, 0), (2, 0), (3, 0), (4, 0), (5, 1), (6, 1)]
        assert arrangement_encodes_partition(instance, assignments) is None
