"""Regenerates Fig. 3c/3g/3k of the paper: latency / runtime / memory vs the mean historical accuracy (normal).

The benchmark times the full regeneration (workload generation plus all five
algorithms across the sweep) and writes the rendered series to
``benchmarks/results/fig3_accuracy_normal.txt``.
"""

import pytest


@pytest.mark.benchmark(group="fig3_accuracy_normal")
def test_regenerate_fig3_accuracy_normal(benchmark, figure_runner):
    table = benchmark.pedantic(
        lambda: figure_runner("fig3_accuracy_normal"), rounds=1, iterations=1
    )
    assert len(table) > 0
    assert table.completion_rate() == 1.0
