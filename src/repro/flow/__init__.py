"""Minimum-cost-flow substrate.

MCF-LTC (Algorithm 1 in the paper) reduces each batch of workers to a
minimum-cost-flow instance and solves it with the Successive Shortest Path
Algorithm (SSPA).  This package implements that substrate from scratch:

* :class:`FlowNetwork` — a residual-graph representation with real-valued
  costs and integer capacities.
* :func:`successive_shortest_paths` — SSPA with Bellman–Ford initial
  potentials (the LTC reduction uses negative arc costs) and Dijkstra with
  Johnson potentials for each augmentation.
* :func:`validate_flow` — independent verification of capacity/conservation
  constraints, used by the test-suite and by debugging assertions.
"""

from repro.flow.network import Edge, FlowNetwork
from repro.flow.sspa import FlowResult, successive_shortest_paths, min_cost_flow
from repro.flow.validate import validate_flow, FlowViolation
from repro.flow.exceptions import FlowError, NegativeCycleError, InfeasibleFlowError

__all__ = [
    "Edge",
    "FlowNetwork",
    "FlowResult",
    "successive_shortest_paths",
    "min_cost_flow",
    "validate_flow",
    "FlowViolation",
    "FlowError",
    "NegativeCycleError",
    "InfeasibleFlowError",
]
