"""Microbenchmark: candidate-engine backends vs the pre-engine object scan.

Measures the two hot candidate paths on a dense sigmoid instance (defaults:
2k tasks, worker degree ~100 — comfortably above the paper's sparse ~12,
where the vectorized win is what the north star's traffic needs):

* **online** — the per-arrival candidate path of the online solvers: a full
  LAF and AAM drive to completion, arrival by arrival, through

  - ``legacy`` — the retained pre-engine observe loops
    (:mod:`repro.core.candidates_legacy`): dict-grid query, python ``Task``
    objects, one ``math.exp`` per pair, plus AAM's O(T) remaining rescan;
  - ``python`` — the engine's scalar backend (CSR rows + inlined sigmoid +
    incremental AAM stats);
  - ``numpy`` — the vectorized backend (batched gather/filter/``Acc*``,
    ``np.partition`` top-k preselection).

* **pairs** — the per-batch arc emission of the MCF-LTC reduction:
  ``list(finder.eligible_pairs(batch, uncompleted_ids))`` over a
  batch-sized worker slice.

Exactness is asserted on every case: all implementations must produce
identical arrangements / identical pair streams.  Timings are medians over
interleaved repeats.  The suite registers with the shared registry in
:mod:`_common`, reports in the shared schema, and is normally run through
``benchmarks/bench_all.py``; standalone it writes ``BENCH_candidates.json``
at the repo root (or a smoke report under ``benchmarks/results/`` with
``--smoke``).

Usage::

    PYTHONPATH=src python benchmarks/bench_candidates.py
    PYTHONPATH=src python benchmarks/bench_candidates.py \
        --tasks 300 --workers 500 --repeats 2 \
        --output benchmarks/results/candidates_smoke.json
"""

from __future__ import annotations

import math
import random
import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import _common
from _common import BenchSuite, SuiteResult

from repro.algorithms.aam import AAMSolver
from repro.algorithms.laf import LAFSolver
from repro.core.candidate_engine import available_candidate_backends
from repro.core.candidates import CandidateFinder
from repro.core.candidates_legacy import (
    LegacyCandidateFinder,
    legacy_aam_observe,
    legacy_laf_observe,
)
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point

DEFAULT_OUTPUT = _common.REPO_ROOT / "BENCH_candidates.json"


def build_instance(num_tasks: int, num_workers: int, box: float, seed: int,
                   capacity: int, error_rate: float) -> LTCInstance:
    """A dense urban-style instance: uniform tasks, workers mostly inside."""
    rng = random.Random(seed)
    tasks = [
        Task(task_id=i, location=Point(rng.uniform(0, box), rng.uniform(0, box)))
        for i in range(num_tasks)
    ]
    workers = [
        Worker(
            index=index,
            location=Point(rng.uniform(-0.05 * box, 1.05 * box),
                           rng.uniform(-0.05 * box, 1.05 * box)),
            accuracy=rng.uniform(0.72, 0.98),
            capacity=capacity,
        )
        for index in range(1, num_workers + 1)
    ]
    return LTCInstance(tasks=tasks, workers=workers, error_rate=error_rate,
                       name="bench_candidates")


def mean_degree(instance: LTCInstance, sample: int = 200) -> float:
    finder = CandidateFinder(instance, backend="python")
    workers = instance.workers[:sample]
    return sum(len(finder.candidates(w)) for w in workers) / len(workers)


# ------------------------------------------------------------------ drivers
# Each driver runs one full online solve to completion and returns the
# assignment list (the exactness witness) plus how many arrivals it consumed.


def drive_legacy(instance: LTCInstance, observe) -> tuple:
    arrangement = instance.new_arrangement()
    finder = LegacyCandidateFinder(instance)
    arrivals = 0
    open_tasks = instance.num_tasks
    finished = set()
    for worker in instance.workers:
        if open_tasks == 0:
            break
        assigned_ids = observe(instance, arrangement, finder, worker)
        arrivals += 1
        # Completion is tracked incrementally (identically in both
        # drivers): an O(T) is_complete() poll per arrival would dominate
        # the candidate path being measured for every implementation.
        for task_id in assigned_ids:
            if task_id not in finished and arrangement.is_task_complete(task_id):
                finished.add(task_id)
                open_tasks -= 1
    return arrangement.assignments, arrivals, open_tasks == 0


def drive_engine(instance: LTCInstance, solver_cls, backend: str) -> tuple:
    solver = solver_cls(candidates=backend)
    solver.start(instance)
    arrangement = solver.arrangement
    arrivals = 0
    open_tasks = instance.num_tasks
    finished = set()
    for worker in instance.workers:
        if open_tasks == 0:
            break
        assignments = solver.observe(worker)
        arrivals += 1
        for assignment in assignments:
            task_id = assignment.task_id
            if task_id not in finished and arrangement.is_task_complete(task_id):
                finished.add(task_id)
                open_tasks -= 1
    return arrangement.assignments, arrivals, open_tasks == 0


def _finish_entry(entry, times, runners, backends, baseline="legacy",
                  per_arrival=None):
    """Medians, per-arrival costs and speedups, shared by every section."""
    medians_s = {impl: statistics.median(times[impl]) for impl in runners}
    for impl in runners:
        entry[f"{impl}_ms_median"] = round(medians_s[impl] * 1000, 3)
        if per_arrival:
            entry[f"{impl}_us_per_arrival"] = round(
                medians_s[impl] * 1e6 / max(1, per_arrival), 2
            )
    for backend in backends:
        entry[f"{backend}_speedup_vs_{baseline}"] = _common.ratio(
            medians_s[baseline], medians_s[backend]
        )
    return entry, medians_s


def _timed_section(entry, medians_s, baseline, backends) -> dict:
    return {
        "baseline": baseline,
        "timings_ms": {
            impl: round(value * 1000, 3) for impl, value in medians_s.items()
        },
        "speedups": {
            f"{backend}_vs_{baseline}":
                entry[f"{backend}_speedup_vs_{baseline}"]
            for backend in backends
        },
        "detail": entry,
    }


def bench_online(instance: LTCInstance, repeats: int, backends):
    """Time full LAF and AAM drives for every implementation."""
    sections = {}
    witnesses = {}
    cases = {
        "LAF": (legacy_laf_observe, LAFSolver),
        "AAM": (legacy_aam_observe, AAMSolver),
    }
    for name, (legacy_observe, solver_cls) in cases.items():
        runners = {"legacy": lambda lo=legacy_observe: drive_legacy(instance, lo)}
        for backend in backends:
            runners[backend] = (
                lambda cls=solver_cls, b=backend: drive_engine(instance, cls, b)
            )
        times, outputs = _common.run_interleaved(runners, repeats)
        base_assignments, base_arrivals, base_completed = outputs["legacy"]
        for impl, (assignments, arrivals, _) in outputs.items():
            if assignments != base_assignments or arrivals != base_arrivals:
                raise AssertionError(
                    f"{name}/{impl} diverged from the legacy arrangement "
                    f"({len(assignments)} vs {len(base_assignments)} assignments)"
                )
        entry = {
            "arrivals": base_arrivals,
            "assignments": len(base_assignments),
            "completed": base_completed,
        }
        entry, medians_s = _finish_entry(entry, times, runners, backends,
                                         per_arrival=base_arrivals)
        sections[f"online_{name.lower()}"] = _timed_section(
            entry, medians_s, "legacy", backends
        )
        witnesses[name] = {
            "arrivals": base_arrivals,
            "assignments": len(base_assignments),
            "completed": base_completed,
            "arrangement_digest": _common.digest(base_assignments),
        }
    return sections, witnesses


def bench_selection(instance: LTCInstance, repeats: int, backends,
                    sample: int = 800):
    """The candidate path itself: per-arrival selection on a frozen state.

    The full drives above include the arrangement mutation
    (``Arrangement.assign`` re-evaluates the accuracy model per landed
    assignment), which every implementation pays identically and which
    caps the observable end-to-end ratio.  This section isolates what the
    engine replaced: candidate generation + batched ``Acc*`` evaluation +
    top-``K`` selection.  A canonical LAF run is frozen mid-stream
    (realistic mix of completed and open tasks) and each implementation
    answers the *same* ``sample`` of arrivals read-only; outputs are
    asserted identical.
    """
    from repro.structures.topk import TopKHeap

    solver = LAFSolver(candidates="python")
    solver.start(instance)
    consumed = 0
    finished = 0
    finished_ids = set()
    for worker in instance.workers:
        assignments = solver.observe(worker)
        consumed += 1
        for assignment in assignments:
            task_id = assignment.task_id
            if task_id not in finished_ids and solver.arrangement.is_task_complete(
                task_id
            ):
                finished_ids.add(task_id)
                finished += 1
        if finished >= instance.num_tasks // 2:
            break
    arrangement = solver.arrangement
    sample_workers = instance.workers[consumed:consumed + sample]
    capacity = instance.capacity

    legacy_finder = LegacyCandidateFinder(instance)

    def run_legacy():
        selections = []
        for worker in sample_workers:
            heap: TopKHeap = TopKHeap(capacity)
            for task in legacy_finder.candidates(worker):
                if arrangement.is_task_complete(task.task_id):
                    continue
                heap.push(instance.acc_star(worker, task), task)
            selections.append([task.task_id for _, task in heap.pop_all()])
        return selections

    engines = {}
    for backend in backends:
        finder = CandidateFinder(instance, backend=backend)
        engine = finder.engine
        completed = engine.bool_array()
        for task_id in finished_ids:
            completed[engine.position_of[task_id]] = True
        engines[backend] = (engine, completed)

    def run_engine(backend):
        engine, completed = engines[backend]
        return [
            [task.task_id for task in engine.topk_acc_star(worker, capacity, completed)]
            for worker in sample_workers
        ]

    runners = {"legacy": run_legacy}
    for backend in backends:
        runners[backend] = lambda b=backend: run_engine(b)
    times, outputs = _common.run_interleaved(runners, repeats)
    baseline = outputs["legacy"]
    for impl, selections in outputs.items():
        if selections != baseline:
            raise AssertionError(f"selection/{impl} diverged from legacy")
    entry = {
        "sample_arrivals": len(sample_workers),
        "frozen_after_arrivals": consumed,
        "completed_tasks": finished,
    }
    entry, medians_s = _finish_entry(entry, times, runners, backends,
                                     per_arrival=len(sample_workers))
    section = _timed_section(entry, medians_s, "legacy", backends)
    witness = {
        "sample_arrivals": len(sample_workers),
        "frozen_after_arrivals": consumed,
        "completed_tasks": finished,
        "selection_digest": _common.digest(baseline),
    }
    return section, witness


def bench_pairs(instance: LTCInstance, repeats: int, backends,
                batch_size: int):
    """Time the batch arc-emission stream (the MCF-LTC reduction's input)."""
    batch = instance.workers[:batch_size]
    # Model a mid-run batch: a quarter of the tasks already completed.
    allowed = {task.task_id for task in instance.tasks
               if task.task_id % 4 != 0}
    legacy = LegacyCandidateFinder(instance)
    finders = {"legacy": legacy}
    for backend in backends:
        finders[backend] = CandidateFinder(instance, backend=backend)

    def emit(finder):
        return [
            (w.index, t.task_id)
            for w, t in finder.eligible_pairs(batch, allowed)
        ]

    runners = {impl: (lambda f=finder: emit(f))
               for impl, finder in finders.items()}
    times, outputs = _common.run_interleaved(runners, repeats)
    baseline = outputs["legacy"]
    for impl, pairs in outputs.items():
        if pairs != baseline:
            raise AssertionError(f"pairs/{impl} diverged from the legacy stream")
    entry = {
        "batch_workers": len(batch),
        "allowed_tasks": len(allowed),
        "pairs": len(baseline),
    }
    entry, medians_s = _finish_entry(entry, times, runners, backends)
    section = _timed_section(entry, medians_s, "legacy", backends)
    witness = {
        "batch_workers": len(batch),
        "allowed_tasks": len(allowed),
        "pairs": len(baseline),
        "pairs_digest": _common.digest(baseline),
    }
    return section, witness


def run_suite(args) -> SuiteResult:
    backends = args.backends
    if backends is None:
        backends = [
            b for b in ("python", "numpy") if b in available_candidate_backends()
        ]

    box = args.box
    if box is None:
        # degree ~= tasks * pi * r^2 / box^2 with r ~= d_max for accurate
        # workers; solve for the box side.
        radius = 29.0
        box = math.sqrt(args.tasks * math.pi * radius * radius / args.degree)
    instance = build_instance(args.tasks, args.workers, box, args.seed,
                              args.capacity, args.error_rate)
    degree = mean_degree(instance)
    print(f"instance: {args.tasks} tasks, {args.workers} workers, "
          f"box={box:.1f}, mean degree={degree:.1f}")

    sections, online_witnesses = bench_online(instance, args.repeats, backends)
    for name in ("LAF", "AAM"):
        detail = sections[f"online_{name.lower()}"]["detail"]
        timings = "  ".join(
            f"{impl}={detail[f'{impl}_ms_median']:>9.2f}ms"
            for impl in ["legacy", *backends]
        )
        speedups = "  ".join(
            f"{b}={detail[f'{b}_speedup_vs_legacy']:>5.2f}x" for b in backends
        )
        print(f"online {name:>4}  arrivals={detail['arrivals']:>5}  {timings}  "
              f"speedup: {speedups}")

    selection, selection_witness = bench_selection(instance, args.repeats,
                                                   backends)
    sections["selection"] = selection
    detail = selection["detail"]
    timings = "  ".join(
        f"{impl}={detail[f'{impl}_us_per_arrival']:>8.1f}us"
        for impl in ["legacy", *backends]
    )
    speedups = "  ".join(
        f"{b}={detail[f'{b}_speedup_vs_legacy']:>5.2f}x" for b in backends
    )
    print(f"selection    per-arrival  {timings}  speedup: {speedups}")

    pairs, pairs_witness = bench_pairs(instance, args.repeats, backends,
                                       args.batch_size)
    sections["pairs"] = pairs
    detail = pairs["detail"]
    timings = "  ".join(
        f"{impl}={detail[f'{impl}_ms_median']:>9.2f}ms"
        for impl in ["legacy", *backends]
    )
    speedups = "  ".join(
        f"{b}={detail[f'{b}_speedup_vs_legacy']:>5.2f}x" for b in backends
    )
    print(f"pairs  emit  pairs={detail['pairs']:>7}  {timings}  "
          f"speedup: {speedups}")

    headline = {
        f"{section}_{backend}_vs_legacy":
            sections[section]["speedups"][f"{backend}_vs_legacy"]
        for section in ("online_laf", "online_aam", "selection", "pairs")
        for backend in backends
    }
    config = {
        "tasks": args.tasks,
        "workers": args.workers,
        "box": round(box, 2),
        "mean_degree": round(degree, 1),
        "capacity": args.capacity,
        "error_rate": args.error_rate,
        "batch_size": args.batch_size,
        "repeats": args.repeats,
        "seed": args.seed,
        "backends": list(backends),
    }
    return SuiteResult(
        config=config,
        sections=sections,
        headline_speedups=headline,
        fingerprint_payload={
            "online": online_witnesses,
            "selection": selection_witness,
            "pairs": pairs_witness,
        },
    )


def add_arguments(parser) -> None:
    parser.add_argument("--tasks", type=int, default=2000)
    parser.add_argument("--workers", type=int, default=6000,
                        help="length of the arrival stream (drives stop at "
                             "completion)")
    parser.add_argument("--box", type=float, default=None,
                        help="side of the square region (default: sized for "
                             "a worker degree around --degree)")
    parser.add_argument("--degree", type=float, default=260.0,
                        help="target mean candidates per worker when --box "
                             "is not given (the dense-city regime; the "
                             "paper's sparse setup is ~12)")
    parser.add_argument("--capacity", type=int, default=6)
    parser.add_argument("--error-rate", type=float, default=0.14)
    parser.add_argument("--batch-size", type=int, default=400,
                        help="worker slice for the arc-emission section")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=20180416)
    parser.add_argument("--backends", nargs="+", default=None,
                        help="engine backends to time (default: all available)")


SUITE = _common.register_suite(BenchSuite(
    name="candidates",
    description=(
        "Candidate-generation hot paths: the struct-of-arrays engine "
        "(python scalar and numpy vectorized backends) vs the retained "
        "pre-engine object scan (dict grid, per-pair math.exp, AAM's "
        "O(T) remaining rescan). 'online_laf'/'online_aam' time full "
        "LAF/AAM drives to completion arrival by arrival; 'selection' "
        "isolates the frozen per-arrival top-k path; 'pairs' times one "
        "batch of eligible-pair arc emission for the MCF-LTC reduction. "
        "All implementations are asserted to produce identical "
        "arrangements / pair streams."
    ),
    default_output=DEFAULT_OUTPUT,
    add_arguments=add_arguments,
    run=run_suite,
    smoke_overrides={"tasks": 250, "workers": 500, "degree": 40.0,
                     "batch_size": 120, "repeats": 2},
))


if __name__ == "__main__":
    sys.exit(_common.suite_main(SUITE))
