"""Checks against the paper's worked examples (Tables I/II, Examples 1-4).

These tests pin the behaviour of the solvers on the exact instance the paper
walks through.  Where this implementation intentionally deviates from the
paper's prose (because the prose deviates from the paper's own pseudo-code or
tables — see ``repro.core.examples`` and EXPERIMENTS.md), the deviation is
asserted explicitly so a regression in either direction is caught.
"""

import math

import pytest

from repro.algorithms.aam import AAMSolver
from repro.algorithms.exact import ExactSolver
from repro.algorithms.laf import LAFSolver
from repro.algorithms.mcf_ltc import MCFLTCSolver
from repro.core.examples import (
    EXAMPLE_CAPACITY,
    EXAMPLE_ERROR_RATE,
    EXPECTED_LATENCIES,
    PAPER_REPORTED_LATENCIES,
    TABLE_I,
    running_example_instance,
)


class TestRunningExampleInstance:
    def test_shape_matches_the_paper(self, running_example):
        assert running_example.num_tasks == 3
        assert running_example.num_workers == 8
        assert running_example.capacity == EXAMPLE_CAPACITY == 2
        assert running_example.error_rate == EXAMPLE_ERROR_RATE == 0.2

    def test_delta_matches_example_2(self, running_example):
        assert running_example.delta == pytest.approx(2 * math.log(1 / 0.2), abs=1e-9)
        assert running_example.delta == pytest.approx(3.22, abs=0.01)

    def test_accuracies_read_table_one(self, running_example):
        # Spot-check a few cells of Table I.
        assert running_example.acc(running_example.worker(1), running_example.task(0)) == 0.96
        assert running_example.acc(running_example.worker(2), running_example.task(0)) == 0.98
        assert running_example.acc(running_example.worker(5), running_example.task(2)) == 0.94

    def test_acc_star_of_example_2(self, running_example):
        """Example 2 computes -cost(w1, t1) = (2*0.96 - 1)^2 ~= 0.85."""
        value = running_example.acc_star(running_example.worker(1), running_example.task(0))
        assert value == pytest.approx((2 * 0.96 - 1) ** 2)
        assert value == pytest.approx(0.85, abs=0.01)

    def test_table_one_is_complete(self):
        assert len(TABLE_I) == 24  # 8 workers x 3 tasks


class TestExampleThreeLAF:
    def test_laf_latency_matches_paper(self, running_example):
        """Example 3: LAF needs 8 workers."""
        result = LAFSolver().solve(running_example)
        assert result.completed
        assert result.max_latency == PAPER_REPORTED_LATENCIES["laf"] == 8

    def test_laf_first_worker_gets_t2_and_t1(self, running_example):
        """Example 3's trace: w1 is assigned t2 (0.92) and t1 (0.85)."""
        solver = LAFSolver()
        solver.start(running_example)
        assignments = solver.observe(running_example.worker(1))
        assert [a.task_id for a in assignments] == [1, 0]

    def test_laf_first_four_workers_complete_t1_and_t2(self, running_example):
        solver = LAFSolver()
        solver.start(running_example)
        for index in range(1, 5):
            solver.observe(running_example.worker(index))
        arrangement = solver.arrangement
        assert arrangement.is_task_complete(0)
        assert arrangement.is_task_complete(1)
        assert not arrangement.is_task_complete(2)
        # S = {3.61, 3.54, 0} in the paper's trace.
        assert arrangement.accumulated_of(0) == pytest.approx(3.61, abs=0.01)
        assert arrangement.accumulated_of(1) == pytest.approx(3.54, abs=0.01)


class TestExampleFourAAM:
    def test_aam_beats_laf(self, running_example):
        aam = AAMSolver().solve(running_example)
        laf = LAFSolver().solve(running_example)
        assert aam.completed
        assert aam.max_latency < laf.max_latency

    def test_aam_latency_matches_pseudocode(self, running_example):
        """Following Algorithm 3 literally gives 6 (the paper's prose says 7).

        The deviation is deliberate: at the third worker avg = 3.06 <
        maxRemain = 3.22, so the pseudo-code switches to LRF one arrival
        earlier than the Example 4 narrative.  See EXPERIMENTS.md.
        """
        result = AAMSolver().solve(running_example)
        assert result.max_latency == EXPECTED_LATENCIES["aam"] == 6
        assert result.max_latency <= PAPER_REPORTED_LATENCIES["aam"]

    def test_aam_matches_optimum_on_this_instance(self, running_example):
        aam = AAMSolver().solve(running_example)
        optimum = ExactSolver().solve(running_example)
        assert aam.max_latency == optimum.max_latency == 6


class TestExampleTwoMCF:
    def test_mcf_latency(self, running_example):
        """Example 2 reports 6; the true cost-optimal flow forces 7.

        The flow drawn in the paper's Fig. 2b (only workers 1-6) has total
        Acc* 10.46, but the minimum-cost flow for Table I has total Acc*
        10.53 and necessarily uses worker 7 or 8.  With low-index
        tie-breaking, MCF-LTC therefore returns 7.
        """
        result = MCFLTCSolver().solve(running_example)
        assert result.completed
        assert result.max_latency == EXPECTED_LATENCIES["mcf_ltc"] == 7
        assert result.max_latency <= PAPER_REPORTED_LATENCIES["laf"]

    def test_single_batch_contains_all_workers(self, running_example):
        """Example 2: the first batch is floor(1.5 * 6) = 9 > 8 workers."""
        result = MCFLTCSolver().solve(running_example)
        assert result.extra["batches"] == 1.0

    def test_all_tasks_completed_by_the_flow_alone(self, running_example):
        """Example 2 notes every task is completed by the flow's arrangement."""
        result = MCFLTCSolver().solve(running_example)
        # Each task accumulated at least delta.
        for task in running_example.tasks:
            assert result.arrangement.accumulated_of(task.task_id) >= running_example.delta - 1e-9

    def test_batch_parameter_m_matches_example(self, running_example):
        """Example 2: m = |T| * ceil(delta) / K = 3 * 4 / 2 = 6."""
        delta = running_example.delta
        m = running_example.num_tasks * math.ceil(delta) / running_example.capacity
        assert m == pytest.approx(6.0)


class TestExampleOneOffline:
    def test_offline_optimum_is_better_than_online_greedy(self, running_example):
        """Example 1's message: offline arrangements beat naive online ones."""
        optimum = ExactSolver().solve(running_example)
        laf = LAFSolver().solve(running_example)
        assert optimum.max_latency < laf.max_latency
