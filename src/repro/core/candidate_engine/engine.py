"""The struct-of-arrays candidate engine.

A :class:`CandidateEngine` snapshots an instance's tasks into flat
position-indexed arrays — ``xs[p]``, ``ys[p]``, ``task_ids[p]`` with
positions sorted ascending by task id — and, under the paper's sigmoid
accuracy model, packs them into a CSR grid: tasks are permuted into
row-major cell order (``cell_positions``) with per-cell offsets
(``cell_start``), so a radius query gathers one *contiguous slice per
cell row* instead of chasing a dict of python lists.  All candidate
queries the solvers need — eligibility sets, bulk ``eligible_pairs`` arc
emission, top-``k`` ``Acc*`` selection, cheap ``has_candidates`` routing
tests — run over these arrays through a pluggable
:class:`~repro.core.candidate_engine.base.CandidateBackend`.

The snapshot is **dynamic**: the paper's online setting is a stream in
which tasks are posted and expire while workers trickle in, so a
long-lived engine must not be rebuilt per change.  Three invariants make
the incremental layer safe for callers that keep per-position state:

* **Positions are append-only and stable for the engine's lifetime.**
  :meth:`CandidateEngine.add_tasks` appends new tasks at the next free
  positions; nothing is ever compacted or re-sorted, so a solver's
  per-position containers (completed flags, remaining needs) stay valid
  across every mutation — they only need growing, via
  :meth:`CandidateEngine.grow_bool_array` /
  :meth:`CandidateEngine.grow_float_array`.
* **Retirement is a lazy tombstone, not a rebuild.**
  :meth:`CandidateEngine.retire_tasks` flips the per-position ``alive``
  bit; every query of every backend filters tombstoned positions out of
  its candidate pool *before* the accuracy evaluation, which is
  bit-equivalent to the completed-mask filtering it replaces.  Retired
  positions are physically dropped from the CSR grid only at the next
  rebuild.
* **Appends land in spill arrays; the grid merges them lazily.**  In
  grid mode, positions appended after the last (re)build are not in the
  CSR cells; queries scan that spill range linearly (it is bounded by
  the rebuild threshold) in the same pinned float expressions.  Once
  the spill exceeds ``max(SPILL_REBUILD_MIN,
  min(SPILL_REBUILD_FRACTION * grid-covered, SPILL_REBUILD_MAX))`` the
  grid is rebuilt over the alive snapshot (``grid_epoch`` bumps,
  tombstones are swept out of the cells, and ``spill_start`` advances
  to ``num_tasks``).

``epoch`` counts every mutation (append or retirement); ``grid_epoch``
counts grid rebuilds.  The numpy mirrors re-sync from these counters on
access — tail-appends and tombstone replay are incremental, a grid
rebuild refreshes the mirrors wholesale.  Task ids are normally posted
in increasing order, so position order keeps equalling id order and the
ordered-output sort stays the plain position sort; if an added id breaks
monotonicity, ``positions_id_ordered`` flips and ordered queries sort by
task-id key instead (same output order, slightly slower sort).

The engine operates in one of three modes, chosen at construction:

``grid``
    Sigmoid accuracy model with the spatial index enabled.  The accuracy
    threshold converts to a per-worker eligibility radius
    (:func:`~repro.core.candidates.sigmoid_eligibility_radius`); queries
    gather grid cells, filter by exact squared distance, then apply the
    accuracy decision.  Output order: ascending task id.
``scan``
    Sigmoid model, spatial index disabled: the accuracy decision is
    applied to every task, in instance order (matching the pre-engine
    exhaustive scan byte for byte, including its lack of a radius gate).
``generic``
    Any other accuracy model: per-pair scalar evaluation over the tasks
    in instance order.  Vectorized backends delegate this mode to the
    scalar backend — an arbitrary python model cannot be batched.

Floating-point ground rules (see ``docs/candidates.md``): the squared
distance ``dx*dx + dy*dy`` is evaluated in the same association order
everywhere, so the radius prefilter is bit-exact across backends; the
sigmoid accuracy and ``Acc*`` *decisions* are pinned to the scalar
:meth:`CandidateEngine.scalar_accuracy` / :meth:`CandidateEngine.scalar_acc_star`
paths, which replicate
:class:`~repro.core.accuracy.SigmoidDistanceAccuracy` expression by
expression.
"""

from __future__ import annotations

import math
from typing import (
    AbstractSet,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.accuracy import SigmoidDistanceAccuracy
from repro.core.candidate_engine.base import CandidateBackend, ELIGIBILITY_EPS
# Cycle-free: repro.core.candidates only imports this package lazily,
# inside CandidateFinder.__init__.  Sharing the one implementation keeps
# the (bit-sensitive) radius gate identical between the legacy oracle and
# both engine backends.
from repro.core.candidates import sigmoid_eligibility_radius
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.bbox import BoundingBox

#: Soft cap on total grid cells: keeps the dense ``cell_start`` offset
#: array O(tasks) even for workloads whose extent dwarfs ``d_max`` (the
#: dict grid was sparse and did not care).  Coarsening cells only changes
#: how much a query over-gathers before the exact distance filter — never
#: the result.
_MAX_CELLS_PER_TASK = 8

#: Minimum spill size (positions appended since the last grid build)
#: before :meth:`CandidateEngine.add_tasks` triggers a rebuild.  Below
#: this the linear spill scan is cheaper than re-packing the cells.
SPILL_REBUILD_MIN = 64

#: Fractional rebuild threshold: the spill may grow to this fraction of
#: the grid-covered positions before a rebuild.  Together with the
#: minimum this amortises rebuild cost O(n) over O(n) appended tasks.
SPILL_REBUILD_FRACTION = 0.25

#: Absolute spill cap.  Every grid query scans the spill linearly, so on
#: large snapshots the fractional threshold alone would let per-query
#: spill cost approach scan-mode cost (25% of 100k tasks); capping the
#: spill bounds that scan while still amortising the O(n) rebuild over
#: thousands of appends.  All three knobs only trade query overhead
#: against rebuild frequency — the exact distance/accuracy filters
#: decide membership either way.
SPILL_REBUILD_MAX = 2048


def _as_position_list(positions) -> List[int]:
    """Materialise backend output as a python list (numpy iteration yields
    ``np.int64`` scalars whose per-element overhead would cancel part of
    the vectorized win on the facade paths)."""
    tolist = getattr(positions, "tolist", None)
    if tolist is not None:
        return tolist()
    return positions if isinstance(positions, list) else list(positions)


class _NumpyMirrors:
    """Numpy views of the engine's arrays, kept in sync incrementally.

    ``xs_cell``/``ys_cell`` hold the coordinates pre-permuted into CSR
    cell order, so a radius query reads its per-row coordinate blocks as
    contiguous slices instead of fancy-index gathers.

    Sync strategy (see :meth:`sync`): a grid rebuild (``grid_epoch``
    changed) refreshes every mirror wholesale; otherwise appended tasks
    are tail-concatenated onto the flat arrays and retirements are
    replayed from the engine's tombstone log via a cursor — both O(delta)
    in array terms, never a per-query O(n) rebuild.
    """

    __slots__ = (
        "_np",
        "_grid_epoch",
        "_count",
        "_dead_cursor",
        "xs",
        "ys",
        "task_ids",
        "alive",
        "cell_positions",
        "xs_cell",
        "ys_cell",
        "instance_positions",
    )

    def __init__(self, np, engine: "CandidateEngine") -> None:
        self._np = np
        self._grid_epoch = -1  # force a full build on the first sync
        self._count = 0
        self._dead_cursor = 0
        self.sync(engine)

    def sync(self, engine: "CandidateEngine") -> None:
        """Bring the mirrors up to date with the engine's arrays."""
        np = self._np
        log = engine._tombstone_log
        if self._grid_epoch == engine.grid_epoch:
            if self._count == engine.num_tasks and self._dead_cursor == len(log):
                return
            if self._count < engine.num_tasks:
                lo = self._count
                self.xs = np.concatenate(
                    [self.xs, np.asarray(engine.xs[lo:], dtype=np.float64)]
                )
                self.ys = np.concatenate(
                    [self.ys, np.asarray(engine.ys[lo:], dtype=np.float64)]
                )
                self.task_ids = np.concatenate(
                    [self.task_ids, np.asarray(engine.task_ids[lo:], dtype=np.int64)]
                )
                self.alive = np.concatenate(
                    [self.alive, np.asarray(engine.alive[lo:], dtype=bool)]
                )
                self.instance_positions = np.concatenate(
                    [
                        self.instance_positions,
                        np.asarray(engine.instance_positions[lo:], dtype=np.int64),
                    ]
                )
                self._count = engine.num_tasks
            if self._dead_cursor < len(log):
                dead = np.asarray(log[self._dead_cursor :], dtype=np.int64)
                self.alive[dead] = False
                self._dead_cursor = len(log)
            return
        # Grid rebuild (or first use): refresh everything from the engine.
        self.xs = np.asarray(engine.xs, dtype=np.float64)
        self.ys = np.asarray(engine.ys, dtype=np.float64)
        self.task_ids = np.asarray(engine.task_ids, dtype=np.int64)
        self.alive = np.asarray(engine.alive, dtype=bool)
        self.instance_positions = np.asarray(
            engine.instance_positions, dtype=np.int64
        )
        if engine.cell_positions is not None:
            self.cell_positions = np.asarray(engine.cell_positions, dtype=np.int64)
            self.xs_cell = self.xs[self.cell_positions]
            self.ys_cell = self.ys[self.cell_positions]
        else:
            self.cell_positions = None
            self.xs_cell = None
            self.ys_cell = None
        self._grid_epoch = engine.grid_epoch
        self._count = engine.num_tasks
        self._dead_cursor = len(log)


class CandidateEngine:
    """Array-based candidate generation for one instance.

    Parameters
    ----------
    instance:
        The LTC instance whose tasks are snapshotted.
    min_accuracy:
        Eligibility threshold on predicted accuracy; defaults to the
        instance's ``min_assignable_accuracy``.
    use_spatial_index:
        Build the CSR grid when the accuracy model is the sigmoid model.
        Disabling it forces the exhaustive scan (``scan`` mode).
    backend:
        A resolved :class:`~repro.core.candidate_engine.base.CandidateBackend`
        instance, a registered backend name, ``"auto"``, or ``None`` to
        defer to the ``REPRO_CANDIDATES_BACKEND`` environment variable /
        auto-detection.
    """

    def __init__(
        self,
        instance: LTCInstance,
        min_accuracy: Optional[float] = None,
        use_spatial_index: bool = True,
        backend=None,
    ) -> None:
        if isinstance(backend, CandidateBackend):
            resolved = backend
        else:
            from repro.core.candidate_engine import resolve_candidate_backend

            resolved = resolve_candidate_backend(backend)
        self.backend: CandidateBackend = resolved
        self.instance = instance
        self.model = instance.accuracy_model
        self.min_accuracy = (
            instance.min_assignable_accuracy if min_accuracy is None else min_accuracy
        )
        #: The pinned eligibility decision threshold (``accuracy >= threshold``).
        self.threshold = self.min_accuracy - ELIGIBILITY_EPS

        # --- struct-of-arrays snapshot, positions ascending by task id ----
        by_id = sorted(instance.tasks, key=lambda task: task.task_id)
        self.tasks: List[Task] = list(by_id)
        self.num_tasks = len(by_id)
        self.task_ids: List[int] = [task.task_id for task in by_id]
        self.xs: List[float] = [task.location.x for task in by_id]
        self.ys: List[float] = [task.location.y for task in by_id]
        self.position_of: Dict[int, int] = {
            task_id: position for position, task_id in enumerate(self.task_ids)
        }
        #: Positions in the instance's task-list order (the scan-mode pool);
        #: dynamically added tasks append in posting order.
        self.instance_positions: List[int] = [
            self.position_of[task.task_id] for task in instance.tasks
        ]

        # --- dynamic-snapshot state (see the module docstring) ------------
        #: Per-position liveness; ``False`` marks a retired (completed or
        #: expired) task that every query must skip.  Positions are never
        #: reused, so this is a write-once-per-position tombstone mask.
        self.alive: List[bool] = [True] * self.num_tasks
        #: How many positions are tombstoned.  ``0`` lets hot loops skip
        #: the per-position liveness check entirely.
        self.dead_count = 0
        #: Bumps on every mutation (append or retirement).  Callers that
        #: cache derived per-snapshot state key it on this counter.
        self.epoch = 0
        #: Bumps whenever the CSR grid is rebuilt; the numpy mirrors
        #: refresh wholesale when it changes.
        self.grid_epoch = 0
        #: How many grid rebuilds have run (diagnostics / benchmarks).
        self.rebuild_count = 0
        #: True while position order equals ascending-task-id order (the
        #: construction sort guarantees it; an out-of-order append clears
        #: it and ordered queries switch to sorting by id key).
        self.positions_id_ordered = True
        #: Positions retired since the last grid rebuild, in retirement
        #: order — the numpy mirrors replay this log via a cursor.
        self._tombstone_log: List[int] = []
        #: First position not covered by the CSR cells (grid mode):
        #: positions in ``[spill_start, num_tasks)`` are the spill that
        #: queries scan linearly until the next rebuild merges them.
        self.spill_start = self.num_tasks

        self.sigmoid = isinstance(self.model, SigmoidDistanceAccuracy)
        self.d_max = self.model.d_max if self.sigmoid else 0.0

        # --- CSR grid (grid mode only) ------------------------------------
        self.cell_size = 0.0
        self.grid_min_x = 0.0
        self.grid_min_y = 0.0
        self.cols = 0
        self.rows = 0
        self.cell_start: Optional[List[int]] = None
        self.cell_positions: Optional[List[int]] = None
        if self.sigmoid and use_spatial_index:
            self.mode = "grid"
            self._build_csr_grid()
        elif self.sigmoid:
            self.mode = "scan"
        else:
            self.mode = "generic"

        self._mirrors: Optional[_NumpyMirrors] = None

    # ------------------------------------------------------------ CSR grid

    def _build_csr_grid(self) -> None:
        """Pack the alive snapshot into row-major cells with CSR offsets.

        Cell geometry mirrors the pre-engine dict grid: the alive tasks'
        bounding box expanded by one eligibility radius, square cells of
        side ``max(d_max, 1)`` — except that the cell side grows when the
        extent would need more than ``_MAX_CELLS_PER_TASK`` cells per
        alive task (a pure space/perf knob; the exact distance filter
        decides membership either way).  Tombstoned positions are left
        out of the cells entirely, and the spill watermark advances: the
        freshly built grid covers every current position.
        """
        alive_positions = [
            position for position in range(self.num_tasks) if self.alive[position]
        ]
        self.spill_start = self.num_tasks
        self._tombstone_log.clear()
        self.grid_epoch += 1
        if not alive_positions:
            # Every task is retired: a degenerate 1-cell empty grid keeps
            # the query paths uniform (they gather nothing).
            self.cell_size = 1.0
            self.grid_min_x = 0.0
            self.grid_min_y = 0.0
            self.cols = 1
            self.rows = 1
            self.cell_start = [0, 0]
            self.cell_positions = []
            return
        bounds = BoundingBox.from_points(
            self.tasks[position].location for position in alive_positions
        )
        bounds = bounds.expanded(max(self.d_max, 1.0))
        cell = max(self.d_max, 1.0)
        cols = max(1, int(math.ceil(bounds.width / cell)))
        rows = max(1, int(math.ceil(bounds.height / cell)))
        max_cells = max(16, _MAX_CELLS_PER_TASK * len(alive_positions))
        while cols * rows > max_cells:
            cell *= 2.0
            cols = max(1, int(math.ceil(bounds.width / cell)))
            rows = max(1, int(math.ceil(bounds.height / cell)))
        self.cell_size = cell
        self.grid_min_x = bounds.min_x
        self.grid_min_y = bounds.min_y
        self.cols = cols
        self.rows = rows

        num_cells = cols * rows
        cell_of: List[int] = []
        counts = [0] * num_cells
        for position in alive_positions:
            col = int((self.xs[position] - bounds.min_x) // cell)
            row = int((self.ys[position] - bounds.min_y) // cell)
            col = min(max(col, 0), cols - 1)
            row = min(max(row, 0), rows - 1)
            index = row * cols + col
            cell_of.append(index)
            counts[index] += 1

        start = [0] * (num_cells + 1)
        for index in range(num_cells):
            start[index + 1] = start[index] + counts[index]
        cursor = list(start[:num_cells])
        order = [0] * len(alive_positions)
        # Alive positions are visited ascending, so each cell's slice is
        # itself ascending by position.
        for position, index in zip(alive_positions, cell_of):
            order[cursor[index]] = position
            cursor[index] += 1
        self.cell_start = start
        self.cell_positions = order

    # -------------------------------------------------- dynamic snapshot

    def add_tasks(self, tasks: Sequence[Task]) -> None:
        """Append newly posted tasks to the live snapshot.

        Appended tasks take the next free positions — existing positions
        are never moved, so per-position caller state stays valid (grow
        it with :meth:`grow_bool_array` / :meth:`grow_float_array`).  In
        grid mode the new positions land in the spill range, which every
        query scans alongside the CSR cells; once the spill crosses the
        rebuild threshold the grid is rebuilt over the alive snapshot.

        Raises
        ------
        ValueError
            If a task id is already in the snapshot (alive or retired —
            positions are never reused, so ids cannot be either).
        """
        if not tasks:
            return
        position_of = self.position_of
        fresh = set()
        for task in tasks:
            if task.task_id in position_of or task.task_id in fresh:
                raise ValueError(
                    f"task id {task.task_id} is already in the snapshot"
                )
            fresh.add(task.task_id)
        for task in tasks:
            position = self.num_tasks
            task_id = task.task_id
            if self.task_ids and task_id < self.task_ids[-1]:
                self.positions_id_ordered = False
            self.tasks.append(task)
            self.task_ids.append(task_id)
            self.xs.append(task.location.x)
            self.ys.append(task.location.y)
            self.alive.append(True)
            position_of[task_id] = position
            self.instance_positions.append(position)
            self.num_tasks = position + 1
        self.epoch += 1
        if self.mode == "grid":
            spill = self.num_tasks - self.spill_start
            threshold = max(
                SPILL_REBUILD_MIN,
                min(
                    int(SPILL_REBUILD_FRACTION * self.spill_start),
                    SPILL_REBUILD_MAX,
                ),
            )
            if spill > threshold:
                self.rebuild_index()

    def retire_tasks(self, task_ids: Iterable[int]) -> None:
        """Tombstone tasks (completed or expired) without rebuilding.

        Retired positions stay in the arrays (so caller state keeps its
        indexing) but are filtered out of every backend's candidate pool
        before the accuracy evaluation.  Retiring an already-retired task
        is a no-op; retirement is permanent.

        Raises
        ------
        KeyError
            If a task id was never part of the snapshot.
        """
        position_of = self.position_of
        alive = self.alive
        changed = False
        for task_id in task_ids:
            position = position_of.get(task_id)
            if position is None:
                raise KeyError(f"task id {task_id} is not in the snapshot")
            if alive[position]:
                alive[position] = False
                self.dead_count += 1
                self._tombstone_log.append(position)
                changed = True
        if changed:
            self.epoch += 1

    def rebuild_index(self) -> None:
        """Rebuild the CSR grid over the alive snapshot (grid mode only).

        Merges the spill range into the cells and sweeps tombstoned
        positions out of them; positions themselves do not move.  Called
        automatically by :meth:`add_tasks` at the spill threshold, and
        callable directly (e.g. after mass expiry) — a no-op for scan and
        generic engines, which have no spatial index to refresh.
        """
        if self.mode != "grid":
            return
        self.rebuild_count += 1
        self.epoch += 1
        self._build_csr_grid()

    def sort_positions(self, positions: List[int]) -> None:
        """In-place sort into the oracle output order (ascending task id).

        While ids were appended monotonically this is the plain position
        sort; after an out-of-order append it sorts by id key instead.
        """
        if self.positions_id_ordered:
            positions.sort()
        else:
            positions.sort(key=self.task_ids.__getitem__)

    def cell_span(self, wx: float, wy: float, radius: float) -> Tuple[int, int, int, int]:
        """Clamped inclusive cell range ``(col0, col1, row0, row1)`` covering
        the query disk.  An infinite radius (``min_accuracy <= 0``) covers
        the whole grid — the regression the dict grid used to overflow on.
        """
        if math.isinf(radius):
            return 0, self.cols - 1, 0, self.rows - 1
        cell = self.cell_size
        col0 = int((wx - radius - self.grid_min_x) // cell)
        col1 = int((wx + radius - self.grid_min_x) // cell)
        row0 = int((wy - radius - self.grid_min_y) // cell)
        row1 = int((wy + radius - self.grid_min_y) // cell)
        col0 = min(max(col0, 0), self.cols - 1)
        col1 = min(max(col1, 0), self.cols - 1)
        row0 = min(max(row0, 0), self.rows - 1)
        row1 = min(max(row1, 0), self.rows - 1)
        return col0, col1, row0, row1

    def grid_block_positions(self, wx: float, wy: float, radius: float) -> List[int]:
        """Scalar radius gather: alive positions with ``dx*dx + dy*dy <= radius**2``.

        The association order of the squared-distance expression is pinned
        (it matches both the dict grid's ``Point.squared_distance_to`` and
        the vectorized backend's elementwise arithmetic), so every backend
        produces this exact set.  Gathers the CSR cells first, then the
        spill range of positions appended since the last grid rebuild;
        tombstoned positions are skipped in both.
        """
        assert self.cell_start is not None and self.cell_positions is not None
        col0, col1, row0, row1 = self.cell_span(wx, wy, radius)
        r2 = radius * radius
        xs, ys = self.xs, self.ys
        alive = self.alive
        has_dead = self.dead_count > 0
        start, order = self.cell_start, self.cell_positions
        out: List[int] = []
        for row in range(row0, row1 + 1):
            base = row * self.cols
            for position in order[start[base + col0] : start[base + col1 + 1]]:
                if has_dead and not alive[position]:
                    continue
                dx = xs[position] - wx
                dy = ys[position] - wy
                if dx * dx + dy * dy <= r2:
                    out.append(position)
        for position in range(self.spill_start, self.num_tasks):
            if has_dead and not alive[position]:
                continue
            dx = xs[position] - wx
            dy = ys[position] - wy
            if dx * dx + dy * dy <= r2:
                out.append(position)
        return out

    def numpy_mirrors(self, np) -> _NumpyMirrors:
        """Numpy views of the arrays (lazily built, incrementally synced)."""
        if self._mirrors is None:
            self._mirrors = _NumpyMirrors(np, self)
        else:
            self._mirrors.sync(self)
        return self._mirrors

    def snapshot_arrays(self) -> Dict[str, Sequence]:
        """The struct-of-arrays task snapshot, in position order.

        Returns ``{"task_ids", "xs", "ys", "alive", "instance_positions"}``
        — the flat parallel arrays the engine queries run over (numpy
        arrays when numpy is importable, the plain list storage
        otherwise).  This is the canonical export surface for shipping a
        task snapshot across a process boundary: the shared-memory layer
        (:mod:`repro.service.sharding.shm`) packs exactly these columns
        (gathered back into instance order via ``instance_positions``)
        into one block, so a worker process rebuilds the same snapshot
        without pickling ``Task`` objects.  The returned arrays are
        snapshots of the current epoch; mutating the engine afterwards
        does not grow them.
        """
        try:
            import numpy as np
        except ImportError:
            return {
                "task_ids": list(self.task_ids),
                "xs": list(self.xs),
                "ys": list(self.ys),
                "alive": list(self.alive),
                "instance_positions": list(self.instance_positions),
            }
        mirrors = self.numpy_mirrors(np)
        return {
            "task_ids": mirrors.task_ids.copy(),
            "xs": mirrors.xs.copy(),
            "ys": mirrors.ys.copy(),
            "alive": mirrors.alive.copy(),
            "instance_positions": mirrors.instance_positions.copy(),
        }

    # ------------------------------------------------- scalar float oracle

    def radius_of(self, worker: Worker) -> float:
        """The worker's eligibility radius (grid/scan modes only).

        Negative when no task can ever reach the threshold; ``math.inf``
        when every distance qualifies (``min_accuracy <= 0``).
        """
        return sigmoid_eligibility_radius(
            worker.accuracy, self.d_max, self.min_accuracy
        )

    def scalar_accuracy(self, worker: Worker, position: int) -> float:
        """``Acc(w, t)`` for a snapshot position, bit-identical to the model.

        Replicates :meth:`SigmoidDistanceAccuracy.accuracy` expression by
        expression over the flat arrays (``math.hypot`` of the coordinate
        deltas, the same saturation guard) for sigmoid engines; any other
        model is called directly.
        """
        if self.sigmoid:
            distance = math.hypot(self.xs[position] - worker.location.x,
                                  self.ys[position] - worker.location.y)
            exponent = -(self.d_max - distance)
            if exponent > 700.0:
                return 0.0
            return worker.accuracy / (1.0 + math.exp(exponent))
        return self.model.accuracy(worker, self.tasks[position])

    def scalar_acc_star(self, worker: Worker, position: int) -> float:
        """``Acc*(w, t)`` for a snapshot position (scalar association order)."""
        weight = 2.0 * self.scalar_accuracy(worker, position) - 1.0
        return weight * weight

    def scalar_eligible(self, worker: Worker, position: int) -> bool:
        """The pinned eligibility decision for one pair."""
        return self.scalar_accuracy(worker, position) >= self.threshold

    # ------------------------------------------------------------- queries

    def eligible_positions(
        self,
        worker: Worker,
        allowed: Optional[Sequence[bool]] = None,
        ordered: bool = True,
    ) -> Sequence[int]:
        """Task positions assignable to ``worker`` (see the backend contract)."""
        return self.backend.eligible_positions(self, worker, allowed, ordered)

    def eligible_tasks(
        self, worker: Worker, allowed_ids: Optional[AbstractSet[int]] = None
    ) -> List[Task]:
        """Assignable :class:`Task` objects in the oracle iteration order.

        ``allowed_ids`` restricts by task id.  The restriction is turned
        into a position mask and pushed into the backend, so it filters
        *before* the accuracy evaluation — callers pay nothing for tasks
        they would discard anyway.  Mask construction allocates O(tasks)
        per call; callers iterating many workers against one restriction
        set should use :meth:`eligible_pairs`, which builds the mask once
        for the whole batch.
        """
        tasks = self.tasks
        if allowed_ids is not None and not allowed_ids:
            return []
        mask = None if allowed_ids is None else self.make_allowed_mask(allowed_ids)
        positions = _as_position_list(
            self.backend.eligible_positions(self, worker, mask, True)
        )
        return [tasks[position] for position in positions]

    def eligible_pairs(
        self,
        workers: Iterable[Worker],
        allowed_ids: Optional[AbstractSet[int]] = None,
    ) -> Iterator[Tuple[Worker, Task]]:
        """Bulk-iterate assignable pairs, grouped by worker, ids ascending.

        The restriction set is converted to a per-position mask **once**
        and pushed into the backend, so vectorized backends filter it
        inside their array pass instead of per pair.
        """
        if allowed_ids is not None and not allowed_ids:
            return
        mask = None if allowed_ids is None else self.make_allowed_mask(allowed_ids)
        tasks = self.tasks
        for worker in workers:
            positions = _as_position_list(
                self.backend.eligible_positions(self, worker, mask, True)
            )
            for position in positions:
                yield worker, tasks[position]

    def has_candidates(self, worker: Worker) -> bool:
        """Whether at least one task is assignable to the worker."""
        return self.backend.has_candidates(self, worker)

    def topk(
        self,
        worker: Worker,
        k: int,
        mode: str = "acc_star",
        completed: Optional[Sequence[bool]] = None,
        need: Optional[Sequence[float]] = None,
    ) -> List[Task]:
        """The worker's best-``k`` assignable tasks, in assignment order."""
        return [
            self.tasks[position]
            for position in self.backend.topk(self, worker, k, mode, completed, need)
        ]

    def topk_acc_star(
        self, worker: Worker, k: int, completed: Optional[Sequence[bool]] = None
    ) -> List[Task]:
        """LAF's selection: the ``k`` uncompleted tasks of largest ``Acc*``."""
        return self.topk(worker, k, "acc_star", completed)

    def candidate_counts(self) -> Dict[int, int]:
        """Eligible-worker counts per task id (posting order).

        Iterates the snapshot's own posting order (the base instance's
        task order followed by dynamically added tasks), so tasks added
        after construction are counted too; retired tasks count 0.
        """
        counts = self.backend.count_eligible(self)
        task_ids = self.task_ids
        return {
            task_ids[position]: int(counts[position])
            for position in self.instance_positions
        }

    # --------------------------------------------------- state containers

    def bool_array(self) -> Sequence[bool]:
        """A per-position ``False`` flag container in the backend's format."""
        return self.backend.bool_array(self.num_tasks)

    def float_array(self, fill: float) -> Sequence[float]:
        """A per-position float container in the backend's format."""
        return self.backend.float_array(self.num_tasks, fill)

    def grow_bool_array(self, array: Sequence[bool]) -> Sequence[bool]:
        """``array`` extended with ``False`` up to the current ``num_tasks``.

        The companion of :meth:`add_tasks` for callers holding
        per-position flag state: existing entries keep their positions
        (the append-only invariant), new positions start ``False``.
        """
        return self.backend.grow_bool_array(array, self.num_tasks)

    def grow_float_array(
        self, array: Sequence[float], fill: float
    ) -> Sequence[float]:
        """``array`` extended with ``fill`` up to the current ``num_tasks``."""
        return self.backend.grow_float_array(array, self.num_tasks, fill)

    def make_allowed_mask(
        self, allowed_ids: AbstractSet[int]
    ) -> Sequence[bool]:
        """A per-position mask for an id restriction set (unknown ids ignored)."""
        mask = self.backend.bool_array(self.num_tasks)
        position_of = self.position_of
        for task_id in allowed_ids:
            position = position_of.get(task_id)
            if position is not None:
                mask[position] = True
        return mask
