"""Differential property tests for the candidate engine.

Random instances — clustered and scattered tasks, workers inside and far
outside the task bounding box, sigmoid and constant accuracy models, grid
and no-grid configurations, degenerate thresholds — are queried three
ways:

* the pre-refactor object-level scan
  (:class:`repro.core.candidates_legacy.LegacyCandidateFinder`),
* the engine's scalar ``python`` backend, and
* the engine's vectorized ``numpy`` backend (when numpy is installed).

Every query (candidate lists, ``has_candidates``, restricted
``eligible_pairs`` streams, per-task counts) must agree exactly, ordering
included.  On top of the query layer, whole solver runs are compared:
MCF-LTC / LAF / AAM (+ ablations) arrangements must be byte-identical
across candidate backends, and LAF/AAM must be byte-identical to replicas
of their pre-engine observe loops.  Worker accuracies are full-precision
PRNG floats, so threshold-boundary ties have measure zero and exact
agreement is the right bar.
"""

import contextlib
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.aam import AAMSolver
from repro.algorithms.laf import LAFSolver
from repro.algorithms.registry import build_solver
from repro.core.accuracy import ConstantAccuracy, SigmoidDistanceAccuracy
from repro.core.candidate_engine import NumpyCandidateBackend
from repro.core.candidates import CandidateFinder
from repro.core.candidates_legacy import (
    LegacyCandidateFinder,
    legacy_aam_arrangement,
    legacy_laf_arrangement,
)
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point

NUMPY_AVAILABLE = NumpyCandidateBackend().is_available()

BACKENDS = ["python"] + (["numpy"] if NUMPY_AVAILABLE else [])


@contextlib.contextmanager
def forced_vector_path():
    """Drop the numpy backend's adaptive cutover to 1 for the duration.

    The random instances here are small enough that every query would
    otherwise take the scalar-delegation path, leaving the vectorized
    gather/filter/top-k code unexercised (the flow suite patches its
    VECTOR_MIN_ROW for the same reason).
    """
    from repro.core.candidate_engine import numpy_backend as nb

    previous = nb.VECTOR_MIN_BLOCK
    nb.VECTOR_MIN_BLOCK = 1
    try:
        yield
    finally:
        nb.VECTOR_MIN_BLOCK = previous


#: Both adaptive regimes: the default (scalar delegation on small blocks)
#: and the forced vector path.
CUTOVER_REGIMES = (contextlib.nullcontext, forced_vector_path)

ONLINE_SPECS = ["LAF", "AAM", "LGF-only", "LRF-only", "Random?seed=3"]
ALL_SPECS = ONLINE_SPECS + ["MCF-LTC", "Base-off"]


@st.composite
def ltc_instances(draw):
    """A random LTC instance stressing the candidate layer's edge cases."""
    rng = draw(st.randoms(use_true_random=False))
    num_tasks = draw(st.integers(min_value=1, max_value=28))
    num_workers = draw(st.integers(min_value=1, max_value=24))
    d_max = draw(st.sampled_from([3.0, 10.0, 30.0]))
    box = draw(st.sampled_from([40.0, 120.0, 400.0]))
    # A few duplicate/cluster locations plus scattered ones.
    cluster_x, cluster_y = rng.uniform(0, box), rng.uniform(0, box)
    tasks = []
    task_ids = rng.sample(range(1000), num_tasks)
    if draw(st.booleans()):
        task_ids.sort()  # both sorted and shuffled id layouts
    for task_id in task_ids:
        if rng.random() < 0.3:
            location = Point(cluster_x + rng.uniform(-2, 2),
                             cluster_y + rng.uniform(-2, 2))
        else:
            location = Point(rng.uniform(0, box), rng.uniform(0, box))
        tasks.append(Task(task_id=task_id, location=location))
    workers = []
    for index in range(1, num_workers + 1):
        if rng.random() < 0.25:
            # Far outside the task bounding box (clamped border cells).
            location = Point(rng.uniform(-3 * box, 4 * box),
                             rng.uniform(-3 * box, 4 * box))
        else:
            location = Point(rng.uniform(0, box), rng.uniform(0, box))
        workers.append(
            Worker(
                index=index,
                location=location,
                accuracy=rng.uniform(0.66, 1.0),
                capacity=rng.randint(1, 5),
            )
        )
    if draw(st.booleans()):
        model = SigmoidDistanceAccuracy(d_max=d_max)
    else:
        model = ConstantAccuracy(rng.uniform(0.5, 1.0))
    return LTCInstance(
        tasks=tasks,
        workers=workers,
        error_rate=draw(st.sampled_from([0.14, 0.2, 0.3])),
        accuracy_model=model,
    )


class TestQueryDifferential:
    @given(
        instance=ltc_instances(),
        use_spatial_index=st.booleans(),
        min_accuracy=st.sampled_from([None, 0.0, 0.8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_backends_match_the_legacy_scan(
        self, instance, use_spatial_index, min_accuracy
    ):
        legacy = LegacyCandidateFinder(
            instance, min_accuracy=min_accuracy, use_spatial_index=use_spatial_index
        )
        finders = [
            CandidateFinder(
                instance,
                min_accuracy=min_accuracy,
                use_spatial_index=use_spatial_index,
                backend=backend,
            )
            for backend in BACKENDS
        ]
        some_ids = {task.task_id for task in instance.tasks[::2]}
        for regime in CUTOVER_REGIMES:
            with regime():
                for worker in instance.workers:
                    expected = [t.task_id for t in legacy.candidates(worker)]
                    for finder in finders:
                        got = [t.task_id for t in finder.candidates(worker)]
                        assert got == expected, finder.backend_name
                        assert finder.has_candidates(worker) == bool(expected)
                        restricted = [
                            t.task_id
                            for t in finder.iter_candidates(worker, some_ids)
                        ]
                        assert restricted == [
                            t.task_id
                            for t in legacy.iter_candidates(worker, some_ids)
                        ]
                        assert list(finder.iter_candidates(worker, set())) == []
                for finder in finders:
                    assert (
                        finder.candidate_count_per_task()
                        == legacy.candidate_count_per_task()
                    )
                    for restriction in (None, some_ids, set()):
                        expected_pairs = [
                            (w.index, t.task_id)
                            for w, t in legacy.eligible_pairs(
                                instance.workers, restriction
                            )
                        ]
                        got_pairs = [
                            (w.index, t.task_id)
                            for w, t in finder.eligible_pairs(
                                instance.workers, restriction
                            )
                        ]
                        assert got_pairs == expected_pairs, finder.backend_name


class TestArrangementEquality:
    @given(instance=ltc_instances())
    @settings(max_examples=15, deadline=None)
    def test_solvers_agree_across_candidate_backends(self, instance):
        if len(BACKENDS) < 2:
            pytest.skip("only one candidate backend available")
        for spec in ALL_SPECS:
            results = {}
            for backend in BACKENDS:
                solver = build_solver(
                    spec + ("&" if "?" in spec else "?") + f"candidates={backend}"
                )
                results[backend] = solver.solve(instance).arrangement.assignments
            baseline = results[BACKENDS[0]]
            for backend in BACKENDS[1:]:
                assert results[backend] == baseline, spec

    @given(instance=ltc_instances())
    @settings(max_examples=15, deadline=None)
    def test_laf_and_aam_match_their_pre_engine_loops(self, instance):
        for regime in CUTOVER_REGIMES:
            with regime():
                for backend in BACKENDS:
                    laf = LAFSolver(candidates=backend).solve(instance)
                    assert laf.arrangement.assignments == legacy_laf_arrangement(
                        instance
                    ).assignments, backend
                    aam = AAMSolver(candidates=backend).solve(instance)
                    assert aam.arrangement.assignments == legacy_aam_arrangement(
                        instance
                    ).assignments, backend

    def test_mcf_ltc_identical_across_backends_on_synthetic(
        self, small_synthetic_instance
    ):
        results = {
            backend: build_solver(f"MCF-LTC?candidates={backend}")
            .solve(small_synthetic_instance)
            .arrangement.assignments
            for backend in BACKENDS
        }
        baseline = results[BACKENDS[0]]
        assert all(assignments == baseline for assignments in results.values())


class TestAAMIncrementalStats:
    """The satellite fix: AAM's ``avg``/``maxRemain`` are maintained
    incrementally and must track the naive O(T) recomputation."""

    @staticmethod
    def _naive_stats(instance, arrangement):
        remaining = [
            arrangement.remaining_of(task.task_id)
            for task in instance.tasks
            if not arrangement.is_task_complete(task.task_id)
        ]
        if not remaining:
            return None
        return sum(remaining), max(remaining)

    @given(instance=ltc_instances())
    @settings(max_examples=20, deadline=None)
    def test_incremental_sum_and_max_track_naive_scan(self, instance):
        solver = AAMSolver(candidates="python")
        solver.start(instance)
        for worker in instance.workers:
            naive = self._naive_stats(instance, solver.arrangement)
            if naive is None:
                assert solver._uncompleted_count == 0
                assert solver.observe(worker) == []
                continue
            naive_sum, naive_max = naive
            assert solver._uncompleted_count > 0
            # The max is the same float the naive scan finds; the running
            # sum is compensated but may differ from the left-to-right
            # naive sum in accumulated ulps.
            assert solver._current_max_remaining() == naive_max
            assert solver._remaining_sum == pytest.approx(
                naive_sum, rel=1e-12, abs=1e-12
            )
            solver.observe(worker)

    def test_knife_edge_decision_matches_legacy(self):
        """When avg lands exactly on maxRemain the switch must still take
        the legacy branch: the incremental sum is bypassed inside the
        resolution band and the naive left-to-right sum decides."""
        # |T| == K makes avg == delta == maxRemain at the first arrival.
        tasks = [Task(task_id=i, location=Point(float(i), 0.0)) for i in range(3)]
        workers = [
            Worker(index=i, location=Point(1.0, 0.0), accuracy=0.95, capacity=3)
            for i in range(1, 40)
        ]
        instance = LTCInstance(tasks=tasks, workers=workers, error_rate=0.2)
        for backend in BACKENDS:
            solver = AAMSolver(candidates=backend)
            result = solver.solve(instance)
            legacy = legacy_aam_arrangement(instance)
            assert result.arrangement.assignments == legacy.assignments
        # avg == maxRemain takes the LGF branch (>=), as in the paper.
        solver = AAMSolver(candidates="python")
        solver.start(instance)
        solver.observe(instance.worker(1))
        assert solver.diagnostics()["lgf_rounds"] == 1.0
        assert solver.diagnostics()["lrf_rounds"] == 0.0

    def test_incremental_stats_on_synthetic_run(self, small_synthetic_instance):
        instance = small_synthetic_instance
        solver = AAMSolver()
        solver.start(instance)
        for worker in instance.workers:
            if solver._uncompleted_count == 0:
                break
            naive_sum, naive_max = self._naive_stats(instance, solver.arrangement)
            assert solver._current_max_remaining() == naive_max
            assert solver._remaining_sum == pytest.approx(naive_sum, rel=1e-12)
            solver.observe(worker)
        assert solver.arrangement.is_complete()


class TestDegenerateGeometry:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_tasks_at_one_point(self, backend):
        tasks = [Task(task_id=i, location=Point(5.0, 5.0)) for i in range(6)]
        workers = [Worker(index=1, location=Point(5.0, 5.0), accuracy=0.9,
                          capacity=2)]
        instance = LTCInstance(tasks=tasks, workers=workers, error_rate=0.2)
        finder = CandidateFinder(instance, backend=backend)
        legacy = LegacyCandidateFinder(instance)
        assert [t.task_id for t in finder.candidates(instance.worker(1))] == [
            t.task_id for t in legacy.candidates(instance.worker(1))
        ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worker_far_outside_every_cell(self, backend):
        tasks = [Task(task_id=i, location=Point(float(i), 0.0)) for i in range(4)]
        workers = [Worker(index=1, location=Point(1e6, -1e6), accuracy=0.99,
                          capacity=2)]
        instance = LTCInstance(tasks=tasks, workers=workers, error_rate=0.2)
        finder = CandidateFinder(instance, backend=backend)
        assert finder.candidates(instance.worker(1)) == []
        assert not finder.has_candidates(instance.worker(1))
