"""Successive Shortest Path Algorithm (SSPA) — label-level compatibility API.

The paper solves each MCF-LTC batch with SSPA because it copes with
real-valued arc costs and many-to-many matchings (Sec. III).  The actual
algorithm now lives in :mod:`repro.flow.kernel` and runs over the flat arc
arena; this module keeps the historical entry points working for callers
that build a :class:`~repro.flow.network.FlowNetwork` of hashable labels:

1. :func:`successive_shortest_paths` resolves the labelled source/sink to
   arena node ids and dispatches to :func:`repro.flow.kernel.solve_mcf`
   (Bellman-Ford initial potentials — label-level callers provide general
   graphs — then Dijkstra with warm Johnson potentials per augmentation).
2. The kernel's arc flows are folded back into a :class:`FlowResult` keyed
   by ``(tail, head)`` labels, aggregating parallel edges.

Because every augmenting path the kernel finds is a minimum-cost path, the
resulting flow is a minimum-cost flow for the amount routed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple

from repro.flow.kernel import solve_mcf
from repro.flow.network import FlowNetwork

Node = Hashable


@dataclass(slots=True)
class FlowResult:
    """Outcome of a min-cost-flow computation.

    Attributes
    ----------
    flow_value:
        Total units of flow routed from source to sink.
    total_cost:
        Sum of ``cost * flow`` over the forward edges.
    edge_flows:
        Mapping from ``(tail, head)`` to the flow routed on that forward
        edge.  Parallel edges are aggregated.
    augmentations:
        Number of augmenting paths used (useful for complexity diagnostics).
    """

    flow_value: int
    total_cost: float
    edge_flows: Dict[Tuple[Node, Node], int] = field(default_factory=dict)
    augmentations: int = 0

    def flow_on(self, tail: Node, head: Node) -> int:
        """Flow routed on the edge ``tail -> head`` (0 when absent)."""
        return self.edge_flows.get((tail, head), 0)


def successive_shortest_paths(
    network: FlowNetwork,
    source: Node,
    sink: Node,
    max_flow: Optional[int] = None,
    require_max_flow: bool = False,
) -> FlowResult:
    """Compute a minimum-cost flow from ``source`` to ``sink``.

    Parameters
    ----------
    network:
        The flow network.  Flow already present on the edges is kept and the
        computation continues from it.
    source, sink:
        Endpoints of the flow.
    max_flow:
        Route at most this many units.  ``None`` routes as much flow as the
        network allows (a min-cost max-flow).
    require_max_flow:
        When true and ``max_flow`` is given, raise
        :class:`~repro.flow.exceptions.InfeasibleFlowError` if fewer units
        can be routed.

    Returns
    -------
    FlowResult
        The amount routed, its total cost and the per-edge flows.
    """
    if source not in network or sink not in network:
        raise ValueError("source and sink must be nodes of the network")
    if max_flow is not None and max_flow < 0:
        raise ValueError("max_flow must be non-negative")

    arena = network.arena
    if network.node_id(source) == network.node_id(sink):
        raise ValueError("source and sink must differ")
    result = solve_mcf(
        arena,
        network.node_id(source),
        network.node_id(sink),
        max_flow=max_flow,
        require_max_flow=require_max_flow,
    )

    head, flow = arena.head, arena.flow
    edge_flows: Dict[Tuple[Node, Node], int] = {}
    label_of = network.label_of
    for arc in range(0, len(flow), 2):
        units = flow[arc]
        if units > 0:
            key = (label_of(head[arc ^ 1]), label_of(head[arc]))
            edge_flows[key] = edge_flows.get(key, 0) + units

    return FlowResult(
        flow_value=result.flow_value,
        total_cost=result.total_cost,
        edge_flows=edge_flows,
        augmentations=result.augmentations,
    )


def min_cost_flow(
    network: FlowNetwork, source: Node, sink: Node, amount: int
) -> FlowResult:
    """Route exactly ``amount`` units at minimum cost or raise.

    Convenience wrapper over :func:`successive_shortest_paths` with
    ``require_max_flow=True``.
    """
    return successive_shortest_paths(
        network, source, sink, max_flow=amount, require_max_flow=True
    )
