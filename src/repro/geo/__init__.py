"""Spatial substrate for the LTC reproduction.

This package provides the small amount of computational geometry the paper
relies on: 2-D points with Euclidean distance, axis-aligned bounding boxes,
convex hulls (used to constrain task locations to the region covered by
worker check-ins, as in the paper's real-data setup) and a uniform grid
spatial index used by the ``Base-off`` / ``Random`` baselines to find tasks
"nearby" a worker and by the data generators.
"""

from repro.geo.point import Point
from repro.geo.distance import euclidean, manhattan, squared_euclidean
from repro.geo.bbox import BoundingBox
from repro.geo.hull import convex_hull, point_in_convex_polygon
from repro.geo.grid_index import GridIndex

__all__ = [
    "Point",
    "euclidean",
    "manhattan",
    "squared_euclidean",
    "BoundingBox",
    "convex_hull",
    "point_in_convex_polygon",
    "GridIndex",
]
