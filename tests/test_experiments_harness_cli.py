"""Tests for the experiment harness and its command-line interface.

These run real (but drastically scaled-down) experiments, so they are the
slowest tests in the suite; they double as integration tests of datagen +
algorithms + simulation + reporting.
"""

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.harness import run_experiment
from repro.experiments.paper_reference import PAPER_EXPECTATIONS
from repro.experiments.report import render_table


TINY = dict(scale=0.004, repetitions=1, track_memory=False)


class TestRunExperiment:
    def test_fig3_tasks_produces_full_table(self):
        table = run_experiment("fig3_tasks", sweep_values=[1000, 3000],
                               algorithms=["LAF", "AAM", "Random"], **TINY)
        assert len(table) == 2 * 3
        assert table.completion_rate() == 1.0
        text = render_table(table)
        assert "LAF" in text and "AAM" in text

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig9_unknown")

    def test_ablation_batch_size_overrides_solver(self):
        table = run_experiment("ablation_batch_size", sweep_values=[0.5, 2.0], **TINY)
        assert set(table.algorithms()) == {"MCF-LTC"}
        batch_sizes = {
            record.sweep_value: record.extra.get("batch_size")
            for record in table.records
        }
        assert batch_sizes[0.5] < batch_sizes[2.0]

    def test_ablation_sweep_survives_explicit_algorithms(self):
        # A requested bare name picks up the sweep's parameters, exactly as
        # the pre-spec harness override did.
        table = run_experiment("ablation_batch_size", sweep_values=[0.5, 2.0],
                               algorithms=["MCF-LTC"], **TINY)
        assert set(table.algorithms()) == {"MCF-LTC"}
        # Labels are stable regardless of how many sweep values a run covers,
        # so partial runs stay mergeable into one series.
        single = run_experiment("ablation_batch_size", sweep_values=[2.0], **TINY)
        assert set(single.algorithms()) == {"MCF-LTC"}
        batch_sizes = {
            record.sweep_value: record.extra["batch_size"]
            for record in table.records
        }
        assert batch_sizes[0.5] < batch_sizes[2.0]

    def test_explicit_parameters_override_the_ablation_sweep(self):
        table = run_experiment(
            "ablation_batch_size", sweep_values=[0.5, 2.0],
            algorithms=["MCF-LTC?batch_multiplier=1.0"], **TINY)
        batch_sizes = {
            record.extra["batch_size"] for record in table.records
        }
        assert len(batch_sizes) == 1  # pinned multiplier, no sweep
        # A pinned spec keeps its full label: the table must not show a bare
        # name next to a sweep column its parameters did not follow.
        assert set(table.algorithms()) == {"MCF-LTC?batch_multiplier=1.0"}

    def test_algorithms_accept_spec_strings(self):
        table = run_experiment(
            "fig3_tasks", sweep_values=[1000],
            algorithms=["LAF", "MCF-LTC?batch_multiplier=2.0"], **TINY)
        assert set(table.algorithms()) == {"LAF", "MCF-LTC?batch_multiplier=2.0"}
        batch_records = [
            record for record in table.records
            if record.algorithm.startswith("MCF-LTC")
        ]
        assert batch_records and all(
            record.extra["batch_size"] > 0 for record in batch_records
        )

    def test_checkin_experiment_runs(self):
        table = run_experiment("fig4_newyork", sweep_values=[0.22],
                               algorithms=["LAF", "Random"], **TINY)
        assert len(table) == 2
        assert table.completion_rate() == 1.0

    def test_expectations_exist_for_every_experiment(self):
        from repro.experiments.configs import list_experiments

        for experiment_id in list_experiments():
            assert experiment_id in PAPER_EXPECTATIONS


class TestCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig3_tasks", "--scale", "0.01"])
        assert args.experiment == "fig3_tasks"
        assert args.scale == 0.01
        assert not args.check

    def test_list_option_prints_experiments(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "fig3_tasks" in output
        assert "fig4_tokyo" in output

    def test_no_arguments_lists_experiments(self, capsys):
        assert main([]) == 0
        assert "fig3_capacity" in capsys.readouterr().out

    def test_running_an_experiment_prints_tables(self, capsys):
        exit_code = main([
            "fig3_tasks", "--scale", "0.004", "--repetitions", "1",
            "--algorithms", "LAF", "AAM", "--no-memory", "--quiet",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Max index of worker" in output
        assert "LAF" in output and "AAM" in output
