"""Shared-memory export of task snapshots for the process executor.

A shard worker process needs the tasks of every campaign it serves.  The
engine already keeps tasks as struct-of-arrays
(:meth:`repro.core.candidate_engine.CandidateEngine.snapshot_arrays`), so
instead of pickling ``Task`` objects per submit, the parent packs the
arrays into one :class:`multiprocessing.shared_memory.SharedMemory` block
and ships only the block *name*; the worker attaches numpy views and
materialises its own ``Task`` list zero-copy on the wire.

Layout of a block for ``n`` tasks, packed back to back::

    int64[n] task ids | float64[n] xs | float64[n] ys | int8[n] answers

Non-array fields (``description`` / ``metadata``) are rare in serving
workloads; tasks that carry them ride a small pickled *sidecar* keyed by
position, so exactness is preserved without widening the hot layout.

Graceful degradation: when numpy or ``multiprocessing.shared_memory`` is
unavailable (or the batch is empty) the handle carries the tasks inline
(plain pickle) — same API, no shared segment.  Ownership is explicit: the
**parent** keeps the returned :class:`ExportedTaskBlock` and must call
:meth:`ExportedTaskBlock.release` once the worker acknowledged the
submit; the **worker** attaches without registering the segment with its
own ``resource_tracker`` (the parent owns the lifecycle) and detaches as
soon as the tasks are materialised.  ``tests/test_service_shm.py`` pins
the no-leak contract by probing segment names after drain/stop/crash.
"""

from __future__ import annotations

import pickle
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.task import Task
from repro.geo.point import Point

try:  # pragma: no cover - exercised by monkeypatching in tests
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - wasm/emscripten builds
    _shared_memory = None  # type: ignore[assignment]

#: Bytes per task in the packed layout (8 id + 8 x + 8 y + 1 answer).
_BYTES_PER_TASK = 25


def shared_memory_available() -> bool:
    """Whether this platform can host shared-memory task snapshots."""
    if _shared_memory is None:
        return False
    return sys.platform not in ("emscripten", "wasi")


@dataclass(frozen=True)
class TaskSnapshotHandle:
    """A picklable reference to one exported task batch.

    ``mode == "shm"``: the batch lives in the named shared-memory block
    (``sidecar`` carries the pickled non-array fields, if any).
    ``mode == "inline"``: the tasks travel inside the handle itself (the
    pickle fallback).  Either way :func:`attach_tasks` rebuilds the exact
    ``Task`` sequence, in export order.
    """

    mode: str
    count: int
    shm_name: Optional[str] = None
    sidecar: Optional[bytes] = None
    tasks: Optional[Tuple[Task, ...]] = None


@dataclass
class ExportedTaskBlock:
    """Parent-side ownership of one shared-memory segment.

    ``release()`` closes and unlinks the segment; it is idempotent and
    safe to call while a worker still holds an attachment (POSIX
    semantics: the name disappears, existing maps stay valid) — but the
    protocol releases only after the worker's acknowledgement, so in
    practice the worker has already detached.
    """

    shm: object = None
    released: bool = field(default=False)

    @property
    def name(self) -> Optional[str]:
        return None if self.shm is None else self.shm.name

    def release(self) -> None:
        if self.released or self.shm is None:
            self.released = True
            return
        self.released = True
        try:
            self.shm.close()
        finally:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


def _sidecar_fields(tasks: Sequence[Task]) -> Optional[bytes]:
    """Pickle the non-default description/metadata fields, keyed by position."""
    extras: Dict[int, Tuple[str, dict]] = {}
    for position, task in enumerate(tasks):
        if task.description or task.metadata:
            extras[position] = (task.description, dict(task.metadata))
    if not extras:
        return None
    return pickle.dumps(extras, protocol=pickle.HIGHEST_PROTOCOL)


def export_tasks(tasks: Sequence[Task]) -> Tuple[TaskSnapshotHandle, Optional[ExportedTaskBlock]]:
    """Export a task batch for a worker process; preserves order exactly.

    Returns ``(handle, block)``.  ``block`` is ``None`` for the inline
    fallback (numpy or shared memory unavailable, or an empty batch);
    otherwise the caller owns it and must :meth:`~ExportedTaskBlock.release`
    it once the receiving worker has acknowledged the batch.
    """
    tasks = list(tasks)
    if not tasks or np is None or not shared_memory_available():
        return (
            TaskSnapshotHandle(mode="inline", count=len(tasks),
                               tasks=tuple(tasks)),
            None,
        )
    count = len(tasks)
    shm = _shared_memory.SharedMemory(create=True,
                                      size=count * _BYTES_PER_TASK)
    try:
        ids = np.ndarray((count,), dtype=np.int64, buffer=shm.buf, offset=0)
        xs = np.ndarray((count,), dtype=np.float64, buffer=shm.buf,
                        offset=8 * count)
        ys = np.ndarray((count,), dtype=np.float64, buffer=shm.buf,
                        offset=16 * count)
        answers = np.ndarray((count,), dtype=np.int8, buffer=shm.buf,
                             offset=24 * count)
        for position, task in enumerate(tasks):
            ids[position] = task.task_id
            xs[position] = task.location.x
            ys[position] = task.location.y
            answers[position] = task.true_answer
        handle = TaskSnapshotHandle(
            mode="shm",
            count=count,
            shm_name=shm.name,
            sidecar=_sidecar_fields(tasks),
        )
        # Drop the exporting views before handing the buffer over; a
        # lingering ndarray over shm.buf would block close() on Windows.
        del ids, xs, ys, answers
        return handle, ExportedTaskBlock(shm=shm)
    except BaseException:
        shm.close()
        shm.unlink()
        raise


def _attach(name: str):
    """Attach to a named segment without resource_tracker registration.

    The parent owns the segment's lifecycle; if the attaching process'
    tracker also registered it, cleanup would try to unlink it a second
    time (and, under ``fork`` — where parent and worker share one tracker
    process — an unregister here would delete the *parent's* registration
    out from under it).  Python 3.13 grew ``track=``; older versions
    suppress the registration call itself during the attach.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        from multiprocessing import resource_tracker

        registered = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = registered


def attach_tasks(handle: TaskSnapshotHandle) -> List[Task]:
    """Materialise the exported tasks in the worker; detaches immediately."""
    if handle.mode == "inline":
        return list(handle.tasks or ())
    if np is None or _shared_memory is None:  # pragma: no cover - guarded
        raise RuntimeError(
            "received a shared-memory task handle but numpy/shared_memory "
            "is unavailable in this process"
        )
    extras: Dict[int, Tuple[str, dict]] = {}
    if handle.sidecar is not None:
        extras = pickle.loads(handle.sidecar)
    count = handle.count
    shm = _attach(handle.shm_name)
    try:
        ids = np.ndarray((count,), dtype=np.int64, buffer=shm.buf, offset=0)
        xs = np.ndarray((count,), dtype=np.float64, buffer=shm.buf,
                        offset=8 * count)
        ys = np.ndarray((count,), dtype=np.float64, buffer=shm.buf,
                        offset=16 * count)
        answers = np.ndarray((count,), dtype=np.int8, buffer=shm.buf,
                             offset=24 * count)
        tasks: List[Task] = []
        for position in range(count):
            description, metadata = extras.get(position, ("", {}))
            tasks.append(
                Task(
                    task_id=int(ids[position]),
                    location=Point(float(xs[position]), float(ys[position])),
                    true_answer=int(answers[position]),
                    description=description,
                    metadata=metadata,
                )
            )
        del ids, xs, ys, answers
        return tasks
    finally:
        shm.close()


def segment_exists(name: str) -> bool:
    """Probe whether a shared-memory segment name is still linked.

    Test helper for the no-leak contract: after drain/stop (or a failure
    path) every exported block must have been released, so probing its
    recorded name must fail.
    """
    if _shared_memory is None:
        return False
    try:
        probe = _attach(name)
    except FileNotFoundError:
        return False
    probe.close()
    return True
