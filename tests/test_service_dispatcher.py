"""Tests for the multi-instance dispatch layer."""

from dataclasses import replace

import pytest

from repro.algorithms.registry import build_solver
from repro.core.accuracy import SigmoidDistanceAccuracy
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point
from repro.service import (
    DuplicateSessionError,
    LTCDispatcher,
    UnknownSessionError,
)

#: Three districts far enough apart that sigmoid eligibility (d_max = 30)
#: partitions a merged stream geographically.
OFFSETS = [(0.0, 0.0), (500.0, 0.0), (0.0, 500.0)]


def district_instance(offset, num_tasks=2, num_workers=14, seed=0):
    """A small deterministic campaign translated into its own district."""
    dx, dy = offset
    tasks = [
        Task(task_id=i, location=Point(dx + 10.0 * i, dy)) for i in range(num_tasks)
    ]
    workers = [
        Worker(
            index=index,
            location=Point(dx + (index % 3) * 5.0, dy + (seed % 2)),
            accuracy=0.9,
            capacity=2,
        )
        for index in range(1, num_workers + 1)
    ]
    return LTCInstance(
        tasks=tasks,
        workers=workers,
        error_rate=0.2,
        accuracy_model=SigmoidDistanceAccuracy(d_max=30.0),
        name=f"district@{offset}",
    )


def merged_stream(instances):
    """Round-robin interleave, re-indexed into one global arrival order."""
    queues = [list(instance.workers) for instance in instances]
    merged = []
    while any(queues):
        for queue in queues:
            if queue:
                merged.append(replace(queue.pop(0), index=len(merged) + 1))
    return merged


@pytest.fixture
def three_districts():
    return [
        district_instance(offset, seed=i) for i, offset in enumerate(OFFSETS)
    ]


class TestRouting:
    def test_per_session_latency_matches_standalone_runs(self, three_districts):
        solvers = ["AAM", "LAF", "AAM"]
        dispatcher = LTCDispatcher(keep_streams=True)
        ids = [
            dispatcher.submit_instance(instance, solver=solver)
            for instance, solver in zip(three_districts, solvers)
        ]
        dispatcher.feed_stream(merged_stream(three_districts))
        statuses = dispatcher.poll()
        assert len(statuses) == 3

        for session_id, instance, solver in zip(ids, three_districts, solvers):
            status = statuses[session_id]
            assert status.complete
            partition = dispatcher.routed_stream(session_id)
            standalone = build_solver(solver).open_session(instance).drive(partition)
            assert status.max_latency == standalone.max_latency
            assert status.max_latency > 0

    def test_geographic_partition_of_the_merged_stream(self, three_districts):
        dispatcher = LTCDispatcher(keep_streams=True)
        ids = [dispatcher.submit_instance(inst) for inst in three_districts]
        stream = merged_stream(three_districts)
        dispatcher.feed_stream(stream, stop_when_all_complete=False)

        # Districts are disjoint, so each session's routed sub-stream is its
        # own district's workers (in order, re-indexed 1..n).
        for session_id, instance in zip(ids, three_districts):
            partition = dispatcher.routed_stream(session_id)
            assert [w.index for w in partition] == list(
                range(1, len(partition) + 1)
            )
            assert all(
                w.location.distance_to(instance.tasks[0].location) < 100.0
                for w in partition
            )

    def test_complete_sessions_stop_receiving_workers(self, three_districts):
        instance = three_districts[0]
        dispatcher = LTCDispatcher()
        session_id = dispatcher.submit_instance(instance, solver="AAM")
        for worker in instance.workers:
            dispatcher.feed_worker(worker)
        status = dispatcher.poll()[session_id]
        assert status.complete
        # Feeding more traffic does not advance a completed session.
        routed_before = status.workers_routed
        dispatcher.feed_worker(replace(instance.workers[0], index=1))
        assert dispatcher.poll()[session_id].workers_routed == routed_before

    def test_unroutable_workers_are_counted(self, three_districts):
        dispatcher = LTCDispatcher()
        dispatcher.submit_instance(three_districts[0])
        faraway = Worker(index=1, location=Point(9000.0, 9000.0),
                         accuracy=0.9, capacity=2)
        assert dispatcher.feed_worker(faraway) == {}
        assert dispatcher.metrics.workers_unrouted == 1
        assert dispatcher.metrics.workers_fed == 1
        assert dispatcher.metrics.routed_fraction == 0.0


class TestLifecycle:
    def test_close_returns_the_solve_result(self, three_districts):
        instance = three_districts[0]
        dispatcher = LTCDispatcher()
        session_id = dispatcher.submit_instance(instance, solver="LAF")
        for worker in instance.workers:
            dispatcher.feed_worker(worker)
            if dispatcher.all_complete:
                break
        result = dispatcher.close(session_id)
        assert result.algorithm == "LAF"
        assert result.completed
        assert session_id not in dispatcher.session_ids
        assert dispatcher.metrics.sessions_closed == 1

    def test_close_all_in_submission_order(self, three_districts):
        dispatcher = LTCDispatcher()
        ids = [dispatcher.submit_instance(inst) for inst in three_districts]
        results = dispatcher.close_all()
        assert list(results) == ids
        assert dispatcher.session_ids == []

    def test_duplicate_and_unknown_session_ids(self, three_districts):
        dispatcher = LTCDispatcher()
        dispatcher.submit_instance(three_districts[0], session_id="alpha")
        with pytest.raises(DuplicateSessionError):
            dispatcher.submit_instance(three_districts[1], session_id="alpha")
        with pytest.raises(UnknownSessionError):
            dispatcher.close("beta")

    def test_auto_ids_and_default_solver(self, three_districts):
        dispatcher = LTCDispatcher(default_solver="LAF")
        first = dispatcher.submit_instance(three_districts[0])
        second = dispatcher.submit_instance(three_districts[1])
        assert first != second
        assert dispatcher.poll()[first].algorithm == "LAF"

    def test_prebuilt_solver_instances_are_accepted(self, three_districts):
        from repro.algorithms.aam import AAMSolver

        dispatcher = LTCDispatcher()
        session_id = dispatcher.submit_instance(
            three_districts[0], solver=AAMSolver()
        )
        assert dispatcher.poll()[session_id].algorithm == "AAM"

    def test_shared_solver_object_rejected_at_submit(self, three_districts):
        from repro.algorithms.aam import AAMSolver

        dispatcher = LTCDispatcher()
        solver = AAMSolver()
        dispatcher.submit_instance(three_districts[0], solver=solver)
        with pytest.raises(ValueError, match="one solver per session"):
            dispatcher.submit_instance(three_districts[1], solver=solver)

    def test_offline_solvers_are_rejected(self, three_districts):
        # A replay session must be fed its instance's own stream, which a
        # dispatcher routing merged live traffic cannot guarantee.
        dispatcher = LTCDispatcher()
        with pytest.raises(ValueError, match="offline"):
            dispatcher.submit_instance(three_districts[0], solver="MCF-LTC")
        with pytest.raises(ValueError, match="offline"):
            LTCDispatcher(default_solver="Base-off").submit_instance(
                three_districts[0]
            )

    def test_routed_streams_need_opt_in(self, three_districts):
        dispatcher = LTCDispatcher()
        session_id = dispatcher.submit_instance(three_districts[0])
        with pytest.raises(RuntimeError):
            dispatcher.routed_stream(session_id)


class TestMetrics:
    def test_aggregate_counters(self, three_districts):
        dispatcher = LTCDispatcher()
        for instance in three_districts:
            dispatcher.submit_instance(instance)
        consumed = dispatcher.feed_stream(merged_stream(three_districts))
        metrics = dispatcher.metrics
        assert metrics.sessions_opened == 3
        assert metrics.sessions_completed == 3
        assert metrics.workers_fed == consumed
        assert metrics.workers_routed > 0
        assert metrics.assignments_made > 0
        assert metrics.busy_seconds > 0.0
        assert metrics.throughput_per_second > 0.0
        summary = metrics.summary()
        assert summary["workers_fed"] == float(consumed)
        assert 0.0 <= summary["routed_fraction"] <= 1.0
