"""Tests for repro.geo.bbox."""

import pytest
from hypothesis import given, strategies as st

from repro.geo.bbox import BoundingBox
from repro.geo.point import Point


class TestConstruction:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            BoundingBox(1.0, 0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            BoundingBox(0.0, 1.0, 1.0, 0.0)

    def test_square_constructor(self):
        box = BoundingBox.square(100.0)
        assert box.width == box.height == 100.0
        assert box.area == pytest.approx(10000.0)

    def test_square_rejects_non_positive_side(self):
        with pytest.raises(ValueError):
            BoundingBox.square(0.0)

    def test_from_points(self):
        box = BoundingBox.from_points([Point(1, 5), Point(-2, 3), (4, 0)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-2, 0, 4, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points([])


class TestGeometry:
    def test_center(self):
        assert BoundingBox(0, 0, 10, 20).center == Point(5.0, 10.0)

    def test_contains_boundary_points(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.contains(Point(0, 0))
        assert box.contains(Point(10, 10))
        assert not box.contains(Point(10.001, 5))

    def test_intersects(self):
        a = BoundingBox(0, 0, 10, 10)
        assert a.intersects(BoundingBox(5, 5, 15, 15))
        assert a.intersects(BoundingBox(10, 10, 20, 20))  # touching corner
        assert not a.intersects(BoundingBox(11, 11, 20, 20))

    def test_expanded(self):
        box = BoundingBox(0, 0, 10, 10).expanded(5)
        assert (box.min_x, box.max_x) == (-5, 15)
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 1, 1).expanded(-1)

    def test_clamp_inside_point_unchanged(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.clamp(Point(5, 5)) == Point(5, 5)

    def test_clamp_outside_point_projected(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.clamp(Point(-3, 20)) == Point(0, 10)


coords = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


class TestProperties:
    @given(coords, coords, coords, coords, coords, coords)
    def test_clamped_point_is_contained(self, x1, y1, x2, y2, px, py):
        box = BoundingBox(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        assert box.contains(box.clamp(Point(px, py)))

    @given(st.lists(st.tuples(coords, coords), min_size=1, max_size=30))
    def test_from_points_contains_all_points(self, raw_points):
        points = [Point(x, y) for x, y in raw_points]
        box = BoundingBox.from_points(points)
        assert all(box.contains(p) for p in points)
