"""Tests for repro.datagen.rng."""

import numpy as np

from repro.datagen.rng import derive_seed, generator_for


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_labels_change_the_seed(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a", 1) != derive_seed(1, "a", 2)

    def test_root_seed_changes_the_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_result_fits_in_63_bits(self):
        for labels in (("x",), ("x", 1, 2.5), ()):
            seed = derive_seed(7, *labels)
            assert 0 <= seed < 2**63


class TestGeneratorFor:
    def test_same_labels_same_stream(self):
        a = generator_for(3, "workers").random(5)
        b = generator_for(3, "workers").random(5)
        assert np.allclose(a, b)

    def test_different_labels_different_streams(self):
        a = generator_for(3, "workers").random(5)
        b = generator_for(3, "tasks").random(5)
        assert not np.allclose(a, b)
