"""Textual rendering of experiment results.

The paper presents its evaluation as line plots; this module prints the same
series as aligned text tables (one per metric, algorithms as rows, sweep
values as columns), which is the form EXPERIMENTS.md and the benchmark output
use.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.simulation.results import FIGURE_METRICS, ResultTable

#: Display units per metric.
_METRIC_LABELS = {
    "max_latency": "Max index of worker (latency)",
    "runtime_seconds": "Running time (seconds)",
    "peak_memory_mb": "Peak memory (MB)",
}


def _format_value(metric: str, value: float) -> str:
    if metric == "max_latency":
        return f"{value:,.0f}"
    if metric == "runtime_seconds":
        return f"{value:.3f}"
    if metric == "peak_memory_mb":
        return f"{value:.2f}"
    return f"{value:.3f}"


def render_series(table: ResultTable, metric: str) -> str:
    """Render one metric of a result table as an aligned text table."""
    series = table.mean_series(metric)
    sweep_values = table.sweep_values()
    algorithms = table.algorithms()

    header_cells = [f"{table.sweep_parameter}"] + [
        f"{value:g}" for value in sweep_values
    ]
    rows: List[List[str]] = [header_cells]
    for algorithm in algorithms:
        by_value = dict(series.get(algorithm, []))
        cells = [algorithm]
        for value in sweep_values:
            if value in by_value:
                cells.append(_format_value(metric, by_value[value]))
            else:
                cells.append("-")
        rows.append(cells)

    widths = [max(len(row[i]) for row in rows) for i in range(len(header_cells))]
    lines = [f"{_METRIC_LABELS.get(metric, metric)} — {table.experiment_id}"]
    for row_index, row in enumerate(rows):
        line = "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        lines.append(line)
        if row_index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(widths))))
    return "\n".join(lines)


def render_table(table: ResultTable, metrics: Sequence[str] = FIGURE_METRICS) -> str:
    """Render all requested metrics of a result table."""
    blocks = [render_series(table, metric) for metric in metrics]
    return "\n\n".join(blocks)


def render_summary(tables: Dict[str, ResultTable]) -> str:
    """Render several experiments back to back (id order)."""
    blocks = []
    for experiment_id in sorted(tables):
        blocks.append(f"=== {experiment_id} ===")
        blocks.append(render_table(tables[experiment_id]))
    return "\n\n".join(blocks)
