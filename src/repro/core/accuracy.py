"""Predicted-accuracy functions (Definition 3).

The paper's default accuracy function is a logistic decay of the worker's
historical accuracy with distance:

    Acc(w, t) = p_w / (1 + exp(-(d_max - ||l_w - l_t||)))

where ``d_max`` is the largest distance at which workers still perform tasks
with high accuracy (30 grid units = 300 m in the experiments).  The paper
notes that other accuracy functions also apply, so the model is expressed as
a small strategy interface; the worked examples in the paper (Tables I/II)
use a :class:`TabularAccuracy` that reads the table directly.
"""

from __future__ import annotations

import abc
import math
from typing import Mapping, Tuple

from repro.core.task import Task
from repro.core.worker import Worker


def acc_star(accuracy: float) -> float:
    """``Acc*(w, t) = (2 * Acc(w, t) - 1)^2`` — the Hoeffding contribution."""
    weight = 2.0 * accuracy - 1.0
    return weight * weight


class AccuracyModel(abc.ABC):
    """Maps a (worker, task) pair to a predicted accuracy in ``[0, 1]``."""

    @abc.abstractmethod
    def accuracy(self, worker: Worker, task: Task) -> float:
        """Predicted probability that ``worker`` answers ``task`` correctly."""

    def acc_star(self, worker: Worker, task: Task) -> float:
        """``(2 * Acc(w, t) - 1)^2`` for the pair."""
        return acc_star(self.accuracy(worker, task))

    def voting_weight(self, worker: Worker, task: Task) -> float:
        """The weighted-majority-voting weight ``2 * Acc(w, t) - 1``."""
        return 2.0 * self.accuracy(worker, task) - 1.0


class SigmoidDistanceAccuracy(AccuracyModel):
    """The paper's default accuracy function (Equation 1).

    Parameters
    ----------
    d_max:
        The largest distance (in the dataset's coordinate units) at which a
        worker still answers with high accuracy.  The experiments use 30 grid
        units (300 m), taken from the Foursquare region-preference study.
    """

    def __init__(self, d_max: float = 30.0) -> None:
        if d_max <= 0:
            raise ValueError("d_max must be positive")
        self.d_max = float(d_max)

    def accuracy(self, worker: Worker, task: Task) -> float:
        distance = worker.location.distance_to(task.location)
        exponent = -(self.d_max - distance)
        # Guard against overflow for workers extremely far away: the sigmoid
        # saturates to 0 well before exp() overflows.
        if exponent > 700.0:
            return 0.0
        return worker.accuracy / (1.0 + math.exp(exponent))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SigmoidDistanceAccuracy(d_max={self.d_max})"


class ConstantAccuracy(AccuracyModel):
    """Every pair has the same predicted accuracy.

    This is the setting of McNaughton's rule in Theorem 2 (all workers equally
    accurate on all tasks); it is used by the bounds module and by tests.
    """

    def __init__(self, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ValueError("accuracy must be in [0, 1]")
        self.value = float(value)

    def accuracy(self, worker: Worker, task: Task) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantAccuracy({self.value})"


class TabularAccuracy(AccuracyModel):
    """Accuracy looked up from an explicit (worker_index, task_id) table.

    The paper's running example (Table I) specifies per-pair accuracies
    directly; this model reproduces such tables exactly.  Pairs missing from
    the table fall back to ``default`` (the worker's historical accuracy when
    ``default`` is ``None``).
    """

    def __init__(
        self,
        table: Mapping[Tuple[int, int], float],
        default: float | None = None,
    ) -> None:
        for (worker_index, task_id), value in table.items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"accuracy for worker {worker_index}, task {task_id} "
                    f"must be in [0, 1], got {value}"
                )
        self._table = dict(table)
        self._default = default

    def accuracy(self, worker: Worker, task: Task) -> float:
        key = (worker.index, task.task_id)
        if key in self._table:
            return self._table[key]
        if self._default is not None:
            return self._default
        return worker.accuracy

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TabularAccuracy({len(self._table)} entries)"
