"""Convex hulls and point-in-polygon tests.

The paper's real-data setup generates task locations "with the coordinates of
POIs within the convex region of the workers" (Sec. V-A).  The Foursquare-like
generator therefore needs a convex hull of the worker check-in locations and a
containment test to accept/reject candidate POI locations.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.geo.point import Point


def _cross(o: Point, a: Point, b: Point) -> float:
    """Z-component of the cross product of vectors ``o->a`` and ``o->b``."""
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)


def convex_hull(points: Iterable[Point | Sequence[float]]) -> List[Point]:
    """Return the convex hull of ``points`` in counter-clockwise order.

    Uses Andrew's monotone chain algorithm (O(n log n)).  Collinear points on
    the hull boundary are dropped.  Degenerate inputs (fewer than 3 distinct
    points) return the distinct points themselves.
    """
    normalized: list[Point] = []
    for p in points:
        if isinstance(p, Point):
            normalized.append(p)
        else:
            normalized.append(Point(float(p[0]), float(p[1])))

    unique = sorted(set(normalized), key=lambda p: (p.x, p.y))
    if len(unique) <= 2:
        return unique

    lower: list[Point] = []
    for p in unique:
        while len(lower) >= 2 and _cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)

    upper: list[Point] = []
    for p in reversed(unique):
        while len(upper) >= 2 and _cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)

    return lower[:-1] + upper[:-1]


def point_in_convex_polygon(point: Point, polygon: Sequence[Point]) -> bool:
    """Whether ``point`` is inside (or on the border of) a convex polygon.

    The polygon must be given in counter-clockwise order, as produced by
    :func:`convex_hull`.  Degenerate polygons (fewer than 3 vertices) only
    contain their own vertices.
    """
    n = len(polygon)
    if n == 0:
        return False
    if n == 1:
        return point == polygon[0]
    if n == 2:
        a, b = polygon
        if abs(_cross(a, b, point)) > 1e-9:
            return False
        return (
            min(a.x, b.x) - 1e-9 <= point.x <= max(a.x, b.x) + 1e-9
            and min(a.y, b.y) - 1e-9 <= point.y <= max(a.y, b.y) + 1e-9
        )

    for i in range(n):
        a = polygon[i]
        b = polygon[(i + 1) % n]
        if _cross(a, b, point) < -1e-9:
            return False
    return True
