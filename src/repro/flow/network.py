"""Label-addressed compatibility shim over the array kernel.

Historically this module owned the flow representation: an ``Edge``
dataclass per arc and dict-of-lists adjacency.  The representation now
lives in :class:`repro.flow.kernel.ArcArena` — flat parallel arrays indexed
by integer arc ids.  :class:`FlowNetwork` remains as a thin veneer for
callers that want hashable node labels and edge objects: it maps labels to
dense node ids, forwards all numeric state to an embedded arena, and hands
out lightweight :class:`Edge` views bound to arc ids.

Hot paths (``repro.algorithms.mcf_ltc``) talk to the arena directly and
never construct these views.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional

from repro.flow.kernel import ArcArena

Node = Hashable


class Edge:
    """A view of one arc in the kernel arena.

    Bound edges (created through :meth:`FlowNetwork.add_edge`) read and
    write the arena's parallel arrays; the paired reverse edge is reachable
    via :attr:`twin`.  The standalone constructor keeps the historical
    dataclass signature for callers that build detached edges — those have
    no twin and raise if one is requested.
    """

    __slots__ = ("_arena", "_arc", "_network", "_twin",
                 "_head", "_tail", "_capacity", "_cost", "_flow", "_is_residual")

    def __init__(
        self,
        head: Node = None,
        tail: Node = None,
        capacity: int = 0,
        cost: float = 0.0,
        flow: int = 0,
        is_residual: bool = False,
    ) -> None:
        self._arena: Optional[ArcArena] = None
        self._arc = -1
        self._network: Optional["FlowNetwork"] = None
        self._twin: Optional["Edge"] = None
        self._head = head
        self._tail = tail
        self._capacity = capacity
        self._cost = cost
        self._flow = flow
        self._is_residual = is_residual

    @classmethod
    def _bound(cls, network: "FlowNetwork", arc: int) -> "Edge":
        edge = cls()
        edge._network = network
        edge._arena = network.arena
        edge._arc = arc
        return edge

    # ------------------------------------------------------------ attributes

    @property
    def arc_id(self) -> int:
        """The arena arc id (-1 for detached edges)."""
        return self._arc

    @property
    def head(self) -> Node:
        if self._arena is None:
            return self._head
        return self._network.label_of(self._arena.head[self._arc])

    @property
    def tail(self) -> Node:
        if self._arena is None:
            return self._tail
        return self._network.label_of(self._arena.head[self._arc ^ 1])

    @property
    def capacity(self) -> int:
        if self._arena is None:
            return self._capacity
        return self._arena.cap[self._arc]

    @property
    def cost(self) -> float:
        if self._arena is None:
            return self._cost
        return self._arena.cost[self._arc]

    @property
    def flow(self) -> int:
        if self._arena is None:
            return self._flow
        return self._arena.flow[self._arc]

    @flow.setter
    def flow(self, value: int) -> None:
        # Direct writes bypass twin bookkeeping, exactly as assigning the
        # historical dataclass field did; tests use this to corrupt a flow.
        if self._arena is None:
            self._flow = value
        else:
            self._arena.flow[self._arc] = value

    @property
    def is_residual(self) -> bool:
        if self._arena is None:
            return self._is_residual
        return bool(self._arc & 1)

    @property
    def residual_capacity(self) -> int:
        """How much additional flow this edge can carry."""
        return self.capacity - self.flow

    @property
    def twin(self) -> "Edge":
        """The paired reverse edge."""
        if self._twin is None:
            raise RuntimeError("edge has no twin; was it added through FlowNetwork?")
        return self._twin

    def push(self, amount: int) -> None:
        """Push ``amount`` units of flow along this edge."""
        if self._arena is None:
            raise RuntimeError("cannot push flow on a detached edge")
        if amount < 0:
            raise ValueError("flow amount must be non-negative")
        self._arena.push(self._arc, amount)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Edge(tail={self.tail!r}, head={self.head!r}, "
            f"capacity={self.capacity}, cost={self.cost}, flow={self.flow}, "
            f"is_residual={self.is_residual})"
        )


class FlowNetwork:
    """A directed graph with capacities and costs for min-cost-flow solving.

    Edges are added with :meth:`add_edge`, which allocates the forward arc
    and its residual twin in the embedded :class:`ArcArena` and returns the
    forward :class:`Edge` view.  Solvers access the arena through
    :attr:`arena` / :meth:`node_id` and run directly over its arrays.
    """

    def __init__(self) -> None:
        self.arena = ArcArena()
        self._ids: Dict[Node, int] = {}
        self._labels: List[Node] = []
        self._adjacency: Dict[Node, List[Edge]] = {}

    # -------------------------------------------------------------- identity

    def add_node(self, node: Node) -> None:
        """Register ``node`` (idempotent)."""
        if node not in self._ids:
            self._ids[node] = self.arena.add_node()
            self._labels.append(node)
            self._adjacency[node] = []

    def node_id(self, node: Node) -> int:
        """The dense arena id of ``node``."""
        return self._ids[node]

    def label_of(self, node_id: int) -> Node:
        """The label of arena node ``node_id``."""
        return self._labels[node_id]

    @property
    def nodes(self) -> List[Node]:
        """All registered nodes."""
        return list(self._labels)

    def __contains__(self, node: Node) -> bool:
        return node in self._ids

    def __len__(self) -> int:
        return len(self._labels)

    # ----------------------------------------------------------------- edges

    def add_edge(self, tail: Node, head: Node, capacity: int, cost: float) -> Edge:
        """Add a forward edge ``tail -> head`` and its residual twin.

        Returns the forward edge view.  Capacities must be non-negative
        integers; costs may be any finite float (the LTC reduction uses
        negative costs).
        """
        self.add_node(tail)
        self.add_node(head)
        arc = self.arena.add_arc(self._ids[tail], self._ids[head], capacity, cost)
        forward = Edge._bound(self, arc)
        backward = Edge._bound(self, arc ^ 1)
        forward._twin = backward
        backward._twin = forward
        self._adjacency[tail].append(forward)
        self._adjacency[head].append(backward)
        return forward

    def edges_from(self, node: Node) -> List[Edge]:
        """Forward and residual edges leaving ``node``."""
        return self._adjacency.get(node, [])

    def forward_edges(self) -> Iterator[Edge]:
        """Iterate over every non-residual edge in the network."""
        for edges in self._adjacency.values():
            for edge in edges:
                if not edge.is_residual:
                    yield edge

    # ----------------------------------------------------------------- state

    def total_cost(self) -> float:
        """Total cost of the current flow (sum of cost * flow on forward edges)."""
        return self.arena.total_cost()

    def outflow(self, node: Node) -> int:
        """Net flow leaving ``node`` over forward edges minus flow entering it."""
        node_id = self._ids.get(node)
        if node_id is None:
            return 0
        head, flow = self.arena.head, self.arena.flow
        net = 0
        for arc in range(0, len(flow), 2):
            if head[arc ^ 1] == node_id:
                net += flow[arc]
            if head[arc] == node_id:
                net -= flow[arc]
        return net

    def reset_flow(self) -> None:
        """Zero out the flow on every edge."""
        self.arena.reset_flows()
