"""Ablation: AAM's LGF/LRF switching rule (Sec. IV-B design choice).

Compares AAM against its two single-strategy variants (always Largest Gain
First, always Largest Remaining First) and against LAF across the task-count
sweep, quantifying how much the adaptive switch contributes.
"""

import pytest


@pytest.mark.benchmark(group="ablation_aam_switch")
def test_regenerate_ablation_aam_switch(benchmark, figure_runner):
    table = benchmark.pedantic(
        lambda: figure_runner("ablation_aam_switch"), rounds=1, iterations=1
    )
    assert set(table.algorithms()) == {"AAM", "LGF-only", "LRF-only", "LAF"}
    assert table.completion_rate() == 1.0
    # The hybrid should not be beaten by both of its components at once
    # (averaged over the sweep).
    means = {
        name: sum(v for _, v in series) / len(series)
        for name, series in table.mean_series("max_latency").items()
    }
    assert means["AAM"] <= max(means["LGF-only"], means["LRF-only"]) * 1.05
