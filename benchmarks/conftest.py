"""Shared helpers for the figure-regeneration benchmarks.

This conftest serves only the pytest-benchmark suites that regenerate the
paper's figures (``test_fig*.py``, ``test_ablation*.py``): each one
re-measures a figure column (latency, runtime and memory series for all
five algorithms) at the experiment's scaled-down default size, renders
the same tables the paper plots, writes them to
``benchmarks/results/<experiment_id>.txt`` and checks the measured shapes
against the qualitative claims extracted from the paper.

The microbenchmark *scripts* in this directory (``bench_flow_kernel.py``,
``bench_candidates.py``, ``bench_dynamic_sessions.py``,
``bench_dispatch_scale.py``) do not use pytest at all — they are thin
suites registered with :mod:`_common` and orchestrated by
``bench_all.py``, which emits the committed ``BENCH_*.json`` reports and
drives the CI perf-regression gate (see ``docs/benchmarks.md``).

Environment knobs:

* ``REPRO_BENCH_SCALE`` — override the scale factor (e.g. ``0.1`` for a
  larger, slower run closer to the paper's sizes).
* ``REPRO_BENCH_REPETITIONS`` — override the repetitions per setting
  (default 1 for benchmarks; the paper uses 30).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Sequence

import pytest

from repro.experiments.harness import run_experiment
from repro.experiments.paper_reference import PAPER_EXPECTATIONS
from repro.experiments.report import render_table

RESULTS_DIR = Path(__file__).parent / "results"


def _env_float(name: str) -> Optional[float]:
    # Explicit None/blank checks: a truthiness test would silently treat
    # legitimate zero values like REPRO_BENCH_SCALE=0 as "unset".
    value = os.environ.get(name)
    if value is None or not value.strip():
        return None
    return float(value)


def _env_int(name: str) -> Optional[int]:
    value = os.environ.get(name)
    if value is None or not value.strip():
        return None
    return int(value)


def regenerate_figure(
    experiment_id: str,
    algorithms: Optional[Sequence[str]] = None,
    sweep_values: Optional[Sequence[float]] = None,
):
    """Run one experiment end to end and persist its rendered tables."""
    repetitions = _env_int("REPRO_BENCH_REPETITIONS")
    table = run_experiment(
        experiment_id,
        scale=_env_float("REPRO_BENCH_SCALE"),
        repetitions=1 if repetitions is None else repetitions,
        algorithms=algorithms,
        sweep_values=sweep_values,
        track_memory=True,
    )

    rendered = render_table(table)
    expectation = PAPER_EXPECTATIONS.get(experiment_id)
    deviation_lines = []
    if expectation is not None:
        deviations = expectation.check(table)
        if deviations:
            deviation_lines = ["", "Deviations from the paper's qualitative claims:"]
            deviation_lines += [f"  - {line}" for line in deviations]
        else:
            deviation_lines = ["", "Measured shapes match the paper's qualitative claims."]

    RESULTS_DIR.mkdir(exist_ok=True)
    artefact = RESULTS_DIR / f"{experiment_id}.txt"
    artefact.write_text(rendered + "\n" + "\n".join(deviation_lines) + "\n")
    return table


@pytest.fixture
def figure_runner():
    """Fixture exposing :func:`regenerate_figure` to benchmark modules."""
    return regenerate_figure
