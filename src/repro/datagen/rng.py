"""Deterministic random-number plumbing.

Every generator and every experiment repetition derives its own
``numpy.random.Generator`` from a root seed plus a label, so results are
reproducible and independent streams never alias each other.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a child seed from a root seed and arbitrary labels.

    Uses a stable hash (BLAKE2) of the textual labels so the derivation does
    not depend on Python's per-process hash randomisation.
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(int(root_seed)).encode())
    for label in labels:
        digest.update(b"\x00")
        digest.update(str(label).encode())
    return int.from_bytes(digest.digest(), "big") % (2**63)


def generator_for(root_seed: int, *labels: object) -> np.random.Generator:
    """A ``numpy`` generator seeded from ``derive_seed(root_seed, *labels)``."""
    return np.random.default_rng(derive_seed(root_seed, *labels))
